"""Multi-process sharded streaming runtime (Sections 7-8, "Parallel Processing").

Equivalence predicates and the GROUP-BY clause partition the stream into
sub-streams that never interact, so they can be processed on different CPU
cores.  :class:`ShardedRuntime` exploits that with real processes -- the
structure :class:`~repro.core.parallel.ParallelExecutor` demonstrates with
threads, but free of the GIL:

* the **parent** applies out-of-order ingestion exactly once -- one
  :class:`~repro.streaming.ingest.OutOfOrderIngestor` restores order,
  generates watermarks and handles late events -- and routes every released
  event to the worker owning its partition key
  (:func:`~repro.core.parallel.shard_index` over the key computed by
  ``plan.partition_key``, the same computation
  :func:`~repro.core.parallel.partition_stream` uses);
* each **worker process** hosts a full
  :class:`~repro.streaming.runtime.StreamingRuntime` for the registered
  queries and consumes already-ordered, watermarked batches through
  :meth:`~repro.streaming.runtime.StreamingRuntime.process_ordered`;
* emitted windows travel back over a result queue and are **merged in
  watermark order**: batches are numbered (epochs) and an epoch's records
  are released only once every earlier epoch is complete;
* :meth:`ShardedRuntime.checkpoint` composes the per-worker snapshots into
  one runtime-level snapshot in the *same versioned schema*
  :class:`~repro.streaming.runtime.StreamingRuntime` writes -- a sharded
  checkpoint restores into a single-process runtime, a single-process
  checkpoint restores into any worker count, and worker counts can change
  between checkpoint and restore;
* a worker that dies (OOM kill, segfault, uncaught error) is detected; with
  ``max_restarts=0`` the run aborts with a
  :class:`~repro.errors.WorkerCrashError`, with ``max_restarts > 0`` the
  parent **recovers** the shard: it respawns the process, restores the
  shard's slice of the latest checkpoint, and replays the batches shipped
  since then from a parent-side replay buffer -- results are identical to a
  run that never crashed (acknowledgements of replayed work are
  deduplicated against what the dead incarnation already delivered).

Recovery pairs naturally with the driver loop's periodic checkpointing
(:meth:`~repro.streaming.runtime.PipelineDriver.run` with a
:class:`~repro.streaming.checkpoint.CheckpointStore`): every checkpoint
trims the replay buffers, bounding both recovery time and parent memory.
Without checkpoints the buffers hold the whole stream since start -- still
correct, just unbounded.

Routing is a **versioned range->worker map** (:class:`ShardRouter`): the
partition-key hash space is cut into slots, each owned by one worker.  With
adaptive rebalancing enabled (:class:`RebalancePolicy`, the
``shards.rebalance.*`` fields of :class:`~repro.streaming.config.JobConfig`,
``cogra stream --rebalance``) the parent watches the per-slot routing load
and, when one worker's load reaches the skew threshold, **migrates** hot
slots to underloaded workers: in-flight work is quiesced behind the last
shipped watermark, the slots' live aggregator state moves through the same
checkpoint split/merge path recovery uses, the router entry is swapped
(bumping the map version), and events still buffered in the parent are
re-routed -- replayed -- under the new map.  The router travels inside every
checkpoint, so worker recovery and ``--recover`` resume the post-migration
topology, not the seed one.

Queries without partition attributes cannot be sharded (every event maps to
the same key); the runtime then falls back to a single shard and records the
reason in :attr:`ShardedRuntime.fallback_reason`.

Example
-------
::

    runtime = ShardedRuntime(workers=4, lateness=5.0)
    runtime.register(query_text, name="q")
    for event in source:
        for record in runtime.process(event):
            publish(record.query, record.result)
    for record in runtime.flush():
        publish(record.query, record.result)
"""

from __future__ import annotations

import math
import multiprocessing
import pickle
import queue as _queue
import threading
import time as _time
import traceback
import warnings
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.analyzer.granularity import Granularity
from repro.core.engine import CograEngine
from repro.core.parallel import shard_index
from repro.core.results import GroupResult
from repro.errors import CheckpointError, LateEventError, WorkerCrashError
from repro.events.event import Event
from repro.events.stream import sort_events
from repro.query.parser import parse_query
from repro.query.query import Query
from repro.streaming.checkpoint import (
    CHECKPOINT_VERSION,
    merge_executor_snapshots,
    restore_executor,
    snapshot_executor,
    split_executor_snapshot,
)
from repro.streaming.config import (
    BackpressureConfig,
    LatenessConfig,
    RebalanceConfig,
    ShardConfig,
    WatermarkConfig,
)
from repro.streaming.emission import EmissionRecord
from repro.streaming.ingest import (
    LatePolicy,
    OutOfOrderIngestor,
    WatermarkStrategy,
)
from repro.streaming.metrics import StreamingMetrics
from repro.streaming.observability import (
    Observability,
    finalize_snapshot,
    merge_snapshots,
)
from repro.streaming.replan import (
    ReplanController,
    ReplanPolicy,
    merge_raw_observations,
    migrate_engine,
    observe_executor,
    observe_instruments,
    resolve_replan_policy,
)
from repro.streaming.runtime import (
    PipelineDriver,
    StreamingRuntime,
    replay_corrections,
)

#: how long the parent waits for worker liveness before declaring a hang
ACK_TIMEOUT_SECONDS = 120.0

#: epoch-space offset marking replayed operations: a batch originally
#: shipped as epoch ``e`` is re-sent after a worker restart as epoch
#: ``-(e + _REPLAY_OFFSET)``, so its acknowledgement can be matched to the
#: original epoch -- or discarded when the dead incarnation's ack already
#: arrived.  Values above the offset stay free for sentinels (-1 is the
#: ready handshake, -2 the out-of-band recovery restore).
_REPLAY_OFFSET = 10
_RECOVERY_RESTORE_EPOCH = -2

#: sentinel the parent puts on an ack queue to stop its pump thread
_PUMP_STOP = ("__stop__",)


def _encode_event_blob(events: List[Event]) -> bytes:
    """Serialize a wave of events as one pre-pickled blob.

    The wire form is a list of plain ``(event_type, time, attributes,
    sequence)`` tuples: pickling tuples of primitives is much cheaper than
    pickling ``Event`` objects through ``__reduce__`` (one global lookup and
    constructor call per event on both ends), and decoding goes through the
    trusted :meth:`Event.from_wire` fast path.
    """
    return pickle.dumps(
        [
            (event.event_type, event.time, event.attributes, event.sequence)
            for event in events
        ],
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def _decode_event_blob(blob: bytes) -> List[Event]:
    """Rebuild the events of one :func:`_encode_event_blob` wave."""
    from_wire = Event.from_wire
    return [
        from_wire(event_type, time, attributes, sequence)
        for event_type, time, attributes, sequence in pickle.loads(blob)
    ]


def _encode_record_blob(records: List[EmissionRecord]) -> bytes:
    """Serialize one acknowledgement's emission records as a single blob."""
    return pickle.dumps(
        [
            (
                record.query,
                (
                    result.window_id,
                    result.window_start,
                    result.window_end,
                    result.group,
                    result.values,
                    result.trend_count,
                ),
                record.watermark,
                record.is_correction,
            )
            for record in records
            for result in (record.result,)
        ],
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def _decode_record_blob(blob: bytes) -> List[EmissionRecord]:
    """Rebuild the records of one :func:`_encode_record_blob` payload."""
    return [
        EmissionRecord(query, GroupResult(*result), watermark, is_correction)
        for query, result, watermark, is_correction in pickle.loads(blob)
    ]


def _pump_acks(source, buffer) -> None:
    """Move acknowledgements from one worker's queue into the shared buffer.

    Runs as a parent-side daemon thread, one per worker incarnation.  If the
    worker is SIGKILLed mid-write the final ``get`` blocks forever on the
    truncated frame; the thread then simply never delivers again (daemon,
    reaped at process exit) while everything it already moved stays usable.
    """
    while True:
        try:
            ack = source.get()
        except (OSError, EOFError, ValueError, TypeError, AttributeError):
            # teardown race: close() invalidates the connection (its handle
            # becomes None) while this thread is blocked mid-read
            return  # pragma: no cover - timing dependent
        if ack == _PUMP_STOP:
            return
        buffer.put(ack)


class ShardStats:
    """Per-worker accounting the parent keeps while routing and merging.

    Lifetime totals accumulate across worker restarts; the
    ``incarnation_*`` mirrors describe only the *live* process incarnation
    and are reset by :meth:`begin_incarnation` every time the shard's
    worker is respawned, so :attr:`incarnation` always equals the shard's
    restart count and :meth:`__repr__`, :meth:`as_dict` and the recovery
    counters tell one consistent story.
    """

    __slots__ = (
        "events_sent",
        "batches_sent",
        "records_merged",
        "acks_received",
        "processing_seconds",
        "incarnation",
        "incarnation_events_sent",
        "incarnation_batches_sent",
        "incarnation_records_merged",
        "incarnation_acks_received",
    )

    def __init__(self) -> None:
        self.events_sent = 0
        self.batches_sent = 0
        self.records_merged = 0
        self.acks_received = 0
        self.processing_seconds = 0.0
        self.incarnation = 0
        self.incarnation_events_sent = 0
        self.incarnation_batches_sent = 0
        self.incarnation_records_merged = 0
        self.incarnation_acks_received = 0

    def record_shipment(self, events: int) -> None:
        """Account one shipped batch/flush carrying ``events`` events."""
        self.events_sent += events
        self.batches_sent += 1
        self.incarnation_events_sent += events
        self.incarnation_batches_sent += 1

    def record_ack(self, records: int, seconds: float) -> None:
        """Account one acknowledgement that merged ``records`` records."""
        self.acks_received += 1
        self.records_merged += records
        self.incarnation_acks_received += 1
        self.incarnation_records_merged += records
        self.processing_seconds += seconds

    def begin_incarnation(self) -> None:
        """Start the counters of a freshly respawned worker process."""
        self.incarnation += 1
        self.incarnation_events_sent = 0
        self.incarnation_batches_sent = 0
        self.incarnation_records_merged = 0
        self.incarnation_acks_received = 0

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view for reports and tests."""
        return {
            "events_sent": self.events_sent,
            "batches_sent": self.batches_sent,
            "records_merged": self.records_merged,
            "acks_received": self.acks_received,
            "processing_seconds": self.processing_seconds,
            "incarnation": self.incarnation,
            "incarnation_events_sent": self.incarnation_events_sent,
            "incarnation_batches_sent": self.incarnation_batches_sent,
            "incarnation_records_merged": self.incarnation_records_merged,
            "incarnation_acks_received": self.incarnation_acks_received,
        }

    def __repr__(self) -> str:
        return (
            f"ShardStats(events={self.events_sent}, batches={self.batches_sent}, "
            f"records={self.records_merged}, acks={self.acks_received}, "
            f"incarnation={self.incarnation})"
        )


class ShardRouter:
    """Versioned hash-slot -> worker map behind the parent's event routing.

    The partition-key hash space is cut into :attr:`slots` sub-ranges
    (:func:`~repro.core.parallel.shard_index` over ``slots``); each slot is
    owned by exactly one worker.  The seed assignment round-robins slots
    over workers -- ``slots`` is a multiple of the worker count, so seeding
    routes exactly like the historical static ``hash % workers`` -- and
    :meth:`move` reassigns one slot, bumping :attr:`version`.  The map is
    recorded inside every sharded checkpoint, so worker recovery and
    ``--recover`` resume the post-migration topology instead of the seed
    one.
    """

    __slots__ = ("shard_count", "slots", "assignment", "version")

    def __init__(self, shard_count: int, slots_per_worker: int = 16):
        if shard_count < 1:
            raise ValueError(f"shard_count must be at least 1, got {shard_count}")
        if slots_per_worker < 1:
            raise ValueError(
                f"slots_per_worker must be at least 1, got {slots_per_worker}"
            )
        self.shard_count = shard_count
        self.slots = shard_count * slots_per_worker
        self.assignment: List[int] = [s % shard_count for s in range(self.slots)]
        self.version = 0

    def slot_of(self, key) -> int:
        """The hash slot a partition key falls into."""
        return shard_index(key, self.slots)

    def owner_of_key(self, key) -> int:
        """The worker owning a partition key under the current map."""
        return self.assignment[shard_index(key, self.slots)]

    def move(self, slot: int, worker: int) -> None:
        """Reassign one slot to ``worker`` and bump the map version."""
        self.assignment[slot] = worker
        self.version += 1

    def worker_slots(self, worker: int) -> List[int]:
        """The slots currently owned by ``worker``."""
        return [s for s, owner in enumerate(self.assignment) if owner == worker]

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe form recorded inside sharded checkpoints."""
        return {
            "slots": self.slots,
            "assignment": list(self.assignment),
            "version": self.version,
        }

    @classmethod
    def from_snapshot(cls, state: Dict[str, object], shard_count: int) -> "ShardRouter":
        """Rebuild the map written by :meth:`snapshot` for ``shard_count``."""
        try:
            assignment = [int(worker) for worker in state["assignment"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed router snapshot: {exc}") from exc
        if not assignment or any(
            worker < 0 or worker >= shard_count for worker in assignment
        ):
            raise CheckpointError(
                f"checkpointed router map addresses workers outside "
                f"0..{shard_count - 1}; was it taken under a different topology?"
            )
        router = cls(shard_count, 1)
        router.slots = len(assignment)
        router.assignment = assignment
        router.version = int(state.get("version", 0))
        return router

    def __repr__(self) -> str:
        return (
            f"ShardRouter(v{self.version}, {self.slots} slots over "
            f"{self.shard_count} workers)"
        )


class RebalancePolicy:
    """Decides when and which hash slots migrate between workers.

    The parent counts routed events per hash slot; every ``min_interval``
    ingested events the policy aggregates them into per-worker loads
    through the live assignment and, when the busiest worker's load is at
    or above ``skew_threshold`` times the mean (:meth:`skewed` -- the
    detector fires *exactly* at the threshold), :meth:`plan` picks up to
    ``max_moves`` hot slots to move from overloaded to underloaded
    workers.  A slot is only moved when doing so strictly shrinks the gap
    between its source and target, so planning cannot oscillate.
    """

    __slots__ = (
        "enabled",
        "skew_threshold",
        "min_interval",
        "max_moves",
        "slots_per_worker",
    )

    def __init__(
        self,
        skew_threshold: float = 1.5,
        min_interval: int = 512,
        max_moves: int = 4,
        slots_per_worker: int = 16,
        enabled: bool = True,
    ):
        # the config spec owns validation; constructing it applies the rules
        config = RebalanceConfig(
            enabled=enabled,
            skew_threshold=skew_threshold,
            min_interval=min_interval,
            max_moves=max_moves,
            slots_per_worker=slots_per_worker,
        )
        self.enabled = config.enabled
        self.skew_threshold = float(config.skew_threshold)
        self.min_interval = config.min_interval
        self.max_moves = config.max_moves
        self.slots_per_worker = config.slots_per_worker

    @classmethod
    def from_config(cls, config: RebalanceConfig) -> "RebalancePolicy":
        """The policy a :class:`~repro.streaming.config.RebalanceConfig` describes."""
        return cls(
            skew_threshold=config.skew_threshold,
            min_interval=config.min_interval,
            max_moves=config.max_moves,
            slots_per_worker=config.slots_per_worker,
            enabled=config.enabled,
        )

    def as_config(self) -> RebalanceConfig:
        """The serializable spec form of this policy."""
        return RebalanceConfig(
            enabled=self.enabled,
            skew_threshold=self.skew_threshold,
            min_interval=self.min_interval,
            max_moves=self.max_moves,
            slots_per_worker=self.slots_per_worker,
        )

    @staticmethod
    def worker_loads(
        slot_loads: List[int], assignment: List[int], shard_count: int
    ) -> List[int]:
        """Aggregate per-slot event counts into per-worker loads."""
        loads = [0] * shard_count
        for slot, count in enumerate(slot_loads):
            loads[assignment[slot]] += count
        return loads

    def skewed(self, loads: List[int]) -> bool:
        """True when the busiest load is at/over the threshold x mean load."""
        total = sum(loads)
        if total <= 0 or len(loads) < 2:
            return False
        return max(loads) >= self.skew_threshold * (total / len(loads))

    def plan(
        self, slot_loads: List[int], assignment: List[int], shard_count: int
    ) -> List[Tuple[int, int]]:
        """Up to ``max_moves`` ``(slot, target worker)`` migrations easing skew.

        Greedy: repeatedly take the hottest slot of the most loaded worker
        that fits in the load gap to the least loaded worker.  Returns
        ``[]`` when the loads are not skewed or no move can help (e.g. the
        skew sits in one indivisible hot slot).
        """
        assignment = list(assignment)
        loads = self.worker_loads(slot_loads, assignment, shard_count)
        moves: List[Tuple[int, int]] = []
        if shard_count < 2:
            return moves
        while len(moves) < self.max_moves and self.skewed(loads):
            source = max(range(shard_count), key=loads.__getitem__)
            target = min(range(shard_count), key=loads.__getitem__)
            gap = loads[source] - loads[target]
            candidates = sorted(
                (
                    slot
                    for slot in range(len(slot_loads))
                    if assignment[slot] == source and slot_loads[slot] > 0
                ),
                key=slot_loads.__getitem__,
                reverse=True,
            )
            slot = next((s for s in candidates if slot_loads[s] < gap), None)
            if slot is None:
                break  # the skew sits in one indivisible hot range
            moves.append((slot, target))
            assignment[slot] = target
            loads[source] -= slot_loads[slot]
            loads[target] += slot_loads[slot]
        return moves

    def __repr__(self) -> str:
        return (
            f"RebalancePolicy(enabled={self.enabled}, "
            f"skew_threshold={self.skew_threshold:g}, "
            f"min_interval={self.min_interval}, max_moves={self.max_moves})"
        )


class _QuerySpec:
    """Everything a worker needs to register one query (picklable)."""

    __slots__ = ("name", "query", "granularity", "emit_empty_groups")

    def __init__(
        self,
        name: str,
        query: Query,
        granularity: Optional[str],
        emit_empty_groups: bool,
    ):
        self.name = name
        self.query = query
        self.granularity = granularity
        self.emit_empty_groups = emit_empty_groups


def _build_worker_runtime(
    specs: List[_QuerySpec], observability: Optional[Observability] = None
) -> StreamingRuntime:
    """The runtime a worker process hosts: same queries, no reorder buffer.

    The parent already ordered and watermarked the stream, so the worker
    consumes it via :meth:`StreamingRuntime.process_ordered`; the worker's
    own ingestor stays empty and its lateness bound is irrelevant.
    """
    runtime = StreamingRuntime(lateness=0.0, observability=observability)
    for spec in specs:
        runtime.register(
            spec.query,
            name=spec.name,
            granularity=spec.granularity,
            emit_empty_groups=spec.emit_empty_groups,
        )
    return runtime


def _worker_loop(
    shard: int,
    specs: List[_QuerySpec],
    inbox,
    outbox,
    obs_enabled: bool = True,
    ship_serialized: bool = False,
) -> None:
    """Body of one worker process.

    Consumes operation tuples from ``inbox`` until the ``None`` sentinel and
    acknowledges every operation on ``outbox`` as ``("ok", epoch, shard,
    payload, processing_seconds)`` or ``("error", epoch, shard, traceback)``.
    Takes plain queue-like objects so tests can run it synchronously in
    process with pre-loaded :class:`queue.Queue` instances.

    With ``ship_serialized`` the parent ships each wave's events as one
    pre-pickled blob (``bytes`` in the message slot) decoded here once per
    wave, and this worker blob-encodes the emission records of its batch and
    flush acknowledgements the same way.  Event payloads are detected by
    type, so a mixed stream of blob and plain waves (e.g. a replay recorded
    under a different setting) still decodes correctly.

    The worker's observability counts events/matches/latency but *not*
    results (``count_results=False``): emitted records ship to the parent,
    which counts each exactly once after replay deduplication.  Checkpoint
    payloads carry the worker registry so the parent can merge the sharded
    metric view and restore it across recoveries.
    """
    try:
        observability = (
            Observability(count_results=False)
            if obs_enabled
            else Observability.disabled()
        )
        runtime = _build_worker_runtime(specs, observability)
    except Exception:
        outbox.put(("error", -1, shard, traceback.format_exc()))
        return
    outbox.put(("ok", -1, shard, "ready", 0.0))
    while True:
        message = inbox.get()
        if message is None:
            break
        op, epoch = message[0], message[1]
        try:
            started = _time.perf_counter()
            if op == "batch":
                events, watermark = message[2], message[3]
                if type(events) is bytes:
                    events = _decode_event_blob(events)
                records = runtime.process_ordered(events, watermark)
                if ship_serialized and records:
                    records = _encode_record_blob(records)
                outbox.put(
                    ("ok", epoch, shard, records, _time.perf_counter() - started)
                )
            elif op == "flush":
                # final events run past the watermark, exactly like the
                # single-process flush routing drained events at +inf; the
                # +inf advance then closes every remaining window
                events = message[2]
                if type(events) is bytes:
                    events = _decode_event_blob(events)
                records = runtime.process_ordered(events, math.inf)
                records.extend(runtime.flush())
                if ship_serialized and records:
                    records = _encode_record_blob(records)
                outbox.put(
                    ("ok", epoch, shard, records, _time.perf_counter() - started)
                )
            elif op == "checkpoint":
                payload = {
                    "executors": {
                        r.name: snapshot_executor(r.executor)
                        for r in runtime._queries
                    },
                    "registry": runtime.observability.registry.snapshot(),
                }
                outbox.put(("ok", epoch, shard, payload, 0.0))
            elif op == "metrics":
                # a pure registry pull (no executor snapshot): the parent's
                # registry_snapshot() merges these into the live view
                payload = {"registry": runtime.observability.registry.snapshot()}
                outbox.put(("ok", epoch, shard, payload, 0.0))
            elif op == "restore":
                executors = message[2]
                for registered in runtime._queries:
                    registered.engine.reset()
                    if registered.name in executors:
                        restore_executor(
                            registered.executor, executors[registered.name]
                        )
                runtime._flushed = False
                # recovery restores pass the checkpoint watermark so replayed
                # batches resume emission exactly where the dead incarnation
                # stood; plain restores start from scratch (the parent
                # re-advances with the next shipped watermark)
                watermark = message[3] if len(message) > 3 else None
                runtime._ordered_watermark = (
                    -math.inf if watermark is None else float(watermark)
                )
                # the optional fifth element steers the worker registry:
                # absent/None keeps it (migrations -- counts are cumulative
                # per worker), "reset" zeroes it (full restore: the parent's
                # base snapshot already holds this worker's share), a dict
                # restores a recovered incarnation to its checkpointed view
                registry_action = message[4] if len(message) > 4 else None
                if registry_action == "reset":
                    runtime.observability.registry.reset()
                elif isinstance(registry_action, dict):
                    runtime.observability.registry.restore(registry_action)
                outbox.put(("ok", epoch, shard, None, 0.0))
            elif op == "observe":
                # raw replan statistics per query; the parent merges the
                # shard views and decides centrally (repro.streaming.replan)
                payload = {
                    "observe": {
                        registered.name: observe_instruments(
                            observe_executor(registered.executor),
                            registered.instruments,
                        )
                        for registered in runtime._queries
                    }
                }
                outbox.put(("ok", epoch, shard, payload, 0.0))
            elif op == "replan":
                # live granularity migration, parent-coordinated: arrives
                # between shipped waves, so the local executor is quiescent
                name, granularity = message[2], message[3]
                migrate_engine(runtime._by_name[name].engine, granularity)
                outbox.put(
                    ("ok", epoch, shard, None, _time.perf_counter() - started)
                )
            else:
                raise ValueError(f"unknown worker operation {op!r}")
        except Exception:
            outbox.put(("error", epoch, shard, traceback.format_exc()))
            # the runtime state after a failed operation is unknown; stop
            # consuming so the parent sees the shard as failed, not stuck
            break


class _Epoch:
    """One shipped wave of work and the acknowledgements it still awaits."""

    __slots__ = ("pending", "records", "op", "sent_at")

    def __init__(self, pending: set, op: str = "batch") -> None:
        self.pending = pending
        self.records: List[EmissionRecord] = []
        self.op = op
        #: monotonic shipment time, feeding the per-shard ship-latency
        #: histograms when the acknowledgements come back
        self.sent_at = _time.perf_counter()


class ShardedRuntime(PipelineDriver):
    """Executes registered queries across worker processes, one per hash-range.

    Parameters
    ----------
    workers:
        Number of worker processes (hash-ranges of partition keys).  Forced
        to 1 -- with a diagnostic in :attr:`fallback_reason` -- when the
        registered queries cannot be sharded consistently.
    lateness / watermark_strategy / late_policy / emit_empty_groups:
        As on :class:`~repro.streaming.runtime.StreamingRuntime`; ingestion
        happens once, in the parent.
    ship_interval:
        How many ingested events to coalesce before shipping a wave (with
        the newest watermark) to the workers.  ``1`` ships on every push,
        so every record carries the same watermark stamp as in a
        single-process run (record *order* within a wave is canonical --
        window, then group, then query -- so multi-query jobs may
        interleave differently), at the price of one IPC round per event;
        larger values amortise the queue overhead and only delay *when*
        windows are emitted, never *what* is emitted.
    max_batch:
        Hard outbox bound: a shard's pending events are shipped once they
        reach this size even when ``ship_interval`` has not elapsed.
    max_restarts:
        How many times each shard's worker may be respawned after a crash
        before the run aborts with
        :class:`~repro.errors.WorkerCrashError`.  ``0`` (the default)
        keeps the historical fail-fast behaviour.  With restarts enabled
        the parent buffers every batch shipped since the last checkpoint
        for replay -- take periodic checkpoints (e.g. via
        :meth:`~repro.streaming.runtime.PipelineDriver.run` with a
        checkpoint store) to keep that buffer bounded.
    start_method:
        Optional :mod:`multiprocessing` start method (default: ``fork``
        when available, the platform default otherwise).
    rebalance:
        Adaptive shard rebalancing: a :class:`RebalancePolicy`, a
        :class:`~repro.streaming.config.RebalanceConfig`, a raw settings
        mapping (the ``shards.rebalance.*`` JobConfig section), or ``None``
        to keep the static seed routing.  Forced cycles via
        :meth:`rebalance` work either way.
    max_inflight:
        Bounded worker inboxes (backpressure): at most this many shipped
        epochs may await worker acknowledgement before ingestion blocks.
        The block is accounted as ``backpressure_waits`` /
        ``backpressure_seconds`` in :attr:`metrics`.  Mirrors the
        ``backpressure.max_inflight`` JobConfig field.
    ship_serialized:
        Ship each wave of events as one pre-pickled blob per worker (and
        blob-encode acknowledgement records the same way) instead of letting
        the IPC queue pickle ``Event`` objects one by one.  On by default;
        disable it (``batch.ship_serialized`` in JobConfig, or here) when
        debugging the wire protocol -- plain messages are inspectable in
        queue dumps and tracebacks, blobs are not.  Results are identical
        either way.
    replan:
        Adaptive granularity re-planning: a
        :class:`~repro.streaming.replan.ReplanPolicy`, a
        :class:`~repro.streaming.config.ReplanConfig`, a mapping of its
        fields, or ``None``/disabled to keep the planned granularities.
        The parent merges the workers' observed statistics, re-evaluates
        the cost model, and broadcasts plan swaps between shipped waves;
        results are unchanged (see :mod:`repro.streaming.replan`).
    """

    def __init__(
        self,
        workers: int = 2,
        lateness: float = 0.0,
        watermark_strategy: Optional[WatermarkStrategy] = None,
        late_policy: Union[LatePolicy, str, None] = None,
        emit_empty_groups: bool = False,
        ship_interval: int = 64,
        max_batch: int = 512,
        max_restarts: int = 0,
        start_method: Optional[str] = None,
        rebalance: Union["RebalancePolicy", RebalanceConfig, Dict, None] = None,
        max_inflight: int = 64,
        observability: Optional[Observability] = None,
        ship_serialized: bool = True,
        replan=None,
    ):
        # the kwargs are one corner of the declarative JobConfig API: the
        # component specs own validation and defaults (ConfigError is a
        # ValueError, so callers catching the historical type keep working)
        if isinstance(rebalance, RebalancePolicy):
            rebalance = rebalance.as_config()
        shards = ShardConfig(
            workers=workers,
            ship_interval=ship_interval,
            max_batch=max_batch,
            max_restarts=max_restarts,
            start_method=start_method,
            rebalance=RebalanceConfig() if rebalance is None else rebalance,
        )
        late = LatenessConfig.of(late_policy)
        self.workers = shards.workers
        strategy = watermark_strategy or WatermarkConfig(lateness=lateness).build()
        self._ingestor = OutOfOrderIngestor(strategy, late.resolved_policy)
        self.metrics = StreamingMetrics()
        #: parent-side observability: per-shard shipping instruments,
        #: lifecycle timers/spans, and the results counters (workers count
        #: events/matches/latency; the parent counts results exactly once,
        #: after replay deduplication).  Pass ``Observability.disabled()``
        #: to strip the instrumentation.
        self.observability = observability or Observability()
        self._emit_empty_groups = emit_empty_groups
        self._ship_interval = ship_interval
        self._max_batch = max_batch
        if not isinstance(ship_serialized, bool):
            raise ValueError(
                f"ship_serialized must be a boolean, got {ship_serialized!r}"
            )
        self._ship_serialized = ship_serialized
        #: epochs allowed in flight before ingestion blocks on worker acks
        #: (validated by the owning BackpressureConfig section)
        self._max_inflight = BackpressureConfig(max_inflight=max_inflight).max_inflight
        self._pushes_since_ship = 0
        #: newest watermark not yet delivered to the workers, if any
        self._pending_watermark: Optional[float] = None
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = multiprocessing.get_context(start_method)

        self._specs: List[_QuerySpec] = []
        self._engines: Dict[str, CograEngine] = {}
        #: the plan whose partition_key routes events (set at start)
        self._routing_plan = None
        self.shard_count = 0
        #: why sharding degraded to a single shard, or None
        self.fallback_reason: Optional[str] = None

        #: the rebalance decision rules (disabled policies still serve
        #: forced :meth:`rebalance` calls and the router granularity)
        self._policy = RebalancePolicy.from_config(shards.rebalance)
        #: the versioned range->worker map (built at start)
        self._router: Optional[ShardRouter] = None
        #: events routed per hash slot since the last rebalance cycle
        self._slot_loads: List[int] = []
        self._events_since_rebalance_check = 0
        #: newest watermark actually delivered to the workers (migrations
        #: quiesce behind it; ``-inf`` until the first advance ships)
        self._shipped_watermark = -math.inf
        #: human-readable log of slot migrations, newest last
        self.rebalance_log: List[str] = []

        #: the adaptive granularity control loop (None when disabled); the
        #: parent observes the merged shard statistics, decides against the
        #: observed cost model and broadcasts plan swaps between shipped
        #: waves -- workers never re-plan on their own
        self._replan_policy = resolve_replan_policy(replan)
        self._replan_controller = (
            ReplanController(self._replan_policy)
            if self._replan_policy is not None
            else None
        )

        self._procs: List = []
        self._inboxes: List = []
        #: one acknowledgement queue PER worker incarnation, each drained by
        #: a parent-side pump thread into :attr:`_ack_buffer`.  The parent
        #: never reads a worker pipe directly: a SIGKILL can land mid-write
        #: and leave a truncated frame that blocks ``recv`` forever -- with
        #: this layout only the (daemon) pump thread of the dead incarnation
        #: wedges, every fully-delivered ack is already in the buffer, and
        #: recovery simply attaches a fresh queue + pump for the replacement
        self._ack_queues: List = []
        self._ack_buffer: "_queue.Queue" = _queue.Queue()
        self._started = False
        self._flushed = False
        self._poisoned = False
        self._epoch = 0
        self._inflight: Dict[int, _Epoch] = {}
        self._outboxes: List[List[Event]] = []
        self._ready_records: List[EmissionRecord] = []
        self._emitted_counts: Dict[str, int] = {}
        self.shard_stats: List[ShardStats] = []
        #: cached per-shard instrument bundles (None entries when disabled)
        self._shard_instruments: List = []
        #: worker registries pulled during flush(), so registry_snapshot()
        #: keeps the complete merged view after the workers are gone
        self._final_worker_registries: Optional[List[dict]] = None

        self.max_restarts = max_restarts
        #: per-shard count of worker respawns so far
        self.restart_counts: List[int] = []
        #: human-readable log of recoveries, newest last (see shard_report)
        self.recovery_log: List[str] = []
        #: per-shard batch/flush messages shipped since the last checkpoint,
        #: kept for replay after a worker restart (only with max_restarts)
        self._replay: List[List[tuple]] = []
        #: the last composed checkpoint -- what a restarted worker resumes
        #: from (None until the first checkpoint() or restore())
        self._last_checkpoint: Optional[Dict[str, object]] = None
        #: shards currently being recovered; a repeat failure inside its own
        #: recovery is fatal instead of recursing forever
        self._recovering: set = set()
        #: special acks read by one wait loop on behalf of another
        self._held_acks: List[tuple] = []

    # -- registration ----------------------------------------------------------

    def register(
        self,
        query: Union[Query, str],
        name: Optional[str] = None,
        granularity=None,
        emit_empty_groups: Optional[bool] = None,
    ) -> str:
        """Attach a query (text or :class:`~repro.query.query.Query`).

        Mirrors :meth:`StreamingRuntime.register`, except that prepared
        :class:`CograEngine` instances are rejected: engines own in-process
        executor state that cannot be shipped to worker processes.
        """
        if isinstance(query, CograEngine):
            raise TypeError(
                "a prepared CograEngine cannot back a sharded query (its "
                "executor state lives in this process); register the query "
                "text or Query object instead"
            )
        if self._started:
            raise RuntimeError(
                "queries must be registered before the first event is ingested"
            )
        if isinstance(query, str):
            query = parse_query(query)
        flag = (
            self._emit_empty_groups if emit_empty_groups is None else emit_empty_groups
        )
        # building the engine here validates the query, resolves the
        # granularity the same way the workers will, and gives the parent
        # the plan it routes with and the definition text checkpoints record
        engine = CograEngine(query, emit_empty_groups=flag, granularity=granularity)
        name = name or engine.query.name
        if name in self._engines:
            raise ValueError(f"a query named {name!r} is already registered")
        self._specs.append(_QuerySpec(name, query, granularity, flag))
        self._engines[name] = engine
        return name

    @property
    def query_names(self) -> List[str]:
        """Names of the registered queries, in registration order."""
        return [spec.name for spec in self._specs]

    # -- worker lifecycle ------------------------------------------------------

    def _resolve_shard_count(self) -> int:
        """Workers the stream can actually use, with the fallback diagnostic."""
        signatures = {
            name: engine.plan.partition_attributes
            for name, engine in self._engines.items()
        }
        count_windowed = sorted(
            name
            for name, engine in self._engines.items()
            if engine.query.window is not None and engine.query.window.is_count_based
        )
        unpartitioned = sorted(name for name, sig in signatures.items() if not sig)
        if count_windowed:
            self.fallback_reason = (
                f"queries {count_windowed} use count-based windows, whose "
                "event ordinals are global to the stream and cannot be "
                "split across shards; running a single shard"
            )
        elif unpartitioned:
            self.fallback_reason = (
                f"queries {unpartitioned} have no partition attributes "
                "(no GROUP-BY or equivalence predicate), so the stream cannot "
                "be split; running a single shard"
            )
        elif len(set(signatures.values())) > 1:
            self.fallback_reason = (
                f"registered queries partition on different attributes "
                f"{sorted(set(signatures.values()))}; one event would belong "
                "to different shards for different queries; running a single "
                "shard"
            )
        if self.fallback_reason is not None:
            if self.workers > 1:
                warnings.warn(self.fallback_reason, RuntimeWarning, stacklevel=3)
            return 1
        return self.workers

    def _start(self) -> None:
        """Spawn the worker processes and wait for their ready handshakes."""
        if not self._specs:
            raise RuntimeError("no queries are registered with this runtime")
        self.shard_count = self._resolve_shard_count()
        self._routing_plan = self._engines[self._specs[0].name].plan
        self._ack_buffer = _queue.Queue()
        self._ack_queues = [self._context.Queue() for _ in range(self.shard_count)]
        for ack_queue in self._ack_queues:
            threading.Thread(
                target=_pump_acks,
                args=(ack_queue, self._ack_buffer),
                daemon=True,
            ).start()
        self._inboxes = [self._context.Queue() for _ in range(self.shard_count)]
        self._outboxes = [[] for _ in range(self.shard_count)]
        self.shard_stats = [ShardStats() for _ in range(self.shard_count)]
        self._shard_instruments = [
            self.observability.shard_instruments(shard)
            for shard in range(self.shard_count)
        ]
        self.restart_counts = [0] * self.shard_count
        self._replay = [[] for _ in range(self.shard_count)]
        self._router = ShardRouter(self.shard_count, self._policy.slots_per_worker)
        self._slot_loads = [0] * self._router.slots
        self._events_since_rebalance_check = 0
        self._shipped_watermark = -math.inf
        self._procs = [
            self._context.Process(
                target=_worker_loop,
                args=(
                    shard,
                    self._specs,
                    self._inboxes[shard],
                    self._ack_queues[shard],
                    self.observability.enabled,
                    self._ship_serialized,
                ),
                daemon=True,
                name=f"cogra-shard-{shard}",
            )
            for shard in range(self.shard_count)
        ]
        for proc in self._procs:
            proc.start()
        self._started = True
        ready = set()
        while len(ready) < self.shard_count:
            ack = self._next_ack()
            if ack[1] != -1 or ack[3] != "ready":
                raise WorkerCrashError(
                    f"unexpected worker handshake {ack[:2]!r}", shard=ack[2]
                )
            ready.add(ack[2])

    def close(self) -> None:
        """Stop the worker processes (idempotent).

        Called by :meth:`flush` on success and by users on error paths; a
        closed runtime cannot process further events.
        """
        self.observability.close()
        if not self._started:
            self._started = True  # a closed runtime must not restart lazily
            self._poisoned = True
            return
        for inbox in self._inboxes:
            try:
                inbox.put(None)
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5.0)
        for ack_queue in self._ack_queues:
            try:
                ack_queue.put(_PUMP_STOP)  # releases the pump thread
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
        for q in self._inboxes + self._ack_queues:
            try:
                # never let interpreter exit join these queues' feeder
                # threads: a consumer that died (crashed worker, wedged
                # pump) leaves the pipe full and the feeder blocked forever
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
        self._procs = []
        self._inboxes = []
        self._ack_queues = []

    def __enter__(self) -> "ShardedRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            if self._procs:
                for proc in self._procs:
                    if proc.is_alive():
                        proc.terminate()
            for q in self._inboxes + self._ack_queues:
                q.cancel_join_thread()
        except Exception:
            pass

    # -- parent-side messaging -------------------------------------------------

    def _fail(self, message: str, shard: Optional[int], exitcode=None) -> None:
        self._poisoned = True
        error = WorkerCrashError(message, shard=shard, exitcode=exitcode)
        self.close()
        raise error

    def _read_ack(self, timeout: float):
        """One raw acknowledgement: held-back specials first, then the buffer.

        Raises :class:`queue.Empty` when nothing arrives within ``timeout``.
        """
        if self._held_acks:
            return self._held_acks.pop(0)
        if timeout <= 0.0:
            return self._ack_buffer.get_nowait()
        return self._ack_buffer.get(timeout=timeout)

    def _handle_failure(
        self, message: str, shard: Optional[int], exitcode=None
    ) -> None:
        """Route one worker failure: recover the shard, or abort the run."""
        if (
            shard is None
            or self.max_restarts == 0
            or not self.restart_counts
            or self.restart_counts[shard] >= self.max_restarts
            or shard in self._recovering
        ):
            self._fail(message, shard, exitcode=exitcode)
        self._recover(shard, message)

    def _next_ack(self):
        """Blocking read of one acknowledgement, with crash detection.

        A dead or failing worker is either recovered in place (respawn +
        restore + replay, see :meth:`_recover`) or, beyond
        ``max_restarts``, surfaces as :class:`WorkerCrashError`.
        """
        deadline = _time.monotonic() + ACK_TIMEOUT_SECONDS
        while True:
            try:
                ack = self._read_ack(timeout=0.2)
            except _queue.Empty:
                recovered = False
                for shard, proc in enumerate(self._procs):
                    if not proc.is_alive():
                        self._handle_failure(
                            f"shard {shard} (pid {proc.pid}) exited with code "
                            f"{proc.exitcode} while work was in flight",
                            shard,
                            exitcode=proc.exitcode,
                        )
                        recovered = True
                        break
                if recovered:
                    deadline = _time.monotonic() + ACK_TIMEOUT_SECONDS
                    continue
                if _time.monotonic() > deadline:  # pragma: no cover - hang guard
                    self._fail(
                        f"no worker acknowledgement within {ACK_TIMEOUT_SECONDS:g}s",
                        None,
                    )
                continue
            if ack[0] == "error":
                self._handle_failure(
                    f"shard {ack[2]} failed:\n{ack[3]}", ack[2], exitcode=None
                )
                deadline = _time.monotonic() + ACK_TIMEOUT_SECONDS
                continue
            return ack

    def _apply_ack(self, ack) -> None:
        """Fold one batch/flush/restore acknowledgement into its epoch.

        Replayed operations come back with their epoch encoded below
        ``-_REPLAY_OFFSET``; they count toward the original epoch unless
        the dead incarnation's own acknowledgement already did.  Stale
        acknowledgements from a replaced incarnation are dropped.
        """
        _, epoch, shard, records, seconds = ack
        records = records or ()
        if isinstance(records, bytes):
            # a blob-shipped acknowledgement: one decode per wave
            records = _decode_record_blob(records)
        elif isinstance(records, (dict, str)):
            # checkpoint/metrics payloads and stray ready handshakes carry
            # no emission records; their epochs still resolve below
            records = ()
        if epoch <= -_REPLAY_OFFSET:
            epoch = -epoch - _REPLAY_OFFSET
            entry = self._inflight.get(epoch)
            if entry is None or shard not in entry.pending:
                return  # the pre-crash incarnation's ack already counted
        entry = self._inflight.get(epoch)
        if entry is None or shard not in entry.pending:
            if self.restart_counts and self.restart_counts[shard]:
                return  # stale ack from an incarnation that was replaced
            raise WorkerCrashError(  # pragma: no cover - protocol guard
                f"shard {shard} acknowledged unknown epoch {epoch}", shard=shard
            )
        entry.pending.discard(shard)
        entry.records.extend(records)
        self.shard_stats[shard].record_ack(len(records), seconds)
        self.metrics.record_processing_seconds(seconds)
        if entry.op in ("batch", "flush") and self._shard_instruments:
            instruments = self._shard_instruments[shard]
            if instruments is not None:
                instruments.ship_latency.observe(_time.perf_counter() - entry.sent_at)

    # -- worker recovery ---------------------------------------------------------

    def _recover(self, shard: int, reason: str) -> None:
        """Respawn one crashed shard and bring it back to the live timeline.

        1. reap the dead process and abandon its inbox (unconsumed messages
           are covered by the replay buffer);
        2. spawn a replacement and wait for its ready handshake;
        3. restore the shard's slice of the last checkpoint (fresh state
           when no checkpoint was taken yet);
        4. replay every batch/flush shipped since that checkpoint, with
           epochs moved into the replay range so acknowledgements merge
           into the original epochs -- or are dropped when the dead
           incarnation already delivered them;
        5. re-issue checkpoint requests the dead worker still owed.

        Failures of *other* shards while waiting recover recursively; a
        second failure of this same shard (or exhausted ``max_restarts``)
        aborts the run.
        """
        recovery_started = _time.perf_counter()
        self.restart_counts[shard] += 1
        # per-incarnation stats restart with the replacement process, so
        # ShardStats.incarnation always mirrors restart_counts[shard]
        self.shard_stats[shard].begin_incarnation()
        self._recovering.add(shard)
        try:
            old = self._procs[shard]
            if old.is_alive():  # reported an error but has not exited yet
                old.terminate()
            old.join(timeout=5.0)
            try:
                # the dead worker will never drain this pipe; without the
                # cancel, interpreter exit would join the queue's feeder
                # thread, which can sit blocked on the full pipe forever
                self._inboxes[shard].cancel_join_thread()
                self._inboxes[shard].close()
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
            # abandon the dead incarnation's ack queue: its pump thread
            # already moved every fully-delivered ack into the shared
            # buffer, and a SIGKILL mid-write may have left a truncated
            # frame that wedges any further read (only the daemon pump
            # blocks on it).  Anything lost with the pipe is simply
            # re-acknowledged by the replay and deduplicated.
            self._inboxes[shard] = self._context.Queue()
            self._ack_queues[shard] = self._context.Queue()
            threading.Thread(
                target=_pump_acks,
                args=(self._ack_queues[shard], self._ack_buffer),
                daemon=True,
            ).start()
            self._procs[shard] = self._context.Process(
                target=_worker_loop,
                args=(
                    shard,
                    self._specs,
                    self._inboxes[shard],
                    self._ack_queues[shard],
                    self.observability.enabled,
                    self._ship_serialized,
                ),
                daemon=True,
                name=f"cogra-shard-{shard}-r{self.restart_counts[shard]}",
            )
            self._procs[shard].start()
            self._await_worker_ack(
                shard, -1, f"ready handshake of restarted shard {shard}"
            )
            # re-surface the consumed ready ack: a crash during the STARTUP
            # handshake recovers in here, but _start()'s loop still counts
            # ready acks -- without this it would stall out waiting for one
            # that was already read.  Outside startup the stray ready is
            # dropped harmlessly by _apply_ack (the shard has restarts).
            self._held_acks.append(("ok", -1, shard, "ready", 0.0))
            if self._last_checkpoint is not None:
                # the slice is cut by the CURRENT router map: migrations
                # refresh the recovery baseline, so the checkpointed state
                # and the live assignment always describe the same topology
                executors = {
                    name: split_executor_snapshot(
                        state, self.shard_count, owner=self._router.owner_of_key
                    )[shard]
                    for name, state in self._last_checkpoint["executors"].items()
                }
                sharded_info = self._last_checkpoint.get("sharded")
                sharded_info = sharded_info if isinstance(sharded_info, dict) else {}
                watermark = sharded_info.get(
                    "watermark", self._last_checkpoint["metrics"].get("watermark")
                )
                # bring the worker registry back to its checkpointed view so
                # the replay re-applies exactly the post-checkpoint deltas;
                # with no per-worker registry recorded (old checkpoint, or a
                # full restore() baseline -- whose base snapshot already
                # holds every worker's share) reset instead
                worker_registries = sharded_info.get("worker_registries")
                registry_action: object = "reset"
                if isinstance(worker_registries, dict):
                    recorded = worker_registries.get(str(shard))
                    if isinstance(recorded, dict):
                        registry_action = recorded
                self._inboxes[shard].put(
                    (
                        "restore",
                        _RECOVERY_RESTORE_EPOCH,
                        executors,
                        watermark,
                        registry_action,
                    )
                )
                self._await_worker_ack(
                    shard,
                    _RECOVERY_RESTORE_EPOCH,
                    f"checkpoint restore on restarted shard {shard}",
                )
            for message in self._replay[shard]:
                replayed = (message[0], -(message[1] + _REPLAY_OFFSET)) + message[2:]
                self._inboxes[shard].put(replayed)
            for epoch in sorted(self._inflight):
                entry = self._inflight[epoch]
                if shard not in entry.pending:
                    continue
                if entry.op == "checkpoint":
                    self._inboxes[shard].put(("checkpoint", epoch))
                elif entry.op == "metrics":
                    self._inboxes[shard].put(("metrics", epoch))
                elif entry.op == "observe":
                    self._inboxes[shard].put(("observe", epoch))
                elif entry.op == "restore":
                    # the out-of-band restore above already applied the same
                    # state (restore() records it before shipping)
                    entry.pending.discard(shard)
                elif entry.op == "replan":
                    # a migration's recovery baseline is recorded before the
                    # replan ships, and the respawned worker was built from
                    # the post-migration specs: it already runs the new plan
                    entry.pending.discard(shard)
            self.recovery_log.append(
                f"shard {shard} restarted "
                f"({self.restart_counts[shard]}/{self.max_restarts}): {reason}"
            )
        finally:
            self._recovering.discard(shard)
        self._observe_lifecycle("recovery", _time.perf_counter() - recovery_started)
        self._release_ready_epochs()

    def _await_worker_ack(self, shard: int, sentinel: int, what: str) -> None:
        """Wait for one special acknowledgement from ``shard``.

        Normal data acknowledgements arriving meanwhile are applied; other
        shards' specials -- and salvaged checkpoint payloads, which belong
        to the checkpoint collection loop -- are held back for their own
        consumers; failures are routed through :meth:`_handle_failure`
        (fatal for ``shard`` itself -- it is already mid-recovery).
        """
        deadline = _time.monotonic() + ACK_TIMEOUT_SECONDS
        stashed: List[tuple] = []
        try:
            while True:
                try:
                    ack = self._read_ack(timeout=0.2)
                except _queue.Empty:
                    proc = self._procs[shard]
                    if not proc.is_alive():
                        self._handle_failure(
                            f"shard {shard} (pid {proc.pid}) exited with code "
                            f"{proc.exitcode} during recovery ({what})",
                            shard,
                            exitcode=proc.exitcode,
                        )
                    if _time.monotonic() > deadline:  # pragma: no cover - hang
                        self._fail(
                            f"no acknowledgement within "
                            f"{ACK_TIMEOUT_SECONDS:g}s waiting for {what}",
                            shard,
                        )
                    continue
                if ack[0] == "error":
                    self._handle_failure(
                        f"shard {ack[2]} failed:\n{ack[3]}", ack[2], exitcode=None
                    )
                    continue
                epoch = ack[1]
                if epoch in (-1, _RECOVERY_RESTORE_EPOCH):
                    if ack[2] == shard and epoch == sentinel:
                        return
                    # another recovery's special: hold it back for that loop
                    stashed.append(ack)
                    continue
                if isinstance(ack[3], dict) and (
                    "executors" in ack[3] or "registry" in ack[3]
                ):
                    # a checkpoint or metrics payload: its collection loop
                    # consumes it
                    stashed.append(ack)
                    continue
                self._apply_ack(ack)
        finally:
            self._held_acks.extend(stashed)

    def _release_ready_epochs(self) -> None:
        """Move completed epochs -- in order -- into the ready record list.

        Records within one epoch come from disjoint shards; sorting by
        (window, group, query) makes the merged order independent of ack
        arrival and of the worker count.
        """
        while self._inflight:
            first = min(self._inflight)
            entry = self._inflight[first]
            if entry.pending:
                return
            del self._inflight[first]
            entry.records.sort(
                key=lambda record: (
                    record.result.window_id,
                    repr(record.result.group_key),
                    record.query,
                )
            )
            count_results = self.observability.enabled
            per_query: Dict[str, int] = {}
            for record in entry.records:
                per_query[record.query] = per_query.get(record.query, 0) + 1
            for query, count in per_query.items():
                self._emitted_counts[query] = (
                    self._emitted_counts.get(query, 0) + count
                )
                if count_results:
                    # the one place sharded results surface, post-dedup: the
                    # counter matches the single-process runtime's exactly
                    self.observability.results_counter(query).inc(count)
            self.metrics.record_emission(len(entry.records))
            self._ready_records.extend(entry.records)

    def _drain_acks(self, block: bool) -> None:
        """Consume acknowledgements; with ``block`` wait until none in flight."""
        while self._inflight:
            self._release_ready_epochs()
            if not self._inflight:
                break
            if block:
                self._apply_ack(self._next_ack())
            else:
                try:
                    ack = self._read_ack(timeout=0.0)
                except _queue.Empty:
                    break
                if ack[0] == "error":
                    self._handle_failure(
                        f"shard {ack[2]} failed:\n{ack[3]}", ack[2], exitcode=None
                    )
                    continue
                self._apply_ack(ack)
        self._release_ready_epochs()

    def _ship(self, op: str, shards: Iterable[int], payloads=None) -> int:
        """Send one epoch of ``op`` messages to ``shards``; return the epoch."""
        epoch = self._epoch
        self._epoch += 1
        shards = list(shards)
        self._inflight[epoch] = _Epoch(set(shards), op)
        for shard in shards:
            if not self._procs[shard].is_alive():
                proc = self._procs[shard]
                self._handle_failure(
                    f"shard {shard} (pid {proc.pid}) exited with code "
                    f"{proc.exitcode} before epoch {epoch} could be sent",
                    shard,
                    exitcode=proc.exitcode,
                )
            message = payloads[shard] if payloads is not None else (op, epoch)
            self._inboxes[shard].put(message)
            # recovery replays everything shipped since the last checkpoint;
            # recording after the put keeps "recorded" = "needs replay"
            if self.max_restarts and message[0] in ("batch", "flush"):
                self._replay[shard].append(message)
        return epoch

    def _ship_outboxes(self, watermark: Optional[float]) -> None:
        """Ship buffered events (and, with a watermark, an advance) as one epoch.

        A watermark advance must reach *every* shard -- windows close on all
        of them -- while a plain overflow ship only goes to shards that have
        events.
        """
        self._pushes_since_ship = 0
        self._pending_watermark = None
        if watermark is None:
            shards = [s for s in range(self.shard_count) if self._outboxes[s]]
            if not shards:
                return
        else:
            shards = list(range(self.shard_count))
            if watermark > self._shipped_watermark:
                self._shipped_watermark = watermark
        payloads = {}
        for shard in shards:
            events = self._outboxes[shard]
            payload = (
                _encode_event_blob(events)
                if self._ship_serialized and events
                else events
            )
            payloads[shard] = ("batch", self._epoch, payload, watermark)
            self.shard_stats[shard].record_shipment(len(events))
            instruments = self._shard_instruments[shard]
            if instruments is not None:
                instruments.outbox_depth.set(len(events))
            self._outboxes[shard] = []
        self._ship("batch", shards, payloads)

    def _route_released(self, events: Iterable[Event]) -> None:
        """Append released events to the outbox of the worker owning their key.

        Uses the identical key computation as
        :func:`~repro.core.parallel.partition_stream` (``plan.partition_key``)
        so sharded, thread-parallel and sequential runs agree on partitions;
        ownership goes through the live :class:`ShardRouter` map, with the
        per-slot load counted for the rebalance policy.
        """
        plan = self._routing_plan
        if self.shard_count == 1:
            self._outboxes[0].extend(events)
            return
        slots = self._router.slots
        assignment = self._router.assignment
        slot_loads = self._slot_loads
        outboxes = self._outboxes
        for event in events:
            slot = shard_index(plan.partition_key(event), slots)
            slot_loads[slot] += 1
            outboxes[assignment[slot]].append(event)

    # -- adaptive rebalancing --------------------------------------------------

    @property
    def router_version(self) -> int:
        """Version of the live range->worker map (0 until the first move)."""
        return 0 if self._router is None else self._router.version

    def _maybe_rebalance(self) -> None:
        """One policy-driven skew check, every ``min_interval`` ingested events."""
        if not self._policy.enabled or self.shard_count < 2:
            return
        self._events_since_rebalance_check += 1
        if self._events_since_rebalance_check < self._policy.min_interval:
            return
        self._events_since_rebalance_check = 0
        moves = self._policy.plan(
            self._slot_loads, self._router.assignment, self.shard_count
        )
        self._slot_loads = [0] * self._router.slots
        if moves:
            self._apply_moves(moves)

    def rebalance(
        self, moves: Optional[List[Tuple[int, int]]] = None
    ) -> List[Tuple[int, int]]:
        """Migrate hash slots between workers now; return the applied moves.

        ``moves`` is a list of ``(slot, target worker)`` reassignments;
        ``None`` plans them with the :class:`RebalancePolicy` from the
        routing load observed since the last cycle (usable whether or not
        automatic rebalancing is enabled).  No-op reassignments are
        dropped; an unstarted runtime is started first; a single-shard
        runtime never moves anything.
        """
        self._check_usable()
        if not self._started:
            self._start()
        if self.shard_count < 2:
            return []
        if moves is None:
            moves = self._policy.plan(
                self._slot_loads, self._router.assignment, self.shard_count
            )
        else:
            # last reassignment per slot wins; drop no-ops
            final: Dict[int, int] = {}
            for slot, worker in moves:
                slot, worker = int(slot), int(worker)
                if not 0 <= slot < self._router.slots:
                    raise ValueError(
                        f"slot {slot} is outside 0..{self._router.slots - 1}"
                    )
                if not 0 <= worker < self.shard_count:
                    raise ValueError(
                        f"worker {worker} is outside 0..{self.shard_count - 1}"
                    )
                final[slot] = worker
            moves = [
                (slot, worker)
                for slot, worker in final.items()
                if self._router.assignment[slot] != worker
            ]
        self._slot_loads = [0] * self._router.slots
        self._events_since_rebalance_check = 0
        if moves:
            self._apply_moves(moves)
        return moves

    def _apply_moves(self, moves: List[Tuple[int, int]]) -> None:
        """Migrate the state of ``moves``' hash slots between live workers.

        The migration runs behind the last shipped watermark -- a quiesce:

        1. events still buffered in parent outboxes are **held back** (they
           must be processed by the new owners of their slots, after those
           own the migrated state) and every in-flight batch is
           acknowledged;
        2. each worker's executor state is snapshotted through the
           checkpoint path;
        3. the router entries are swapped (bumping the map version) and the
           affected workers are restored from the snapshots re-split under
           the new map -- each keeps its own ``events_seen``, so composed
           checkpoints stay exact;
        4. with recovery enabled, the composed snapshot (which records the
           new map) becomes the recovery baseline: a worker crash mid- or
           post-migration restores the post-migration topology;
        5. the held events are **replayed**: re-routed through the updated
           map, to be shipped with the next wave.
        """
        started = _time.perf_counter()
        router = self._router
        old_owner = {slot: router.assignment[slot] for slot, _ in moves}
        held = [event for outbox in self._outboxes for event in outbox]
        self._outboxes = [[] for _ in range(self.shard_count)]
        shard_payloads = self._collect_shard_snapshots()
        for slot, worker in moves:
            router.move(slot, worker)
        affected = sorted(set(old_owner.values()) | {w for _, w in moves})
        moved_keys = set()
        splits: Dict[int, Dict[str, object]] = {shard: {} for shard in affected}
        for spec in self._specs:
            states = {
                shard: payload["executors"][spec.name]
                for shard, payload in shard_payloads.items()
            }
            last_times = [
                state["last_time"]
                for state in states.values()
                if state["last_time"] is not None
            ]
            # like split_executor_snapshot, every restored shard gets the
            # global last_time so executor order checks stay protected
            global_last = max(last_times) if last_times else None
            entries: Dict[int, List] = {shard: [] for shard in affected}
            for shard, state in states.items():
                for entry in state["aggregators"]:
                    key = tuple(entry[1])
                    owner = router.owner_of_key(key)
                    if owner != shard:
                        moved_keys.add(key)
                    if owner in entries:
                        entries[owner].append(entry)
            for shard in affected:
                shard_entries = entries[shard]
                shard_entries.sort(key=lambda entry: (entry[0], repr(entry[1])))
                own = states[shard]
                splits[shard][spec.name] = {
                    "query": own["query"],
                    "granularity": own["granularity"],
                    "events_seen": own["events_seen"],
                    "last_time": global_last,
                    "aggregators": shard_entries,
                }
        snapshot = self._compose_snapshot(shard_payloads)
        if self.max_restarts:
            # recorded before the ship: a worker that dies mid-migration is
            # recovered straight into the post-migration layout
            self._last_checkpoint = snapshot
            self._replay = [[] for _ in range(self.shard_count)]
        watermark = snapshot["sharded"]["watermark"]
        payloads = {
            shard: ("restore", self._epoch, splits[shard], watermark)
            for shard in affected
        }
        self._ship("restore", affected, payloads)
        self._drain_acks(block=True)
        # the replay: held events re-routed under the swapped map (their
        # slot loads were already counted when they were first routed)
        assignment = router.assignment
        slots = router.slots
        plan = self._routing_plan
        for event in sort_events(held):
            slot = shard_index(plan.partition_key(event), slots)
            self._outboxes[assignment[slot]].append(event)
        pause = _time.perf_counter() - started
        self.metrics.record_rebalance(len(moves), len(moved_keys), pause)
        self._observe_lifecycle("rebalance", pause)
        moved = ", ".join(
            f"slot {slot}: {old_owner[slot]}->{worker}" for slot, worker in moves
        )
        self.rebalance_log.append(
            f"router v{router.version}: moved {len(moves)} slot(s), "
            f"{len(moved_keys)} key(s) ({moved}); paused {pause * 1000.0:.1f} ms"
        )

    # -- adaptive granularity re-planning --------------------------------------

    def _ensure_replan_controller(self) -> ReplanController:
        """The controller, created on demand for forced migrations."""
        if self._replan_controller is None:
            self._replan_controller = ReplanController(ReplanPolicy())
        return self._replan_controller

    def _maybe_replan(self) -> None:
        """One policy-driven granularity check, every check-interval events."""
        if self._replan_policy is None or not self._started:
            return
        if self._replan_controller.due(1):
            self._replan_now()

    def _collect_worker_observations(self) -> Dict[str, Dict[str, float]]:
        """Quiesce in-flight work and merge every worker's raw statistics.

        The replan counterpart of :meth:`_collect_worker_registries` for the
        lightweight ``observe`` operation: the per-shard, per-query raw
        statistics come back and are summed into one stream-wide view per
        query (:func:`~repro.streaming.replan.merge_raw_observations`).
        """
        self._drain_acks(block=True)
        self._ship("observe", range(self.shard_count))
        payloads: Dict[int, dict] = {}
        collected = 0
        while collected < self.shard_count:
            ack = self._next_ack()
            if ack[0] == "ok" and isinstance(ack[3], dict) and "observe" in ack[3]:
                if ack[2] not in payloads:
                    collected += 1
                payloads[ack[2]] = ack[3]["observe"]
                entry = self._inflight.get(ack[1])
                if entry is not None:
                    entry.pending.discard(ack[2])
                    if not entry.pending:
                        self._inflight.pop(ack[1], None)
            else:  # a straggling batch ack ahead of the observe ack
                self._apply_ack(ack)
        self._release_ready_epochs()
        return {
            spec.name: merge_raw_observations(
                [payloads[shard][spec.name] for shard in sorted(payloads)]
            )
            for spec in self._specs
        }

    def _replan_now(self) -> None:
        """One check of the control loop: observe workers, decide, migrate."""
        controller = self._replan_controller
        controller.begin_check()
        started = _time.perf_counter()
        merged = self._collect_worker_observations()
        migrations: List[Tuple[str, "Granularity"]] = []
        for spec in self._specs:
            engine = self._engines[spec.name]
            target = controller.decide(spec.name, engine, merged[spec.name])
            if (
                target is not engine.plan.granularity
                and len(migrations) < controller.policy.max_migrations
            ):
                migrations.append((spec.name, target))
        if migrations:
            self._apply_replan(migrations)
        pause = _time.perf_counter() - started
        self.metrics.record_replan(len(migrations), pause)
        self._observe_lifecycle("replan", pause)

    def _apply_replan(self, migrations: List[Tuple[str, "Granularity"]]) -> None:
        """Broadcast granularity migrations to the workers, quiesced.

        The act step, between shipped waves (routing is granularity-blind,
        so -- unlike :meth:`_apply_moves` -- no events change owner):

        1. in-flight work is acknowledged and every worker's executor state
           is snapshotted through the checkpoint path;
        2. the parent engines re-plan (validating the target granularity)
           and the registration specs are updated, so recovered workers and
           composed checkpoints describe the post-migration plan;
        3. with recovery enabled, the composed snapshot -- its migrated
           executor states relabelled with the new granularity (their open
           aggregators keep the recorded per-class layout) -- becomes the
           recovery baseline: a worker crash mid-migration restores the
           post-migration plan version;
        4. the ``replan`` operation is broadcast and acknowledged by every
           worker before any further events ship.
        """
        controller = self._ensure_replan_controller()
        shard_payloads = self._collect_shard_snapshots()
        performed: List[Tuple[str, "Granularity", "Granularity"]] = []
        for name, target in migrations:
            engine = self._engines[name]
            previous = engine.plan.granularity
            if not migrate_engine(engine, target):
                continue
            for spec in self._specs:
                if spec.name == name:
                    spec.granularity = engine.plan.granularity.value
            performed.append((name, previous, engine.plan.granularity))
        if not performed:
            return
        snapshot = self._compose_snapshot(shard_payloads)
        for name, _, new in performed:
            # the worker snapshots were taken pre-migration: relabel the
            # merged executor state so a recovery restores into the
            # post-migration executor (open aggregators carry their own
            # recorded classes and rebuild unchanged)
            snapshot["executors"][name]["granularity"] = new.value
        if self.max_restarts:
            self._last_checkpoint = snapshot
            self._replay = [[] for _ in range(self.shard_count)]
        for name, previous, new in performed:
            payloads = {
                shard: ("replan", self._epoch, name, new.value)
                for shard in range(self.shard_count)
            }
            self._ship("replan", range(self.shard_count), payloads)
            controller.record_migration(
                name,
                previous,
                new,
                int(snapshot["executors"][name].get("events_seen", 0)),
            )
        self._drain_acks(block=True)

    def migrate_granularity(self, name: str, granularity) -> bool:
        """Force a live granularity migration of one registered query.

        The sharded counterpart of :meth:`StreamingRuntime.
        migrate_granularity`: the swap is coordinated across every worker
        behind a quiesce.  Returns True when a migration happened;
        disallowed granularities raise
        :class:`~repro.errors.PlanningError`.
        """
        self._check_usable()
        if not self._started:
            self._start()
        engine = self._engines.get(name)
        if engine is None:
            raise KeyError(f"no registered query named {name!r}")
        if isinstance(granularity, str):
            granularity = Granularity(granularity)
        if granularity is engine.plan.granularity:
            return False
        started = _time.perf_counter()
        self._apply_replan([(name, granularity)])
        pause = _time.perf_counter() - started
        self.metrics.record_replan(1, pause)
        self._observe_lifecycle("replan", pause)
        return True

    @property
    def replan_log(self) -> List[Dict[str, object]]:
        """Migration records, oldest first (empty when none happened)."""
        controller = self._replan_controller
        return list(controller.log) if controller is not None else []

    @property
    def plan_versions(self) -> Dict[str, int]:
        """Per-query plan version: 0 at registration, +1 per migration."""
        versions = {spec.name: 0 for spec in self._specs}
        if self._replan_controller is not None:
            versions.update(self._replan_controller.plan_versions)
        return versions

    def query_observations(self):
        """Last merged :class:`~repro.streaming.replan.QueryObservation` per query."""
        controller = self._replan_controller
        return dict(controller.observations) if controller is not None else {}

    # -- streaming -------------------------------------------------------------

    def _check_usable(self) -> None:
        if self._poisoned:
            raise RuntimeError(
                "this sharded runtime was closed after a failure; create a "
                "new runtime (and restore the last checkpoint if desired)"
            )
        if self._flushed:
            raise RuntimeError(
                "this runtime was flushed and its workers stopped; create a "
                "new ShardedRuntime (and restore a checkpoint there if desired)"
            )

    def process(self, event: Event) -> List[EmissionRecord]:
        """Ingest one (possibly out-of-order) event; return merged emissions.

        Emission is asynchronous: records surface once the owning worker has
        acknowledged the batch and every earlier epoch is complete, so a
        given call may return results triggered by earlier events.  All
        records are delivered by the end of :meth:`flush`.
        """
        self._check_usable()
        if not self._started:
            self._start()
        trace = self.observability.start_trace(
            "event", event_type=event.event_type, event_time=event.time
        )
        if trace is None:
            return self._process(event, None)
        with trace:
            records = self._process(event, trace)
            trace.annotate(records=len(records))
            return records

    def _process(self, event: Event, trace) -> List[EmissionRecord]:
        """Body of :meth:`process`; ``trace`` is a sampled root span or None.

        Parent-side spans cover ingest and route/ship; per-event execution
        happens inside the worker processes and shows up in their latency
        histograms instead.
        """
        ingest = None if trace is None else trace.child("ingest")
        try:
            batch = self._ingestor.push(event)
        except LateEventError:
            self.metrics.record_ingest(event.time, len(self._ingestor))
            self.metrics.record_late(rerouted=False)
            if ingest is not None:
                ingest.annotate(late=True)
                ingest.finish()
            raise
        if batch.punctuation:
            self.metrics.record_punctuation()
        else:
            self.metrics.record_ingest(event.time, batch.buffered)
        if ingest is not None:
            ingest.annotate(
                released=len(batch.released),
                late=batch.late_event is not None,
                punctuation=batch.punctuation,
            )
            ingest.finish()
        if batch.late_event is not None:
            self.metrics.record_late(
                rerouted=self._ingestor.late_policy is LatePolicy.SIDE_CHANNEL
            )
            return self._take_ready()
        if batch.released:
            self.metrics.record_release(len(batch.released))
            if trace is None:
                self._route_released(batch.released)
            else:
                with trace.child("route", events=len(batch.released)):
                    self._route_released(batch.released)
        if batch.advanced:
            self.metrics.record_watermark(batch.watermark)
            self._pending_watermark = batch.watermark
        self._maybe_rebalance()
        self._maybe_replan()
        self._pushes_since_ship += 1
        if self._pushes_since_ship >= self._ship_interval:
            # carries the newest watermark (coalescing intermediate ones:
            # emitting windows at a later watermark changes when results
            # appear, never which results appear)
            self._ship_outboxes(self._pending_watermark)
        elif any(len(outbox) >= self._max_batch for outbox in self._outboxes):
            self._ship_outboxes(self._pending_watermark)
        if len(self._inflight) > self._max_inflight:
            # bounded inboxes: block ingestion until the workers drain below
            # the cap, and account the pause as backpressure
            blocked_at = _time.perf_counter()
            while len(self._inflight) > self._max_inflight:
                self._apply_ack(self._next_ack())
                self._release_ready_epochs()
            self.metrics.record_backpressure(_time.perf_counter() - blocked_at)
        self._drain_acks(block=False)
        return self._take_ready()

    def process_batch(self, events: List[Event]) -> List[EmissionRecord]:
        """Ingest an arrival-ordered slice of events; ≡ per-event :meth:`process`.

        The driver loop's batch entry point.  Ingest/route/ship runs in one
        fused loop with the per-event metric observes amortised into
        per-slice totals, and -- the big win -- acknowledgements are drained
        once per slice instead of once per event, so the parent stops
        serialising on the ack-buffer lock between consecutive pushes.
        Shipping decisions (``ship_interval``, ``max_batch``, backpressure)
        still happen per push, so wave boundaries, watermark stamps and the
        records they produce are identical to the per-event path.
        """
        self._check_usable()
        if not events:
            return []
        if not self._started:
            self._start()
        if self.observability.tracer.enabled:
            # sampled tracing wants one root span per event: keep the
            # traced path on the per-event call
            records: List[EmissionRecord] = []
            for event in events:
                records.extend(self.process(event))
            return records
        ingestor = self._ingestor
        push = ingestor.push
        metrics = self.metrics
        perf_counter = _time.perf_counter
        reroutes = ingestor.late_policy is LatePolicy.SIDE_CHANNEL
        ingested = punctuations = released_total = 0
        late_dropped = late_rerouted = 0
        max_time = -math.inf
        buffered_peak = -1
        watermark_seen = -math.inf
        try:
            for event in events:
                try:
                    batch = push(event)
                except LateEventError:
                    ingested += 1
                    if event.time > max_time:
                        max_time = event.time
                    buffered = len(ingestor)
                    if buffered > buffered_peak:
                        buffered_peak = buffered
                    late_dropped += 1
                    raise
                if batch.punctuation:
                    punctuations += 1
                else:
                    ingested += 1
                    if event.time > max_time:
                        max_time = event.time
                    if batch.buffered > buffered_peak:
                        buffered_peak = batch.buffered
                if batch.late_event is not None:
                    if reroutes:
                        late_rerouted += 1
                    else:
                        late_dropped += 1
                    continue
                if batch.released:
                    released_total += len(batch.released)
                    self._route_released(batch.released)
                if batch.advanced:
                    watermark_seen = batch.watermark
                    self._pending_watermark = batch.watermark
                self._maybe_rebalance()
                self._maybe_replan()
                self._pushes_since_ship += 1
                if self._pushes_since_ship >= self._ship_interval:
                    self._ship_outboxes(self._pending_watermark)
                elif any(
                    len(outbox) >= self._max_batch for outbox in self._outboxes
                ):
                    self._ship_outboxes(self._pending_watermark)
                if len(self._inflight) > self._max_inflight:
                    blocked_at = perf_counter()
                    while len(self._inflight) > self._max_inflight:
                        self._apply_ack(self._next_ack())
                        self._release_ready_epochs()
                    metrics.record_backpressure(perf_counter() - blocked_at)
        finally:
            # flushed even when a LateEventError aborts the slice, so the
            # counters match the per-event path's totals exactly
            metrics.record_punctuation(punctuations)
            metrics.record_ingest_batch(ingested, max_time, buffered_peak)
            metrics.record_late_batch(late_dropped, late_rerouted)
            if released_total:
                metrics.record_release(released_total)
            if watermark_seen != -math.inf:
                metrics.record_watermark(watermark_seen)
        self._drain_acks(block=False)
        return self._take_ready()

    def _take_ready(self) -> List[EmissionRecord]:
        ready = self._ready_records
        self._ready_records = []
        return ready

    def drain_pending(self) -> List[EmissionRecord]:
        """Collect records merged outside :meth:`process` calls.

        Emission is asynchronous, so records can become ready while a
        :meth:`checkpoint` quiesces the workers; callers interleaving
        checkpoints with processing use this to pick them up immediately
        instead of waiting for the next :meth:`process` return.
        """
        self._check_usable()
        if not self._started:
            return []
        self._drain_acks(block=False)
        return self._take_ready()

    def flush(self) -> List[EmissionRecord]:
        """Drain everything, close every window, and stop the workers."""
        self._check_usable()
        if not self._started:
            self._start()
        remaining = self._ingestor.drain()
        if remaining:
            self.metrics.record_release(len(remaining))
            self._route_released(remaining)
        # drained events ride inside the flush operation so each worker can
        # route them past the watermark (+inf), like the single-process flush
        payloads = {}
        for shard in range(self.shard_count):
            events = self._outboxes[shard]
            payload = (
                _encode_event_blob(events)
                if self._ship_serialized and events
                else events
            )
            payloads[shard] = ("flush", self._epoch, payload)
            self.shard_stats[shard].record_shipment(len(events))
            self._outboxes[shard] = []
        self._pushes_since_ship = 0
        self._pending_watermark = None
        self._ship("flush", range(self.shard_count), payloads)
        self._drain_acks(block=True)
        if self.observability.enabled:
            # last chance to pull the worker registries: after close() the
            # processes are gone, so registry_snapshot() serves this view
            self._final_worker_registries = self._collect_worker_registries()
        self._flushed = True
        self.close()
        return self._take_ready()

    # run()/drive() come from PipelineDriver: the shared source -> process ->
    # emit -> sink loop with periodic checkpointing and late-event draining

    # -- introspection ---------------------------------------------------------

    @property
    def watermark(self) -> float:
        """Current watermark of the (parent) ingestion layer."""
        return self._ingestor.watermark

    @property
    def buffered_events(self) -> int:
        """Events currently held in the parent reorder buffer."""
        return len(self._ingestor)

    @property
    def late_events(self) -> List[Event]:
        """Side channel of late events (``LatePolicy.SIDE_CHANNEL``)."""
        return list(self._ingestor.side_channel)

    def take_late_events(self) -> List[Event]:
        """Drain (return and clear) the late-event side channel."""
        return self._ingestor.take_side_channel()

    def reprocess_late(self) -> List[EmissionRecord]:
        """Replay the side channel; emit correction records for its windows.

        The sharded counterpart of
        :meth:`~repro.streaming.runtime.StreamingRuntime.reprocess_late`:
        the drained late events run through a fresh single-process replay
        runtime hosting the same queries (they are few -- no sharding
        needed) and come back flagged ``is_correction=True``.
        """
        if self._poisoned:
            raise RuntimeError(
                "this sharded runtime was closed after a failure; create a "
                "new runtime (and restore the last checkpoint if desired)"
            )
        late = self._ingestor.take_side_channel()
        if not late:
            return []
        replay = _build_worker_runtime(self._specs)
        return replay_corrections(replay, late, self.watermark, self.metrics)

    def shard_report(self) -> str:
        """Readable per-shard routing/merging statistics."""
        lines = [
            f"shards              : {self.shard_count} (of {self.workers} requested)"
        ]
        if self.fallback_reason:
            lines.append(f"fallback            : {self.fallback_reason}")
        if self._router is not None:
            lines.append(
                f"router              : v{self._router.version}, "
                f"{self._router.slots} slots"
            )
        for shard, stats in enumerate(self.shard_stats):
            restarts = (
                f" restarts={self.restart_counts[shard]}"
                if self.restart_counts and self.restart_counts[shard]
                else ""
            )
            lines.append(
                f"shard {shard}             : events={stats.events_sent} "
                f"batches={stats.batches_sent} records={stats.records_merged} "
                f"acks={stats.acks_received} "
                f"processing={stats.processing_seconds:.3f}s{restarts}"
            )
        for note in self.rebalance_log:
            lines.append(f"rebalance           : {note}")
        for record in self.replan_log:
            lines.append(
                f"replan              : {record['query']} "
                f"{record['from']}->{record['to']} (v{record['version']}, "
                f"after {record['events_total']} events)"
            )
        for note in self.recovery_log:
            lines.append(f"recovery            : {note}")
        return "\n".join(lines)

    # -- checkpointing ---------------------------------------------------------

    def checkpoint(self) -> Dict[str, object]:
        """Snapshot the runtime in the single-process checkpoint schema.

        The worker executors' states are merged per query, so the snapshot
        is indistinguishable from one taken by a
        :class:`~repro.streaming.runtime.StreamingRuntime` over the same
        stream prefix -- it restores into a single-process runtime or into a
        :class:`ShardedRuntime` with *any* worker count.  An informational
        ``"sharded"`` key records the topology, including the versioned
        router map; a :class:`ShardedRuntime` with the same worker count
        adopts the map on restore (post-migration topology), every other
        restorer ignores it.
        """
        self._check_usable()
        if not self._started:
            self._start()
        started = _time.perf_counter()
        # events sitting in parent outboxes must be part of the workers'
        # state, not lost between router and snapshot
        self._ship_outboxes(self._pending_watermark)
        shard_payloads = self._collect_shard_snapshots()
        snapshot = self._compose_snapshot(shard_payloads)
        if self.max_restarts:
            # everything before this consistent cut is durable; the replay
            # buffers only need to cover what ships from here on
            self._last_checkpoint = snapshot
            self._replay = [[] for _ in range(self.shard_count)]
        self._observe_lifecycle("checkpoint", _time.perf_counter() - started)
        return snapshot

    def _collect_shard_snapshots(self) -> Dict[int, Dict]:
        """Quiesce in-flight work and collect every worker's snapshot payload."""
        self._drain_acks(block=True)
        self._ship("checkpoint", range(self.shard_count))
        shard_payloads: Dict[int, Dict] = {}
        collected = 0
        while collected < self.shard_count:
            ack = self._next_ack()
            if ack[0] == "ok" and isinstance(ack[3], dict) and "executors" in ack[3]:
                if ack[2] not in shard_payloads:
                    # a shard can legitimately answer twice: its payload was
                    # delivered, the worker died, and the re-issued request
                    # produced an equivalent one -- count each shard once
                    collected += 1
                shard_payloads[ack[2]] = ack[3]
                # keep the epoch's pending set accurate shard by shard: a
                # recovery mid-collection re-requests exactly the payloads
                # still owed (see _recover)
                entry = self._inflight.get(ack[1])
                if entry is not None:
                    entry.pending.discard(ack[2])
                    if not entry.pending:
                        self._inflight.pop(ack[1], None)
            else:  # a straggling batch ack ahead of the checkpoint ack
                self._apply_ack(ack)
        self._release_ready_epochs()
        return shard_payloads

    def _collect_worker_registries(self) -> List[dict]:
        """Quiesce in-flight work and pull every worker's registry snapshot.

        The metrics counterpart of :meth:`_collect_shard_snapshots` (same
        quiesce, same recovery-aware collection loop) for the lightweight
        ``metrics`` operation, which carries no executor state.
        """
        self._drain_acks(block=True)
        self._ship("metrics", range(self.shard_count))
        registries: Dict[int, dict] = {}
        collected = 0
        while collected < self.shard_count:
            ack = self._next_ack()
            if (
                ack[0] == "ok"
                and isinstance(ack[3], dict)
                and "registry" in ack[3]
                and "executors" not in ack[3]
            ):
                if ack[2] not in registries:
                    collected += 1
                registries[ack[2]] = ack[3]["registry"]
                entry = self._inflight.get(ack[1])
                if entry is not None:
                    entry.pending.discard(ack[2])
                    if not entry.pending:
                        self._inflight.pop(ack[1], None)
            else:  # a straggling batch ack ahead of the metrics ack
                self._apply_ack(ack)
        self._release_ready_epochs()
        return [registries[shard] for shard in sorted(registries)]

    def _compose_snapshot(self, shard_payloads: Dict[int, Dict]) -> Dict[str, object]:
        """Merge per-worker payloads into the single-process snapshot schema."""
        executors = {
            spec.name: merge_executor_snapshots(
                [
                    shard_payloads[s]["executors"][spec.name]
                    for s in sorted(shard_payloads)
                ]
            )
            for spec in self._specs
        }
        # the merged registry restores into ANY runtime (it is the same
        # schema a single-process checkpoint writes); the per-worker views
        # ride informationally in the sharded section so a recovered worker
        # can resume its own slice exactly
        worker_registries = {
            str(shard): shard_payloads[shard].get("registry")
            for shard in sorted(shard_payloads)
        }
        merged_registry = merge_snapshots(
            self.observability.registry.snapshot(),
            *[r for r in worker_registries.values() if isinstance(r, dict)],
        )
        return {
            "version": CHECKPOINT_VERSION,
            "queries": [
                {
                    "name": spec.name,
                    "granularity": self._engines[spec.name].granularity,
                    "definition": self._engines[spec.name].query.describe(),
                    "emit_empty_groups": spec.emit_empty_groups,
                }
                for spec in self._specs
            ],
            "executors": executors,
            "ingest": self._ingestor.snapshot(),
            "metrics": self.metrics.snapshot(),
            "emitted_counts": dict(self._emitted_counts),
            "registry": merged_registry,
            "sharded": {
                "workers": self.shard_count,
                "router": self._router.snapshot(),
                "worker_registries": worker_registries,
                # the watermark the worker slices stand at -- what a
                # recovery restore must resume emission from (equals the
                # metrics watermark for checkpoint(), which ships pending
                # watermarks first, but lags it during a migration quiesce)
                "watermark": (
                    None
                    if self._shipped_watermark == -math.inf
                    else self._shipped_watermark
                ),
            },
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Restore a snapshot (sharded or single-process) into this runtime.

        The same queries must be registered (names, granularities,
        definitions, ``emit_empty_groups``) as in the checkpointed runtime;
        the worker count may differ -- every aggregator is re-routed to the
        shard owning its partition key under *this* runtime's topology.
        A sharded snapshot taken under the *same* worker count carries its
        versioned router map along: the restored runtime adopts the
        post-migration assignment instead of the seed one.  Pending records
        of this runtime's own timeline are discarded.
        """
        version = state.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {version!r} is not supported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        self._check_usable()
        if not self._started:
            self._start()
        try:
            recorded = [
                (
                    q["name"],
                    q["granularity"],
                    q.get("definition"),
                    bool(q.get("emit_empty_groups", False)),
                )
                for q in state["queries"]
            ]
        except (KeyError, TypeError) as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc
        if self._replan_policy is not None:
            # with re-planning enabled the checkpointed granularity wins: a
            # snapshot taken after a migration restores into a runtime whose
            # queries were registered at the seed granularity, so adopt the
            # recorded plan (parent and workers) before the identity check
            recorded_by_name = {entry[0]: entry for entry in recorded}
            for spec in self._specs:
                entry = recorded_by_name.get(spec.name)
                if entry is None or entry[1] == self._engines[spec.name].granularity:
                    continue
                try:
                    self._drain_acks(block=True)
                    self._apply_replan([(spec.name, entry[1])])
                except Exception:
                    pass  # the identity check below reports the mismatch
        current = [
            (
                spec.name,
                self._engines[spec.name].granularity,
                self._engines[spec.name].query.describe(),
                bool(spec.emit_empty_groups),
            )
            for spec in self._specs
        ]
        if recorded != current:
            names = [(entry[0], entry[1]) for entry in recorded]
            raise CheckpointError(
                f"registered queries do not match the checkpointed queries "
                f"{names}: names, granularities, definitions and "
                f"emit_empty_groups must be identical"
            )
        # quiesce: outstanding epochs and unshipped events belong to the
        # abandoned timeline
        self._drain_acks(block=True)
        self._ready_records = []
        self._outboxes = [[] for _ in range(self.shard_count)]
        self._pushes_since_ship = 0
        self._pending_watermark = None
        restore_started = _time.perf_counter()
        if self.max_restarts:
            # recorded before the ship: a worker that dies mid-restore is
            # recovered straight into this state (with nothing to replay).
            # The recovery baseline must NOT carry per-worker registries:
            # below, every worker resets its registry (the parent's restored
            # base snapshot already contains the workers' shares), so a
            # later recovery must reset the replacement the same way or the
            # share would be counted twice.
            if isinstance(state.get("sharded"), dict):
                sharded_section = dict(state["sharded"])
                sharded_section.pop("worker_registries", None)
                baseline = dict(state)
                baseline["sharded"] = sharded_section
            else:
                baseline = state
            self._last_checkpoint = baseline
            self._replay = [[] for _ in range(self.shard_count)]
        try:
            # adopt the checkpointed router map when the topology matches;
            # rebuild the seed map otherwise (aggregators are re-split by
            # whichever map ends up live, so both are consistent)
            sharded_info = state.get("sharded")
            sharded_info = sharded_info if isinstance(sharded_info, dict) else {}
            router_state = sharded_info.get("router")
            if (
                isinstance(router_state, dict)
                and sharded_info.get("workers") == self.shard_count
            ):
                self._router = ShardRouter.from_snapshot(router_state, self.shard_count)
            else:
                self._router = ShardRouter(
                    self.shard_count, self._policy.slots_per_worker
                )
            self._slot_loads = [0] * self._router.slots
            self._events_since_rebalance_check = 0
            self._shipped_watermark = -math.inf
            splits = {
                shard: {"executors": {}} for shard in range(self.shard_count)
            }
            for spec in self._specs:
                per_shard = split_executor_snapshot(
                    state["executors"][spec.name],
                    self.shard_count,
                    owner=self._router.owner_of_key,
                )
                for shard, snapshot in per_shard.items():
                    splits[shard]["executors"][spec.name] = snapshot
            self._ingestor.restore(state["ingest"])
            self.metrics.restore(state["metrics"])
            # the merged registry becomes the parent's base; the workers
            # reset theirs (fifth payload element) so base + fresh worker
            # deltas stays the cumulative view -- old checkpoints carry no
            # registry and simply reset everything
            self.observability.registry.restore(state.get("registry"))
            self._final_worker_registries = None
            self._emitted_counts = {
                name: int(count) for name, count in state["emitted_counts"].items()
            }
            payloads = {
                shard: (
                    "restore",
                    self._epoch,
                    splits[shard]["executors"],
                    None,
                    "reset",
                )
                for shard in range(self.shard_count)
            }
            self._ship("restore", range(self.shard_count), payloads)
            self._drain_acks(block=True)
        except WorkerCrashError:
            raise  # _fail already poisoned the runtime and stopped the workers
        except Exception as exc:
            # the workers now hold a half-applied timeline; stop them so a
            # failed restore cannot leak idle processes
            self._poisoned = True
            self.close()
            if isinstance(exc, CheckpointError):
                raise
            raise CheckpointError(f"cannot restore checkpoint: {exc}") from exc
        self._flushed = False
        self._observe_lifecycle("restore", _time.perf_counter() - restore_started)

    def registry_snapshot(self) -> Dict[str, object]:
        """Merged registry view across the parent and every worker.

        The sharded counterpart of
        :meth:`~repro.streaming.runtime.StreamingRuntime.registry_snapshot`:
        runtime counters (:class:`StreamingMetrics`), the parent-side
        observability registry (shipping, lifecycle, results), and -- on a
        live runtime -- a fresh pull of every worker's registry, which
        briefly quiesces in-flight work.  After :meth:`flush` the
        registries collected during the flush serve the final view, so the
        merged numbers equal a single-process run over the same stream.
        """
        snapshots = [
            self.metrics.registry_snapshot(),
            self.observability.registry.snapshot(),
        ]
        if self._final_worker_registries is not None:
            snapshots.extend(self._final_worker_registries)
        elif (
            self.observability.enabled
            and self._started
            and not self._flushed
            and not self._poisoned
            and self._procs
        ):
            snapshots.extend(self._collect_worker_registries())
        return finalize_snapshot(merge_snapshots(*snapshots))

    def __repr__(self) -> str:
        return (
            f"ShardedRuntime({len(self._specs)} queries, "
            f"workers={self.workers}, shards={self.shard_count or 'unstarted'}, "
            f"watermark={self._ingestor.watermark:g})"
        )
