"""Multi-process sharded streaming runtime (Sections 7-8, "Parallel Processing").

Equivalence predicates and the GROUP-BY clause partition the stream into
sub-streams that never interact, so they can be processed on different CPU
cores.  :class:`ShardedRuntime` exploits that with real processes -- the
structure :class:`~repro.core.parallel.ParallelExecutor` demonstrates with
threads, but free of the GIL:

* the **parent** applies out-of-order ingestion exactly once -- one
  :class:`~repro.streaming.ingest.OutOfOrderIngestor` restores order,
  generates watermarks and handles late events -- and routes every released
  event to the worker owning its partition key
  (:func:`~repro.core.parallel.shard_index` over the key computed by
  ``plan.partition_key``, the same computation
  :func:`~repro.core.parallel.partition_stream` uses);
* each **worker process** hosts a full
  :class:`~repro.streaming.runtime.StreamingRuntime` for the registered
  queries and consumes already-ordered, watermarked batches through
  :meth:`~repro.streaming.runtime.StreamingRuntime.process_ordered`;
* emitted windows travel back over a result queue and are **merged in
  watermark order**: batches are numbered (epochs) and an epoch's records
  are released only once every earlier epoch is complete;
* :meth:`ShardedRuntime.checkpoint` composes the per-worker snapshots into
  one runtime-level snapshot in the *same versioned schema*
  :class:`~repro.streaming.runtime.StreamingRuntime` writes -- a sharded
  checkpoint restores into a single-process runtime, a single-process
  checkpoint restores into any worker count, and worker counts can change
  between checkpoint and restore;
* a worker that dies (OOM kill, segfault, uncaught error) is detected and
  reported as :class:`~repro.errors.WorkerCrashError` instead of a hang.

Queries without partition attributes cannot be sharded (every event maps to
the same key); the runtime then falls back to a single shard and records the
reason in :attr:`ShardedRuntime.fallback_reason`.

Example
-------
::

    runtime = ShardedRuntime(workers=4, lateness=5.0)
    runtime.register(query_text, name="q")
    for event in source:
        for record in runtime.process(event):
            publish(record.query, record.result)
    for record in runtime.flush():
        publish(record.query, record.result)
"""

from __future__ import annotations

import math
import multiprocessing
import queue as _queue
import time as _time
import traceback
import warnings
from typing import Dict, Iterable, List, Optional, Union

from repro.core.engine import CograEngine
from repro.core.parallel import shard_index
from repro.errors import CheckpointError, LateEventError, WorkerCrashError
from repro.events.event import Event
from repro.query.parser import parse_query
from repro.query.query import Query
from repro.streaming.checkpoint import (
    CHECKPOINT_VERSION,
    restore_executor,
    snapshot_executor,
)
from repro.streaming.emission import EmissionRecord
from repro.streaming.ingest import (
    BoundedDelayWatermark,
    LatePolicy,
    OutOfOrderIngestor,
    WatermarkStrategy,
)
from repro.streaming.metrics import StreamingMetrics
from repro.streaming.runtime import StreamingRuntime

#: how long the parent waits for worker liveness before declaring a hang
ACK_TIMEOUT_SECONDS = 120.0


class ShardStats:
    """Per-worker accounting the parent keeps while routing and merging."""

    __slots__ = ("events_sent", "batches_sent", "records_merged", "processing_seconds")

    def __init__(self) -> None:
        self.events_sent = 0
        self.batches_sent = 0
        self.records_merged = 0
        self.processing_seconds = 0.0

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view for reports and tests."""
        return {
            "events_sent": self.events_sent,
            "batches_sent": self.batches_sent,
            "records_merged": self.records_merged,
            "processing_seconds": self.processing_seconds,
        }

    def __repr__(self) -> str:
        return (
            f"ShardStats(events={self.events_sent}, batches={self.batches_sent}, "
            f"records={self.records_merged})"
        )


class _QuerySpec:
    """Everything a worker needs to register one query (picklable)."""

    __slots__ = ("name", "query", "granularity", "emit_empty_groups")

    def __init__(
        self,
        name: str,
        query: Query,
        granularity: Optional[str],
        emit_empty_groups: bool,
    ):
        self.name = name
        self.query = query
        self.granularity = granularity
        self.emit_empty_groups = emit_empty_groups


def _build_worker_runtime(specs: List[_QuerySpec]) -> StreamingRuntime:
    """The runtime a worker process hosts: same queries, no reorder buffer.

    The parent already ordered and watermarked the stream, so the worker
    consumes it via :meth:`StreamingRuntime.process_ordered`; the worker's
    own ingestor stays empty and its lateness bound is irrelevant.
    """
    runtime = StreamingRuntime(lateness=0.0)
    for spec in specs:
        runtime.register(
            spec.query,
            name=spec.name,
            granularity=spec.granularity,
            emit_empty_groups=spec.emit_empty_groups,
        )
    return runtime


def _worker_loop(shard: int, specs: List[_QuerySpec], inbox, outbox) -> None:
    """Body of one worker process.

    Consumes operation tuples from ``inbox`` until the ``None`` sentinel and
    acknowledges every operation on ``outbox`` as ``("ok", epoch, shard,
    payload, processing_seconds)`` or ``("error", epoch, shard, traceback)``.
    Takes plain queue-like objects so tests can run it synchronously in
    process with pre-loaded :class:`queue.Queue` instances.
    """
    try:
        runtime = _build_worker_runtime(specs)
    except Exception:
        outbox.put(("error", -1, shard, traceback.format_exc()))
        return
    outbox.put(("ok", -1, shard, "ready", 0.0))
    while True:
        message = inbox.get()
        if message is None:
            break
        op, epoch = message[0], message[1]
        try:
            started = _time.perf_counter()
            if op == "batch":
                events, watermark = message[2], message[3]
                records = runtime.process_ordered(events, watermark)
                outbox.put(
                    ("ok", epoch, shard, records, _time.perf_counter() - started)
                )
            elif op == "flush":
                # final events run past the watermark, exactly like the
                # single-process flush routing drained events at +inf; the
                # +inf advance then closes every remaining window
                records = runtime.process_ordered(message[2], math.inf)
                records.extend(runtime.flush())
                outbox.put(
                    ("ok", epoch, shard, records, _time.perf_counter() - started)
                )
            elif op == "checkpoint":
                payload = {
                    "executors": {
                        r.name: snapshot_executor(r.executor)
                        for r in runtime._queries
                    },
                }
                outbox.put(("ok", epoch, shard, payload, 0.0))
            elif op == "restore":
                executors = message[2]
                for registered in runtime._queries:
                    registered.engine.reset()
                    if registered.name in executors:
                        restore_executor(
                            registered.executor, executors[registered.name]
                        )
                runtime._flushed = False
                runtime._ordered_watermark = -math.inf
                outbox.put(("ok", epoch, shard, None, 0.0))
            else:
                raise ValueError(f"unknown worker operation {op!r}")
        except Exception:
            outbox.put(("error", epoch, shard, traceback.format_exc()))
            # the runtime state after a failed operation is unknown; stop
            # consuming so the parent sees the shard as failed, not stuck
            break


class _Epoch:
    """One shipped wave of work and the acknowledgements it still awaits."""

    __slots__ = ("pending", "records")

    def __init__(self, pending: set) -> None:
        self.pending = pending
        self.records: List[EmissionRecord] = []


class ShardedRuntime:
    """Executes registered queries across worker processes, one per hash-range.

    Parameters
    ----------
    workers:
        Number of worker processes (hash-ranges of partition keys).  Forced
        to 1 -- with a diagnostic in :attr:`fallback_reason` -- when the
        registered queries cannot be sharded consistently.
    lateness / watermark_strategy / late_policy / emit_empty_groups:
        As on :class:`~repro.streaming.runtime.StreamingRuntime`; ingestion
        happens once, in the parent.
    ship_interval:
        How many ingested events to coalesce before shipping a wave (with
        the newest watermark) to the workers.  ``1`` ships on every push,
        so every record carries the same watermark stamp as in a
        single-process run (record *order* within a wave is canonical --
        window, then group, then query -- so multi-query jobs may
        interleave differently), at the price of one IPC round per event;
        larger values amortise the queue overhead and only delay *when*
        windows are emitted, never *what* is emitted.
    max_batch:
        Hard outbox bound: a shard's pending events are shipped once they
        reach this size even when ``ship_interval`` has not elapsed.
    start_method:
        Optional :mod:`multiprocessing` start method (default: ``fork``
        when available, the platform default otherwise).
    """

    def __init__(
        self,
        workers: int = 2,
        lateness: float = 0.0,
        watermark_strategy: Optional[WatermarkStrategy] = None,
        late_policy: Union[LatePolicy, str] = LatePolicy.DROP,
        emit_empty_groups: bool = False,
        ship_interval: int = 64,
        max_batch: int = 512,
        start_method: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError(f"worker count must be at least 1, got {workers}")
        if ship_interval < 1:
            raise ValueError(f"ship_interval must be at least 1, got {ship_interval}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be at least 1, got {max_batch}")
        self.workers = workers
        strategy = watermark_strategy or BoundedDelayWatermark(lateness)
        self._ingestor = OutOfOrderIngestor(strategy, LatePolicy(late_policy))
        self.metrics = StreamingMetrics()
        self._emit_empty_groups = emit_empty_groups
        self._ship_interval = ship_interval
        self._max_batch = max_batch
        #: epochs allowed in flight before ingestion blocks on worker acks
        self._max_inflight = 64
        self._pushes_since_ship = 0
        #: newest watermark not yet delivered to the workers, if any
        self._pending_watermark: Optional[float] = None
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = multiprocessing.get_context(start_method)

        self._specs: List[_QuerySpec] = []
        self._engines: Dict[str, CograEngine] = {}
        #: the plan whose partition_key routes events (set at start)
        self._routing_plan = None
        self.shard_count = 0
        #: why sharding degraded to a single shard, or None
        self.fallback_reason: Optional[str] = None

        self._procs: List = []
        self._inboxes: List = []
        self._ack_queue = None
        self._started = False
        self._flushed = False
        self._poisoned = False
        self._epoch = 0
        self._inflight: Dict[int, _Epoch] = {}
        self._outboxes: List[List[Event]] = []
        self._ready_records: List[EmissionRecord] = []
        self._emitted_counts: Dict[str, int] = {}
        self.shard_stats: List[ShardStats] = []

    # -- registration ----------------------------------------------------------

    def register(
        self,
        query: Union[Query, str],
        name: Optional[str] = None,
        granularity=None,
        emit_empty_groups: Optional[bool] = None,
    ) -> str:
        """Attach a query (text or :class:`~repro.query.query.Query`).

        Mirrors :meth:`StreamingRuntime.register`, except that prepared
        :class:`CograEngine` instances are rejected: engines own in-process
        executor state that cannot be shipped to worker processes.
        """
        if isinstance(query, CograEngine):
            raise TypeError(
                "a prepared CograEngine cannot back a sharded query (its "
                "executor state lives in this process); register the query "
                "text or Query object instead"
            )
        if self._started:
            raise RuntimeError(
                "queries must be registered before the first event is ingested"
            )
        if isinstance(query, str):
            query = parse_query(query)
        flag = self._emit_empty_groups if emit_empty_groups is None else emit_empty_groups
        # building the engine here validates the query, resolves the
        # granularity the same way the workers will, and gives the parent
        # the plan it routes with and the definition text checkpoints record
        engine = CograEngine(query, emit_empty_groups=flag, granularity=granularity)
        name = name or engine.query.name
        if name in self._engines:
            raise ValueError(f"a query named {name!r} is already registered")
        self._specs.append(_QuerySpec(name, query, granularity, flag))
        self._engines[name] = engine
        return name

    @property
    def query_names(self) -> List[str]:
        """Names of the registered queries, in registration order."""
        return [spec.name for spec in self._specs]

    # -- worker lifecycle ------------------------------------------------------

    def _resolve_shard_count(self) -> int:
        """Workers the stream can actually use, with the fallback diagnostic."""
        signatures = {
            name: engine.plan.partition_attributes
            for name, engine in self._engines.items()
        }
        unpartitioned = sorted(name for name, sig in signatures.items() if not sig)
        if unpartitioned:
            self.fallback_reason = (
                f"queries {unpartitioned} have no partition attributes "
                "(no GROUP-BY or equivalence predicate), so the stream cannot "
                "be split; running a single shard"
            )
        elif len(set(signatures.values())) > 1:
            self.fallback_reason = (
                f"registered queries partition on different attributes "
                f"{sorted(set(signatures.values()))}; one event would belong "
                "to different shards for different queries; running a single "
                "shard"
            )
        if self.fallback_reason is not None:
            if self.workers > 1:
                warnings.warn(self.fallback_reason, RuntimeWarning, stacklevel=3)
            return 1
        return self.workers

    def _start(self) -> None:
        """Spawn the worker processes and wait for their ready handshakes."""
        if not self._specs:
            raise RuntimeError("no queries are registered with this runtime")
        self.shard_count = self._resolve_shard_count()
        self._routing_plan = self._engines[self._specs[0].name].plan
        self._ack_queue = self._context.Queue()
        self._inboxes = [self._context.Queue() for _ in range(self.shard_count)]
        self._outboxes = [[] for _ in range(self.shard_count)]
        self.shard_stats = [ShardStats() for _ in range(self.shard_count)]
        self._procs = [
            self._context.Process(
                target=_worker_loop,
                args=(shard, self._specs, self._inboxes[shard], self._ack_queue),
                daemon=True,
                name=f"cogra-shard-{shard}",
            )
            for shard in range(self.shard_count)
        ]
        for proc in self._procs:
            proc.start()
        self._started = True
        ready = set()
        while len(ready) < self.shard_count:
            ack = self._next_ack()
            if ack[1] != -1 or ack[3] != "ready":
                raise WorkerCrashError(
                    f"unexpected worker handshake {ack[:2]!r}", shard=ack[2]
                )
            ready.add(ack[2])

    def close(self) -> None:
        """Stop the worker processes (idempotent).

        Called by :meth:`flush` on success and by users on error paths; a
        closed runtime cannot process further events.
        """
        if not self._started:
            self._started = True  # a closed runtime must not restart lazily
            self._poisoned = True
            return
        for inbox in self._inboxes:
            try:
                inbox.put(None)
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5.0)
        for q in self._inboxes + ([self._ack_queue] if self._ack_queue else []):
            q.close()
        self._procs = []
        self._inboxes = []
        self._ack_queue = None

    def __enter__(self) -> "ShardedRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            if self._procs:
                for proc in self._procs:
                    if proc.is_alive():
                        proc.terminate()
        except Exception:
            pass

    # -- parent-side messaging -------------------------------------------------

    def _fail(self, message: str, shard: Optional[int], exitcode=None) -> None:
        self._poisoned = True
        error = WorkerCrashError(message, shard=shard, exitcode=exitcode)
        self.close()
        raise error

    def _next_ack(self):
        """Blocking read of one acknowledgement, with crash detection."""
        deadline = _time.monotonic() + ACK_TIMEOUT_SECONDS
        while True:
            try:
                ack = self._ack_queue.get(timeout=0.2)
            except _queue.Empty:
                for shard, proc in enumerate(self._procs):
                    if not proc.is_alive():
                        self._fail(
                            f"shard {shard} (pid {proc.pid}) exited with code "
                            f"{proc.exitcode} while work was in flight",
                            shard,
                            exitcode=proc.exitcode,
                        )
                if _time.monotonic() > deadline:  # pragma: no cover - hang guard
                    self._fail(
                        f"no worker acknowledgement within {ACK_TIMEOUT_SECONDS:g}s",
                        None,
                    )
                continue
            if ack[0] == "error":
                shard = ack[2]
                self._fail(
                    f"shard {shard} failed:\n{ack[3]}", shard, exitcode=None
                )
            return ack

    def _apply_ack(self, ack) -> None:
        """Fold one batch/flush/restore acknowledgement into its epoch."""
        _, epoch, shard, records, seconds = ack
        records = records or ()
        entry = self._inflight.get(epoch)
        if entry is None or shard not in entry.pending:  # pragma: no cover
            raise WorkerCrashError(
                f"shard {shard} acknowledged unknown epoch {epoch}", shard=shard
            )
        entry.pending.discard(shard)
        entry.records.extend(records)
        stats = self.shard_stats[shard]
        stats.records_merged += len(records)
        stats.processing_seconds += seconds
        self.metrics.record_processing_seconds(seconds)

    def _release_ready_epochs(self) -> None:
        """Move completed epochs -- in order -- into the ready record list.

        Records within one epoch come from disjoint shards; sorting by
        (window, group, query) makes the merged order independent of ack
        arrival and of the worker count.
        """
        while self._inflight:
            first = min(self._inflight)
            entry = self._inflight[first]
            if entry.pending:
                return
            del self._inflight[first]
            entry.records.sort(
                key=lambda record: (
                    record.result.window_id,
                    repr(record.result.group_key),
                    record.query,
                )
            )
            for record in entry.records:
                self._emitted_counts[record.query] = (
                    self._emitted_counts.get(record.query, 0) + 1
                )
            self.metrics.record_emission(len(entry.records))
            self._ready_records.extend(entry.records)

    def _drain_acks(self, block: bool) -> None:
        """Consume acknowledgements; with ``block`` wait until none in flight."""
        while self._inflight:
            self._release_ready_epochs()
            if not self._inflight:
                break
            if block:
                self._apply_ack(self._next_ack())
            else:
                try:
                    ack = self._ack_queue.get_nowait()
                except _queue.Empty:
                    break
                if ack[0] == "error":
                    self._fail(
                        f"shard {ack[2]} failed:\n{ack[3]}", ack[2], exitcode=None
                    )
                self._apply_ack(ack)
        self._release_ready_epochs()

    def _ship(self, op: str, shards: Iterable[int], payloads=None) -> int:
        """Send one epoch of ``op`` messages to ``shards``; return the epoch."""
        epoch = self._epoch
        self._epoch += 1
        shards = list(shards)
        self._inflight[epoch] = _Epoch(set(shards))
        for shard in shards:
            proc = self._procs[shard]
            if not proc.is_alive():
                self._fail(
                    f"shard {shard} (pid {proc.pid}) exited with code "
                    f"{proc.exitcode} before epoch {epoch} could be sent",
                    shard,
                    exitcode=proc.exitcode,
                )
            message = payloads[shard] if payloads is not None else (op, epoch)
            self._inboxes[shard].put(message)
        return epoch

    def _ship_outboxes(self, watermark: Optional[float]) -> None:
        """Ship buffered events (and, with a watermark, an advance) as one epoch.

        A watermark advance must reach *every* shard -- windows close on all
        of them -- while a plain overflow ship only goes to shards that have
        events.
        """
        self._pushes_since_ship = 0
        self._pending_watermark = None
        if watermark is None:
            shards = [s for s in range(self.shard_count) if self._outboxes[s]]
            if not shards:
                return
        else:
            shards = list(range(self.shard_count))
        payloads = {}
        for shard in shards:
            events = self._outboxes[shard]
            payloads[shard] = ("batch", self._epoch, events, watermark)
            stats = self.shard_stats[shard]
            stats.events_sent += len(events)
            stats.batches_sent += 1
            self._outboxes[shard] = []
        self._ship("batch", shards, payloads)

    def _route_released(self, events: Iterable[Event]) -> None:
        """Append released events to the outbox of the shard owning their key.

        Uses the identical key computation as
        :func:`~repro.core.parallel.partition_stream` (``plan.partition_key``)
        so sharded, thread-parallel and sequential runs agree on partitions.
        """
        plan = self._routing_plan
        count = self.shard_count
        if count == 1:
            self._outboxes[0].extend(events)
            return
        for event in events:
            shard = shard_index(plan.partition_key(event), count)
            self._outboxes[shard].append(event)

    # -- streaming -------------------------------------------------------------

    def _check_usable(self) -> None:
        if self._poisoned:
            raise RuntimeError(
                "this sharded runtime was closed after a failure; create a "
                "new runtime (and restore the last checkpoint if desired)"
            )
        if self._flushed:
            raise RuntimeError(
                "this runtime was flushed and its workers stopped; create a "
                "new ShardedRuntime (and restore a checkpoint there if desired)"
            )

    def process(self, event: Event) -> List[EmissionRecord]:
        """Ingest one (possibly out-of-order) event; return merged emissions.

        Emission is asynchronous: records surface once the owning worker has
        acknowledged the batch and every earlier epoch is complete, so a
        given call may return results triggered by earlier events.  All
        records are delivered by the end of :meth:`flush`.
        """
        self._check_usable()
        if not self._started:
            self._start()
        try:
            batch = self._ingestor.push(event)
        except LateEventError:
            self.metrics.record_ingest(event.time, len(self._ingestor))
            self.metrics.record_late(rerouted=False)
            raise
        if batch.punctuation:
            self.metrics.record_punctuation()
        else:
            self.metrics.record_ingest(event.time, batch.buffered)
        if batch.late_event is not None:
            self.metrics.record_late(
                rerouted=self._ingestor.late_policy is LatePolicy.SIDE_CHANNEL
            )
            return self._take_ready()
        if batch.released:
            self.metrics.record_release(len(batch.released))
            self._route_released(batch.released)
        if batch.advanced:
            self.metrics.record_watermark(batch.watermark)
            self._pending_watermark = batch.watermark
        self._pushes_since_ship += 1
        if self._pushes_since_ship >= self._ship_interval:
            # carries the newest watermark (coalescing intermediate ones:
            # emitting windows at a later watermark changes when results
            # appear, never which results appear)
            self._ship_outboxes(self._pending_watermark)
        elif any(len(outbox) >= self._max_batch for outbox in self._outboxes):
            self._ship_outboxes(self._pending_watermark)
        while len(self._inflight) > self._max_inflight:
            self._apply_ack(self._next_ack())
            self._release_ready_epochs()
        self._drain_acks(block=False)
        return self._take_ready()

    def _take_ready(self) -> List[EmissionRecord]:
        ready = self._ready_records
        self._ready_records = []
        return ready

    def drain_pending(self) -> List[EmissionRecord]:
        """Collect records merged outside :meth:`process` calls.

        Emission is asynchronous, so records can become ready while a
        :meth:`checkpoint` quiesces the workers; callers interleaving
        checkpoints with processing use this to pick them up immediately
        instead of waiting for the next :meth:`process` return.
        """
        self._check_usable()
        if not self._started:
            return []
        self._drain_acks(block=False)
        return self._take_ready()

    def flush(self) -> List[EmissionRecord]:
        """Drain everything, close every window, and stop the workers."""
        self._check_usable()
        if not self._started:
            self._start()
        remaining = self._ingestor.drain()
        if remaining:
            self.metrics.record_release(len(remaining))
            self._route_released(remaining)
        # drained events ride inside the flush operation so each worker can
        # route them past the watermark (+inf), like the single-process flush
        payloads = {}
        for shard in range(self.shard_count):
            events = self._outboxes[shard]
            payloads[shard] = ("flush", self._epoch, events)
            stats = self.shard_stats[shard]
            stats.events_sent += len(events)
            stats.batches_sent += 1
            self._outboxes[shard] = []
        self._pushes_since_ship = 0
        self._pending_watermark = None
        self._ship("flush", range(self.shard_count), payloads)
        self._drain_acks(block=True)
        self._flushed = True
        self.close()
        return self._take_ready()

    def run(self, events: Iterable[Event]) -> List[EmissionRecord]:
        """Convenience: process a finite stream and flush at the end."""
        records: List[EmissionRecord] = []
        for event in events:
            records.extend(self.process(event))
        records.extend(self.flush())
        return records

    # -- introspection ---------------------------------------------------------

    @property
    def watermark(self) -> float:
        """Current watermark of the (parent) ingestion layer."""
        return self._ingestor.watermark

    @property
    def buffered_events(self) -> int:
        """Events currently held in the parent reorder buffer."""
        return len(self._ingestor)

    @property
    def late_events(self) -> List[Event]:
        """Side channel of late events (``LatePolicy.SIDE_CHANNEL``)."""
        return list(self._ingestor.side_channel)

    def take_late_events(self) -> List[Event]:
        """Drain (return and clear) the late-event side channel."""
        taken = self._ingestor.side_channel
        self._ingestor.side_channel = []
        return taken

    def shard_report(self) -> str:
        """Readable per-shard routing/merging statistics."""
        lines = [f"shards              : {self.shard_count} (of {self.workers} requested)"]
        if self.fallback_reason:
            lines.append(f"fallback            : {self.fallback_reason}")
        for shard, stats in enumerate(self.shard_stats):
            lines.append(
                f"shard {shard}             : events={stats.events_sent} "
                f"batches={stats.batches_sent} records={stats.records_merged} "
                f"processing={stats.processing_seconds:.3f}s"
            )
        return "\n".join(lines)

    # -- checkpointing ---------------------------------------------------------

    def checkpoint(self) -> Dict[str, object]:
        """Snapshot the runtime in the single-process checkpoint schema.

        The worker executors' states are merged per query, so the snapshot
        is indistinguishable from one taken by a
        :class:`~repro.streaming.runtime.StreamingRuntime` over the same
        stream prefix -- it restores into a single-process runtime or into a
        :class:`ShardedRuntime` with *any* worker count.  An informational
        ``"sharded"`` key records the topology; restorers ignore it.
        """
        self._check_usable()
        if not self._started:
            self._start()
        # events sitting in parent outboxes must be part of the workers'
        # state, not lost between router and snapshot
        self._ship_outboxes(self._pending_watermark)
        self._drain_acks(block=True)
        self._ship("checkpoint", range(self.shard_count))
        shard_payloads: Dict[int, Dict] = {}
        collected = 0
        while collected < self.shard_count:
            ack = self._next_ack()
            if ack[0] == "ok" and isinstance(ack[3], dict) and "executors" in ack[3]:
                shard_payloads[ack[2]] = ack[3]
                collected += 1
                self._inflight.pop(ack[1], None)
            else:  # a straggling batch ack ahead of the checkpoint ack
                self._apply_ack(ack)
        self._release_ready_epochs()
        executors = {
            spec.name: _merge_executor_snapshots(
                [shard_payloads[s]["executors"][spec.name] for s in sorted(shard_payloads)]
            )
            for spec in self._specs
        }
        return {
            "version": CHECKPOINT_VERSION,
            "queries": [
                {
                    "name": spec.name,
                    "granularity": self._engines[spec.name].granularity,
                    "definition": self._engines[spec.name].query.describe(),
                    "emit_empty_groups": spec.emit_empty_groups,
                }
                for spec in self._specs
            ],
            "executors": executors,
            "ingest": self._ingestor.snapshot(),
            "metrics": self.metrics.snapshot(),
            "emitted_counts": dict(self._emitted_counts),
            "sharded": {"workers": self.shard_count},
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Restore a snapshot (sharded or single-process) into this runtime.

        The same queries must be registered (names, granularities,
        definitions, ``emit_empty_groups``) as in the checkpointed runtime;
        the worker count may differ -- every aggregator is re-routed to the
        shard owning its partition key under *this* runtime's topology.
        Pending records of this runtime's own timeline are discarded.
        """
        version = state.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {version!r} is not supported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        self._check_usable()
        if not self._started:
            self._start()
        try:
            recorded = [
                (
                    q["name"],
                    q["granularity"],
                    q.get("definition"),
                    bool(q.get("emit_empty_groups", False)),
                )
                for q in state["queries"]
            ]
        except (KeyError, TypeError) as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc
        current = [
            (
                spec.name,
                self._engines[spec.name].granularity,
                self._engines[spec.name].query.describe(),
                bool(spec.emit_empty_groups),
            )
            for spec in self._specs
        ]
        if recorded != current:
            names = [(entry[0], entry[1]) for entry in recorded]
            raise CheckpointError(
                f"registered queries do not match the checkpointed queries "
                f"{names}: names, granularities, definitions and "
                f"emit_empty_groups must be identical"
            )
        # quiesce: outstanding epochs and unshipped events belong to the
        # abandoned timeline
        self._drain_acks(block=True)
        self._ready_records = []
        self._outboxes = [[] for _ in range(self.shard_count)]
        self._pushes_since_ship = 0
        self._pending_watermark = None
        try:
            splits = {
                shard: {"executors": {}} for shard in range(self.shard_count)
            }
            for spec in self._specs:
                per_shard = _split_executor_snapshot(
                    state["executors"][spec.name], self.shard_count
                )
                for shard, snapshot in per_shard.items():
                    splits[shard]["executors"][spec.name] = snapshot
            self._ingestor.restore(state["ingest"])
            self.metrics.restore(state["metrics"])
            self._emitted_counts = {
                name: int(count) for name, count in state["emitted_counts"].items()
            }
            payloads = {
                shard: ("restore", self._epoch, splits[shard]["executors"])
                for shard in range(self.shard_count)
            }
            self._ship("restore", range(self.shard_count), payloads)
            self._drain_acks(block=True)
        except WorkerCrashError:
            raise  # _fail already poisoned the runtime and stopped the workers
        except Exception as exc:
            # the workers now hold a half-applied timeline; stop them so a
            # failed restore cannot leak idle processes
            self._poisoned = True
            self.close()
            if isinstance(exc, CheckpointError):
                raise
            raise CheckpointError(f"cannot restore checkpoint: {exc}") from exc
        self._flushed = False

    def __repr__(self) -> str:
        return (
            f"ShardedRuntime({len(self._specs)} queries, "
            f"workers={self.workers}, shards={self.shard_count or 'unstarted'}, "
            f"watermark={self._ingestor.watermark:g})"
        )


# ---------------------------------------------------------------------------
# checkpoint merge/split helpers
# ---------------------------------------------------------------------------


def _merge_executor_snapshots(snapshots: List[Dict[str, object]]) -> Dict[str, object]:
    """Combine per-shard executor snapshots into one single-process snapshot.

    Shards hold disjoint (window, partition key) aggregators, so the merge
    concatenates; entries are sorted for a deterministic, diffable snapshot.
    """
    first = snapshots[0]
    aggregators = [entry for snapshot in snapshots for entry in snapshot["aggregators"]]
    aggregators.sort(key=lambda entry: (entry[0], repr(entry[1])))
    last_times = [s["last_time"] for s in snapshots if s["last_time"] is not None]
    return {
        "query": first["query"],
        "granularity": first["granularity"],
        "events_seen": sum(int(s["events_seen"]) for s in snapshots),
        "last_time": max(last_times) if last_times else None,
        "aggregators": aggregators,
    }


def _split_executor_snapshot(
    snapshot: Dict[str, object], shard_count: int
) -> Dict[int, Dict[str, object]]:
    """Split one executor snapshot into per-shard snapshots by key ownership.

    The inverse of :func:`_merge_executor_snapshots` under any shard count:
    each aggregator entry goes to ``shard_index`` of its partition key.  The
    scalar fields cannot be split faithfully, so every shard receives the
    global ``last_time`` (protecting executor order checks) and shard 0
    carries the full ``events_seen`` (so a later merge sums back to the
    original).
    """
    per_shard: Dict[int, Dict[str, object]] = {}
    for shard in range(shard_count):
        per_shard[shard] = {
            "query": snapshot["query"],
            "granularity": snapshot["granularity"],
            "events_seen": int(snapshot["events_seen"]) if shard == 0 else 0,
            "last_time": snapshot["last_time"],
            "aggregators": [],
        }
    for entry in snapshot["aggregators"]:
        key = tuple(entry[1])
        per_shard[shard_index(key, shard_count)]["aggregators"].append(entry)
    return per_shard
