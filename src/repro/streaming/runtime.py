"""The streaming runtime: many queries, one out-of-order input stream.

:class:`StreamingRuntime` is the production-style counterpart of
:meth:`CograEngine.run`:

* any number of queries is registered against the same input stream;
* events may arrive out of order within a configurable lateness bound --
  the ingestion layer (:mod:`repro.streaming.ingest`) restores order and
  generates watermarks;
* every event is routed **once** through a shared type/partition index:
  queries that cannot be affected by an event's type never see it, and
  queries sharing the same partition attributes share one key computation;
* window results are emitted incrementally as the watermark passes each
  window's end (:mod:`repro.streaming.emission`), not at end of stream;
* the whole runtime state can be checkpointed mid-stream and restored into
  a fresh runtime with identical final results
  (:mod:`repro.streaming.checkpoint`).

Example
-------
::

    runtime = StreamingRuntime(lateness=5.0)
    runtime.register(query_text_1, name="q1")
    runtime.register(query_text_2, name="q2")
    runtime.run(
        JsonlFileTailSource("events.jsonl"),
        CallbackSink(lambda record: publish(record.query, record.result)),
    )

or, driving the loop by hand::

    for event in source:
        for record in runtime.process(event):
            publish(record.query, record.result)
    for record in runtime.flush():
        publish(record.query, record.result)
"""

from __future__ import annotations

import math
import time as _time
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.core.engine import CograEngine
from repro.core.executor import QueryExecutor
from repro.core.results import GroupResult
from repro.errors import CheckpointError, LateEventError, SourceError
from repro.events.event import Event
from repro.events.stream import sort_events
from repro.query.query import Query
from repro.query.semantics import Semantics
from repro.streaming.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    restore_executor,
    snapshot_executor,
)
from repro.streaming.config import BackpressureConfig, LatenessConfig, WatermarkConfig
from repro.streaming.emission import EmissionController, EmissionRecord
from repro.streaming.ingest import (
    LatePolicy,
    OutOfOrderIngestor,
    WatermarkStrategy,
)
from repro.streaming.metrics import StreamingMetrics
from repro.streaming.replan import (
    QueryObservation,
    ReplanController,
    ReplanPolicy,
    migrate_engine,
    observe_executor,
    observe_instruments,
    resolve_replan_policy,
)
from repro.streaming.observability import (
    JsonlMetricsExporter,
    Observability,
    finalize_snapshot,
    merge_snapshots,
)
from repro.streaming.sources import EventSource, Sink, as_source


def replay_corrections(
    replay: "StreamingRuntime",
    late: List[Event],
    watermark: float,
    metrics: StreamingMetrics,
) -> List[EmissionRecord]:
    """Run drained side-channel events through ``replay``; wrap as corrections.

    The shared tail of ``reprocess_late`` on both runtimes: the late events
    are sorted, applied via :meth:`StreamingRuntime.process_ordered`, every
    still-open window flushed, and the results re-emitted flagged
    ``is_correction=True`` with the live runtime's ``watermark`` as context
    (counted in the live runtime's emission ``metrics``).
    """
    records = replay.process_ordered(sort_events(late), watermark=None)
    records.extend(replay.flush())
    corrections = [
        EmissionRecord(record.query, record.result, watermark, is_correction=True)
        for record in records
    ]
    metrics.record_emission(len(corrections))
    return corrections


class PipelineDriver:
    """The source → process → emit → sink driver loop shared by the runtimes.

    Subclasses provide the runtime interface the loop is written against:
    ``process(event)`` / ``flush()`` / ``checkpoint()`` /
    ``take_late_events()`` / ``drain_pending()`` -- both
    :class:`StreamingRuntime` and
    :class:`~repro.streaming.sharded.ShardedRuntime` do, so the CLI,
    examples, benchmarks and :meth:`CograEngine.stream` stop hand-rolling
    ingestion loops.  :meth:`drive` is the lazy form (a generator of
    emission records), :meth:`run` the eager one (collect, or push into a
    :class:`~repro.streaming.sources.Sink`).

    The loop is batch-grained: events are pulled from the source in slices
    of :attr:`decode_batch_size` (see
    :meth:`~repro.streaming.sources.EventSource.batches`; latency-sensitive
    live sources yield singleton slices) and pushed through
    ``process_batch`` -- semantically identical to per-event ``process``
    but with the per-event overhead amortised.  Slices are split at
    checkpoint-interval boundaries so periodic checkpoints still land at
    exact ingested-event counts.
    """

    #: default slice size for :meth:`drive`'s source pulls; overridden per
    #: job via ``JobConfig.batch.decode_batch_size``
    decode_batch_size = 256

    def drive(
        self,
        events: Union[EventSource, Iterable[Event]],
        *,
        checkpoint_store: Optional[CheckpointStore] = None,
        checkpoint_interval: Optional[int] = None,
        on_late: Optional[Callable[[List[Event]], None]] = None,
        metrics_exporter: Optional[JsonlMetricsExporter] = None,
        sink: Optional[Sink] = None,
        backpressure: Optional[BackpressureConfig] = None,
        decode_batch_size: Optional[int] = None,
    ) -> Iterator[EmissionRecord]:
        """Pull events from a source, yield emission records as they emit.

        Parameters
        ----------
        events:
            An :class:`~repro.streaming.sources.EventSource` or any
            iterable of events (adapted via
            :func:`~repro.streaming.sources.as_source`).  The source is
            closed when the generator finishes -- normally or not.
        checkpoint_store / checkpoint_interval:
            Together they enable periodic checkpointing: every
            ``checkpoint_interval`` ingested events the runtime state is
            snapshotted into the store (incremental deltas; see
            :class:`~repro.streaming.checkpoint.CheckpointStore`, whose
            ``background=True`` moves the disk write off this loop).
        on_late:
            Called with each batch of drained side-channel late events
            (``LatePolicy.SIDE_CHANNEL``) so they are persisted or
            reprocessed instead of piling up.
        metrics_exporter:
            Optional
            :class:`~repro.streaming.observability.JsonlMetricsExporter`.
            Once per ingested event the loop offers it the runtime's
            :meth:`registry_snapshot`; the exporter samples at most once
            per its configured interval, and a final sample is taken after
            the flush so the time series always ends with the complete
            run.
        sink:
            Optional downstream :class:`~repro.streaming.sources.Sink`.
            ``drive`` never emits into it (the caller pulling this
            generator does); it is consulted for two delivery concerns:
            its :meth:`~repro.streaming.sources.Sink.ready` signal
            throttles ingestion (backpressure), and -- when it exposes
            ``state()``, like
            :class:`~repro.streaming.sources.TransactionalSink` -- its
            delivered offset is stored inside each checkpoint, atomically
            with executor state, which is what makes recovery
            exactly-once.
        backpressure:
            :class:`~repro.streaming.config.BackpressureConfig` tuning the
            ready-poll loop (defaults apply when ``None``).
        """
        session = DriveSession(
            self,
            events,
            checkpoint_store=checkpoint_store,
            checkpoint_interval=checkpoint_interval,
            on_late=on_late,
            metrics_exporter=metrics_exporter,
            sink=sink,
            backpressure=backpressure,
            decode_batch_size=decode_batch_size,
        )
        try:
            for batch in session.batches():
                yield from session.step(batch)
            yield from session.finish()
        finally:
            session.close()

    def _await_sink_ready(
        self, ready: Callable[[], bool], backpressure: BackpressureConfig
    ) -> None:
        """Pause ingestion until the sink reports capacity (backpressure).

        The wait is accounted as one ``backpressure_waits`` episode with its
        wall-clock duration added to ``backpressure_seconds``; a configured
        ``max_wait_seconds`` turns a permanently stalled sink into a loud
        :class:`~repro.errors.SourceError` instead of a silent hang.
        """
        started = _time.perf_counter()
        while not ready():
            _time.sleep(backpressure.poll_interval_seconds)
            waited = _time.perf_counter() - started
            max_wait = backpressure.max_wait_seconds
            if max_wait is not None and waited >= max_wait:
                self.metrics.record_backpressure(waited)
                raise SourceError(
                    f"sink reported not-ready for {waited:.1f}s "
                    f"(backpressure.max_wait_seconds={max_wait:g}); "
                    f"is the downstream consumer stuck?"
                )
        self.metrics.record_backpressure(_time.perf_counter() - started)

    def _delivery_checkpoint(
        self, source: EventSource, sink: Optional[Sink]
    ) -> Dict[str, object]:
        """One snapshot covering runtime, source and sink state atomically.

        The runtime snapshot is enriched with the source's consumer
        offsets (``source_offsets``) and the sink's delivered position
        (``sink``) when either exposes them, so a single
        :meth:`CheckpointStore.save` commits all three facets together --
        the invariant exactly-once recovery rests on.  Both runtimes'
        ``restore`` ignore unknown snapshot keys, and the delta store
        carries them verbatim, so plain checkpoints are unaffected.
        """
        snapshot = self.checkpoint()
        offsets = getattr(source, "offsets", None)
        if callable(offsets):
            snapshot["source_offsets"] = offsets()
        state = getattr(sink, "state", None)
        if callable(state):
            snapshot["sink"] = state()
        return snapshot

    def run(
        self,
        events: Union[EventSource, Iterable[Event]],
        sink: Optional[Sink] = None,
        *,
        checkpoint_store: Optional[CheckpointStore] = None,
        checkpoint_interval: Optional[int] = None,
        on_late: Optional[Callable[[List[Event]], None]] = None,
        metrics_exporter: Optional[JsonlMetricsExporter] = None,
        backpressure: Optional[BackpressureConfig] = None,
        decode_batch_size: Optional[int] = None,
    ) -> List[EmissionRecord]:
        """Process a stream to completion and flush at the end.

        Without a ``sink`` the emitted records are collected and returned
        (the historical behaviour).  With one, every record goes to
        ``sink.emit`` as it is produced and the returned list is empty --
        the records left the pipeline already; the sink's ``ready`` signal
        then also throttles ingestion (see :meth:`drive`).  The sink is
        *not* closed; it may outlive the run.
        """
        records = self.drive(
            events,
            checkpoint_store=checkpoint_store,
            checkpoint_interval=checkpoint_interval,
            on_late=on_late,
            metrics_exporter=metrics_exporter,
            sink=sink,
            backpressure=backpressure,
            decode_batch_size=decode_batch_size,
        )
        if sink is None:
            return list(records)
        for record in records:
            sink.emit(record)
        return []

    def _observe_lifecycle(self, op: str, seconds: float) -> None:
        """Record one lifecycle operation's duration (and a sampled span)."""
        timer = self.observability.operation_timer(
            "cogra_lifecycle_seconds",
            "durations of checkpoint/restore/recovery/rebalance operations",
            op=op,
        )
        if timer is not None:
            timer.observe(seconds)
        span = self.observability.start_trace(op)
        if span is not None:
            span.annotate(seconds=seconds)
            span.finish()


class DriveSession:
    """Step-at-a-time form of :meth:`PipelineDriver.drive`.

    ``drive`` owns its loop: it pulls batches until the source is
    exhausted.  A :class:`DriveSession` externalises that loop so a
    scheduler can interleave *many* pipelines -- feed one batch to job A,
    one to job B -- without threads hiding inside each pipeline.  The
    job server's fair scheduler is the motivating caller; ``drive``
    itself is now a thin generator over one session.

    Usage::

        session = DriveSession(runtime, source, ...)
        for batch in session.batches():
            records = session.step(batch)      # may be interleaved
        records = session.finish()             # flush + final export
        session.close()                        # always, in a finally

    ``step`` reproduces the drive loop body exactly: slices are split at
    checkpoint-interval boundaries, the sink's ``ready`` signal throttles
    ingestion, late events are drained to ``on_late``, periodic
    checkpoints save through :meth:`PipelineDriver._delivery_checkpoint`,
    and the metrics exporter is offered a snapshot -- so a drive rebuilt
    from ``step``/``finish`` is behaviour-identical to the original loop.
    """

    def __init__(
        self,
        driver: PipelineDriver,
        events: Union[EventSource, Iterable[Event]],
        *,
        checkpoint_store: Optional[CheckpointStore] = None,
        checkpoint_interval: Optional[int] = None,
        on_late: Optional[Callable[[List[Event]], None]] = None,
        metrics_exporter: Optional[JsonlMetricsExporter] = None,
        sink: Optional[Sink] = None,
        backpressure: Optional[BackpressureConfig] = None,
        decode_batch_size: Optional[int] = None,
    ):
        if (checkpoint_store is None) != (checkpoint_interval is None):
            raise ValueError(
                "checkpoint_store and checkpoint_interval enable periodic "
                "checkpointing together; pass both or neither"
            )
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be at least 1, got {checkpoint_interval}"
            )
        if decode_batch_size is None:
            decode_batch_size = driver.decode_batch_size
        if decode_batch_size < 1:
            raise ValueError(
                f"decode_batch_size must be at least 1, got {decode_batch_size}"
            )
        if checkpoint_interval:
            # a pulled slice must never straddle a checkpoint boundary: the
            # checkpoint records the source's consumer offsets, so every
            # event the source has delivered must be inside runtime state
            # when the snapshot is cut.  Clamp the pull size to the largest
            # divisor of the interval, so boundaries land between pulls.
            size = min(decode_batch_size, checkpoint_interval)
            while checkpoint_interval % size:
                size -= 1
            decode_batch_size = size
        self.driver = driver
        self.source = as_source(events)
        self.sink = sink
        #: resolved pull-slice size (clamped to the checkpoint interval)
        self.decode_batch_size = decode_batch_size
        self._checkpoint_store = checkpoint_store
        self._checkpoint_interval = checkpoint_interval
        self._on_late = on_late
        self._metrics_exporter = metrics_exporter
        self._sink_ready = getattr(sink, "ready", None) if sink is not None else None
        self._backpressure = backpressure or BackpressureConfig()
        #: events ingested through this session so far
        self.processed = 0
        self._finished = False

    def batches(self) -> Iterator[List[Event]]:
        """The source's batch iterator at the resolved slice size."""
        return self.source.batches(self.decode_batch_size)

    def sink_ready(self) -> bool:
        """Whether the sink (if any) currently reports capacity.

        A scheduler can poll this *before* :meth:`step` to skip a job
        whose sink is backed up instead of blocking inside the step.
        """
        return self._sink_ready is None or self._sink_ready()

    def step(self, batch: List[Event]) -> Iterator[EmissionRecord]:
        """Run one pulled slice through the pipeline; yield its records.

        A generator so records reach the consumer *before* the following
        chunk's checkpoint save -- the delivery order exactly-once
        recovery is proven against.  Callers must drain it fully (or use
        ``list(...)``); an abandoned generator leaves the slice half
        ingested.
        """
        driver = self.driver
        start = 0
        total = len(batch)
        while start < total:
            if self._sink_ready is not None and not self._sink_ready():
                driver._await_sink_ready(self._sink_ready, self._backpressure)
            end = total
            if self._checkpoint_interval:
                # split the slice at the checkpoint boundary so the
                # periodic snapshot lands at the exact event count
                room = self._checkpoint_interval - (
                    self.processed % self._checkpoint_interval
                )
                end = min(total, start + room)
            chunk = batch if start == 0 and end == total else batch[start:end]
            self.processed += end - start
            start = end
            yield from driver.process_batch(chunk)
            if self._on_late is not None:
                late = driver.take_late_events()
                if late:
                    self._on_late(late)
            if (
                self._checkpoint_interval
                and self.processed % self._checkpoint_interval == 0
            ):
                self._checkpoint_store.save(
                    driver._delivery_checkpoint(self.source, self.sink)
                )
                # a sharded checkpoint quiesces the workers; records
                # that became ready during the quiesce surface now
                yield from driver.drain_pending()
            if self._metrics_exporter is not None:
                if self._metrics_exporter.maybe_export(driver.registry_snapshot):
                    # a sharded snapshot pull quiesces the workers too
                    yield from driver.drain_pending()

    def finish(self) -> Iterator[EmissionRecord]:
        """Flush the pipeline after the last batch; yield the tail records.

        Idempotent: a second call yields nothing (the runtime refuses a
        second flush, and the session must tolerate a scheduler finishing
        a job from more than one code path).
        """
        if self._finished:
            return
        self._finished = True
        driver = self.driver
        yield from driver.flush()
        if self._on_late is not None:
            late = driver.take_late_events()
            if late:
                self._on_late(late)
        if self._metrics_exporter is not None:
            self._metrics_exporter.export_now(driver.registry_snapshot)

    def close(self) -> None:
        """Close the session's source (always safe to call)."""
        self.source.close()


class RegisteredQuery:
    """One query attached to the runtime, with its routing metadata."""

    __slots__ = (
        "name",
        "engine",
        "order",
        "relevant_types",
        "broadcast",
        "partition_signature",
        "instruments",
    )

    def __init__(self, name: str, engine: CograEngine, order: int = 0):
        self.name = name
        self.engine = engine
        self.order = order
        #: cached per-query metric children, or ``None`` when the owning
        #: runtime's observability is disabled (the hot path then skips
        #: instrumentation on a single ``is None`` check)
        self.instruments = None
        types = set(engine.executor._relevant_types)
        if engine.negation_analysis is not None:
            # negated event types never match the positive pattern but still
            # invalidate trends, so the router must deliver them
            types |= engine.negation_analysis.negated_types()
        self.relevant_types = frozenset(types)
        # contiguous semantics see *every* event (any event breaks
        # contiguity), and emit_empty_groups makes even unmatched groups
        # observable, so both disable type-based routing for this query
        self.broadcast = (
            engine.query.semantics is Semantics.CONTIGUOUS
            or engine._emit_empty_groups
        )
        self.partition_signature: Tuple[str, ...] = engine.plan.partition_attributes

    @property
    def executor(self) -> QueryExecutor:
        """The engine's current executor instance."""
        return self.engine.executor

    def __repr__(self) -> str:
        return f"RegisteredQuery({self.name!r}, granularity={self.engine.granularity})"


class StreamingRuntime(PipelineDriver):
    """Executes registered queries over one out-of-order input stream.

    Parameters
    ----------
    lateness:
        Bounded-disorder tolerance in seconds: events may arrive up to this
        much event time behind later events.  Ignored when an explicit
        ``watermark_strategy`` is given.
    watermark_strategy:
        Optional :class:`~repro.streaming.ingest.WatermarkStrategy`
        (e.g. :class:`~repro.streaming.ingest.PunctuationWatermark`).
    late_policy:
        What happens to events arriving behind the watermark; see
        :class:`~repro.streaming.ingest.LatePolicy`.  The default comes
        from :class:`~repro.streaming.config.LatenessConfig` -- ``raise``,
        mirroring the batch path's strictness on disorder (it used to be
        ``drop`` here while :meth:`CograEngine.stream` said ``raise``;
        the shared config reconciled the divergence).  Invalid policy
        strings fail eagerly with :class:`~repro.errors.ConfigError`.
    emit_empty_groups:
        Default for queries registered without an explicit setting.
    observability:
        Optional :class:`~repro.streaming.observability.Observability`
        bundle (metrics registry + tracer).  By default a fresh enabled
        bundle is created; pass ``Observability.disabled()`` to strip the
        per-query instrumentation down to one ``is None`` check per event.
    replan:
        Optional adaptive granularity re-planning: a
        :class:`~repro.streaming.replan.ReplanPolicy`, a
        :class:`~repro.streaming.config.ReplanConfig` (or a mapping of its
        settings), or ``None``.  When enabled the runtime periodically
        re-evaluates the cost model against observed statistics and
        live-migrates queries whose granularity stopped being optimal;
        results are unchanged (see :mod:`repro.streaming.replan`).
    """

    def __init__(
        self,
        lateness: float = 0.0,
        watermark_strategy: Optional[WatermarkStrategy] = None,
        late_policy: Union[LatePolicy, str, None] = None,
        emit_empty_groups: bool = False,
        observability: Optional[Observability] = None,
        replan=None,
    ):
        # the constructor kwargs are one corner of the declarative JobConfig
        # API: normalising them through the component specs keeps defaults
        # and validation in exactly one place (repro.streaming.config)
        late = LatenessConfig.of(late_policy)
        strategy = watermark_strategy or WatermarkConfig(lateness=lateness).build()
        self._ingestor = OutOfOrderIngestor(strategy, late.resolved_policy)
        self._controller = EmissionController()
        self.observability = observability or Observability()
        self.metrics = StreamingMetrics()
        self._emit_empty_groups = emit_empty_groups
        self._queries: List[RegisteredQuery] = []
        self._by_name: Dict[str, RegisteredQuery] = {}
        #: event type -> queries routed by type (broadcast queries excluded)
        self._routes: Dict[str, List[RegisteredQuery]] = {}
        self._broadcast: List[RegisteredQuery] = []
        #: event type -> routed + broadcast queries in registration order,
        #: as a flat tuple; filled lazily per type on first use
        #: (registration is frozen by then), including a cached entry for
        #: types no query routes on -- the hot path never re-checks the
        #: broadcast fallback
        self._resolved_routes: Dict[str, Tuple[RegisteredQuery, ...]] = {}
        self._flushed = False
        #: set when a restore failed mid-application; the mixed state must
        #: never process events (see :meth:`restore`)
        self._poisoned = False
        #: highest watermark handed to :meth:`process_ordered` so far
        self._ordered_watermark = -math.inf
        #: adaptive granularity re-planning (repro.streaming.replan); the
        #: policy gates the hot-path check, the controller holds EWMAs and
        #: the migration log (also created lazily by migrate_granularity)
        self._replan_policy = resolve_replan_policy(replan)
        self._replan_controller = (
            ReplanController(self._replan_policy) if self._replan_policy else None
        )

    # -- registration ----------------------------------------------------------

    def register(
        self,
        query: Union[Query, str, CograEngine],
        name: Optional[str] = None,
        granularity=None,
        emit_empty_groups: Optional[bool] = None,
    ) -> str:
        """Attach a query (text, :class:`Query` or prepared engine).

        Returns the name under which the query's results are emitted.
        Registration is only allowed before the first event is processed.
        """
        if self.metrics.events_ingested or self.metrics.punctuations_seen:
            # punctuations advance the watermark without counting as data
            # events, and a query registered behind the watermark would see
            # everything before it as late
            raise RuntimeError(
                "queries must be registered before the first event is ingested"
            )
        if isinstance(query, CograEngine):
            if granularity is not None or emit_empty_groups is not None:
                raise ValueError(
                    "granularity/emit_empty_groups cannot be overridden on an "
                    "already-built engine; configure the CograEngine instead"
                )
            if any(registered.engine is query for registered in self._queries):
                raise ValueError(
                    "this engine instance is already registered; engines own "
                    "their executor state and cannot back two queries"
                )
            engine = query
            engine.reset()
        else:
            engine = CograEngine(
                query,
                emit_empty_groups=(
                    self._emit_empty_groups
                    if emit_empty_groups is None
                    else emit_empty_groups
                ),
                granularity=granularity,
            )
        name = name or engine.query.name
        if name in self._by_name:
            raise ValueError(f"a query named {name!r} is already registered")
        registered = RegisteredQuery(name, engine, order=len(self._queries))
        registered.instruments = self.observability.query_instruments(name)
        self._queries.append(registered)
        self._by_name[name] = registered
        if registered.broadcast:
            self._broadcast.append(registered)
        else:
            for event_type in registered.relevant_types:
                self._routes.setdefault(event_type, []).append(registered)
        # registration is frozen before the first ingested event, but drop
        # any resolved targets defensively so they can never go stale
        self._resolved_routes.clear()
        return name

    @property
    def query_names(self) -> List[str]:
        """Names of the registered queries, in registration order."""
        return [registered.name for registered in self._queries]

    def engine(self, name: str) -> CograEngine:
        """The engine evaluating the query registered under ``name``."""
        return self._by_name[name].engine

    # -- streaming -------------------------------------------------------------

    def _check_processable(self, require_open: bool = True) -> None:
        """Shared guards of the event-facing entry points."""
        if require_open and not self._queries:
            raise RuntimeError("no queries are registered with this runtime")
        if self._poisoned:
            raise RuntimeError(
                "a failed restore left this runtime in an inconsistent state; "
                "create a new runtime (and retry the restore if desired)"
            )
        if require_open and self._flushed:
            raise RuntimeError(
                "this runtime was flushed; emitted windows cannot be reopened "
                "(start a new runtime, or restore a checkpoint)"
            )

    def process(self, event: Event) -> List[EmissionRecord]:
        """Ingest one (possibly out-of-order) event; return emitted results."""
        # the sampling decision is one attribute check in the common
        # (tracing off / unsampled) case; a sampled event records a span
        # tree ingest -> route -> execute -> emit under this root
        trace = self.observability.start_trace(
            "event", event_type=event.event_type, event_time=event.time
        )
        if trace is None:
            records = self._process(event, None)
        else:
            with trace:
                records = self._process(event, trace)
                trace.annotate(records=len(records))
        if self._replan_policy is not None and self._replan_controller.due(1):
            self._replan_now()
        return records

    def _process(self, event: Event, trace) -> List[EmissionRecord]:
        self._check_processable()
        span = trace.child("ingest") if trace is not None else None
        try:
            batch = self._ingestor.push(event)
        except LateEventError:
            # the raising policy still accounts for the event, so metrics
            # stay consistent with the drop/side-channel paths
            self.metrics.record_ingest(event.time, len(self._ingestor))
            self.metrics.record_late(rerouted=False)
            if span is not None:
                span.annotate(late=True)
                span.finish()
            raise
        if span is not None:
            span.annotate(
                released=len(batch.released),
                late=batch.late_event is not None,
                punctuation=batch.punctuation,
            )
            span.finish()
        if batch.punctuation:
            self.metrics.record_punctuation()
        else:
            # batch.buffered is post-push occupancy from the ingestor itself;
            # late events never entered the buffer and do not inflate it
            self.metrics.record_ingest(event.time, batch.buffered)
        if batch.late_event is not None:
            self.metrics.record_late(
                rerouted=self._ingestor.late_policy is LatePolicy.SIDE_CHANNEL
            )
            return []

        records: List[EmissionRecord] = []
        if batch.released:
            self.metrics.record_release(len(batch.released))
            started = _time.perf_counter()
            if trace is None:
                for released in batch.released:
                    records.extend(self._route(released, batch.watermark))
            else:
                with trace.child("route", events=len(batch.released)) as route:
                    for released in batch.released:
                        with route.child("execute", event_type=released.event_type):
                            records.extend(self._route(released, batch.watermark))
            self.metrics.record_processing_seconds(_time.perf_counter() - started)
        if batch.advanced:
            self.metrics.record_watermark(batch.watermark)
            span = (
                trace.child("emit", watermark=batch.watermark)
                if trace is not None
                else None
            )
            for registered in self._queries:
                emitted = self._controller.advance(
                    registered.name, registered.executor, batch.watermark
                )
                if emitted:
                    if registered.instruments is not None:
                        registered.instruments.results.inc(len(emitted))
                    records.extend(emitted)
            if span is not None:
                span.finish()
        self.metrics.record_emission(len(records))
        return records

    def process_batch(self, events: List[Event]) -> List[EmissionRecord]:
        """Ingest a slice of (possibly out-of-order) events in one frame.

        Semantically identical to concatenating :meth:`process` over the
        slice -- same records in the same order, same watermark and window
        emission timing -- but the per-event bookkeeping (tracing checks,
        metric observes, route lookups) is amortised over the slice and
        released waves are fed to the executors as same-``(type, key)``
        runs.  With tracing enabled the per-event path is used so span
        trees stay per event.
        """
        if not events:
            self._check_processable()
            return []
        if self.observability.tracer.enabled:
            records: List[EmissionRecord] = []
            for event in events:
                records.extend(self.process(event))
            return records
        self._check_processable()
        metrics = self.metrics
        ingestor = self._ingestor
        push = ingestor.push
        queries = self._queries
        advance = self._controller.advance
        perf_counter = _time.perf_counter
        reroutes = ingestor.late_policy is LatePolicy.SIDE_CHANNEL
        records = []
        ingested = 0
        punctuations = 0
        max_time = -math.inf
        buffered_peak = -1
        released_total = 0
        late_dropped = 0
        late_rerouted = 0
        processing = 0.0
        watermark_seen = -math.inf
        try:
            for event in events:
                try:
                    batch = push(event)
                except LateEventError:
                    # match the per-event path's accounting for the
                    # raising event before the error propagates
                    ingested += 1
                    if event.time > max_time:
                        max_time = event.time
                    buffered = len(ingestor)
                    if buffered > buffered_peak:
                        buffered_peak = buffered
                    late_dropped += 1
                    raise
                if batch.punctuation:
                    punctuations += 1
                else:
                    ingested += 1
                    if event.time > max_time:
                        max_time = event.time
                    if batch.buffered > buffered_peak:
                        buffered_peak = batch.buffered
                if batch.late_event is not None:
                    if reroutes:
                        late_rerouted += 1
                    else:
                        late_dropped += 1
                    continue
                released = batch.released
                if released:
                    released_total += len(released)
                    started = perf_counter()
                    self._route_slice(released, batch.watermark, records)
                    processing += perf_counter() - started
                if batch.advanced:
                    watermark = batch.watermark
                    if watermark > watermark_seen:
                        watermark_seen = watermark
                    for registered in queries:
                        emitted = advance(
                            registered.name, registered.executor, watermark
                        )
                        if emitted:
                            if registered.instruments is not None:
                                registered.instruments.results.inc(len(emitted))
                            records.extend(emitted)
        finally:
            # flush the amortised counters even when a raising late policy
            # aborts the slice, so totals match the per-event path exactly
            if punctuations:
                metrics.record_punctuation(punctuations)
            if ingested:
                metrics.record_ingest_batch(ingested, max_time, buffered_peak)
            if late_dropped or late_rerouted:
                metrics.record_late_batch(late_dropped, late_rerouted)
            if released_total:
                metrics.record_release(released_total)
                metrics.record_processing_seconds(processing)
            if watermark_seen > -math.inf:
                metrics.record_watermark(watermark_seen)
            metrics.record_emission(len(records))
        if self._replan_policy is not None and self._replan_controller.due(
            len(events)
        ):
            self._replan_now()
        return records

    def _route_slice(
        self,
        released: List[Event],
        watermark: float,
        records: List[EmissionRecord],
    ) -> None:
        """Route a released wave grouped into consecutive same-type runs.

        Runs during which no target query can emit (see
        :meth:`QueryExecutor.batch_is_quiet`) are fed to the executors as
        whole same-``(type, partition-key)`` sub-runs; anything else falls
        back to the per-event :meth:`_route`, so record content and order
        never differ from the per-event path.
        """
        count = len(released)
        route = self._route
        resolved = self._resolved_routes
        index = 0
        while index < count:
            first = released[index]
            event_type = first.event_type
            stop = index + 1
            while stop < count and released[stop].event_type == event_type:
                stop += 1
            targets = resolved.get(event_type)
            if targets is None:
                targets = self._flat_targets(event_type)
            if not targets:
                index = stop
                continue
            if stop - index == 1:
                records.extend(route(first, watermark))
                index = stop
                continue
            run = released[index:stop]
            index = stop
            last_time = run[-1].time
            quiet = True
            for registered in targets:
                if not registered.executor.batch_is_quiet(first.time, last_time):
                    quiet = False
                    break
            if not quiet:
                for event in run:
                    records.extend(route(event, watermark))
                continue
            for registered in targets:
                self._apply_run(registered, run, watermark, records)

    def _apply_run(
        self,
        registered: RegisteredQuery,
        run: List[Event],
        watermark: float,
        records: List[EmissionRecord],
    ) -> None:
        """Feed one quiet same-type run to one executor in a single batch call.

        The executor groups the run by partition key internally (see
        :meth:`QueryExecutor.process_batch`), so interleaved group keys --
        the common case under GROUP-BY -- no longer fragment the run.
        """
        instruments = registered.instruments
        if instruments is None:
            results = registered.executor.process_batch(run)
        else:
            started = _time.perf_counter()
            results = registered.executor.process_batch(run)
            instruments.observe_execution_batch(
                len(run), _time.perf_counter() - started, 1 if results else 0
            )
        if results:
            # a quiet run cannot emit; this is the executor's own
            # safety fallback surfacing -- collect exactly like _route
            collected = self._controller.collect(registered.name, results, watermark)
            if collected:
                if instruments is not None:
                    instruments.results.inc(len(collected))
                records.extend(collected)

    def process_ordered(
        self, events: Iterable[Event], watermark: Optional[float] = None
    ) -> List[EmissionRecord]:
        """Apply already-ordered events, then advance emission to ``watermark``.

        This bypasses the reorder buffer and the late-event policy: the
        caller guarantees that ``events`` are in ``(time, sequence)`` order
        and at or above every watermark previously passed here.  It exists
        for deployments where ordering and watermarking happen *once*
        upstream -- the sharded runtime's parent ingestor orders the stream
        and ships watermarked batches to worker processes, each of which
        hosts one of these runtimes -- but works just as well for replaying
        a pre-sorted log without paying for the reorder heap.

        ``watermark=None`` applies the events without advancing emission
        (windows close only when an event walks past their end), mirroring
        an ingestor push that released events without moving the watermark.
        """
        self._check_processable()
        records: List[EmissionRecord] = []
        context = (
            self._ordered_watermark
            if watermark is None
            else max(watermark, self._ordered_watermark)
        )
        if not isinstance(events, list):
            events = list(events)
        count = len(events)
        if count:
            started = _time.perf_counter()
            self._route_slice(events, context, records)
            self.metrics.record_release(count)
            self.metrics.record_processing_seconds(_time.perf_counter() - started)
        if watermark is not None and watermark > self._ordered_watermark:
            self._ordered_watermark = watermark
            self.metrics.record_watermark(watermark)
            for registered in self._queries:
                emitted = self._controller.advance(
                    registered.name, registered.executor, watermark
                )
                if emitted:
                    if registered.instruments is not None:
                        registered.instruments.results.inc(len(emitted))
                    records.extend(emitted)
        self.metrics.record_emission(len(records))
        if self._replan_policy is not None and self._replan_controller.due(count):
            self._replan_now()
        return records

    def flush(self) -> List[EmissionRecord]:
        """Drain the reorder buffer and close every open window."""
        self._check_processable(require_open=False)
        records: List[EmissionRecord] = []
        remaining = self._ingestor.drain()
        if remaining:
            self.metrics.record_release(len(remaining))
            started = _time.perf_counter()
            for released in remaining:
                # drained events run past the watermark; windows they close
                # are end-of-stream emissions, so the record context is inf
                # (a stale finite watermark would violate wm >= window_end)
                records.extend(self._route(released, math.inf))
            self.metrics.record_processing_seconds(_time.perf_counter() - started)
        for registered in self._queries:
            closed = self._controller.close(registered.name, registered.executor)
            if closed:
                if registered.instruments is not None:
                    registered.instruments.results.inc(len(closed))
                records.extend(closed)
        self.metrics.record_emission(len(records))
        self._flushed = True
        return records

    def drain_pending(self) -> List[EmissionRecord]:
        """Records merged outside :meth:`process` calls -- none here.

        Exists so the :class:`PipelineDriver` loop can treat this runtime
        and the asynchronous :class:`~repro.streaming.sharded.ShardedRuntime`
        uniformly.
        """
        return []

    def _route(self, event: Event, watermark: float) -> List[EmissionRecord]:
        """Deliver one in-order event to the queries its type can affect.

        The partition key is computed once per distinct partition-attribute
        signature and shared across the executors that use it.
        """
        targets = self._resolved_routes.get(event.event_type)
        if targets is None:
            targets = self._flat_targets(event.event_type)
        keys: Dict[Tuple[str, ...], Tuple] = {}
        records: List[EmissionRecord] = []
        for registered in targets:
            signature = registered.partition_signature
            key = keys.get(signature)
            if key is None:
                key = registered.engine.plan.partition_key(event)
                keys[signature] = key
            instruments = registered.instruments
            if instruments is None:
                results = registered.executor.process(event, partition_key=key)
            else:
                started = _time.perf_counter()
                results = registered.executor.process(event, partition_key=key)
                instruments.observe_execution(
                    _time.perf_counter() - started, bool(results)
                )
            if results:
                collected = self._controller.collect(
                    registered.name, results, watermark
                )
                if collected:
                    if instruments is not None:
                        instruments.results.inc(len(collected))
                    records.extend(collected)
        return records

    def _flat_targets(self, event_type: str) -> Tuple[RegisteredQuery, ...]:
        """Merge type-routed and broadcast queries for one type, once.

        Registration is frozen after the first ingested event, so the
        per-type target tuples are static; the result is cached (also for
        types no query routes on, which resolve to the broadcast list) so
        the hot path is a single dict hit per type.
        """
        routed = self._routes.get(event_type)
        if routed is None:
            targets: Tuple[RegisteredQuery, ...] = tuple(self._broadcast)
        else:
            targets = tuple(
                sorted(
                    list(routed) + self._broadcast,
                    key=lambda registered: registered.order,
                )
            )
        self._resolved_routes[event_type] = targets
        return targets

    # -- introspection ---------------------------------------------------------

    @property
    def watermark(self) -> float:
        """Current watermark of the ingestion layer."""
        return self._ingestor.watermark

    @property
    def buffered_events(self) -> int:
        """Events currently held in the reorder buffer."""
        return len(self._ingestor)

    @property
    def late_events(self) -> List[Event]:
        """Side channel of late events (``LatePolicy.SIDE_CHANNEL``)."""
        return list(self._ingestor.side_channel)

    def take_late_events(self) -> List[Event]:
        """Drain (return and clear) the late-event side channel.

        Long-running jobs call this periodically to reprocess or persist
        late events without the side channel growing without bound.
        """
        return self._ingestor.take_side_channel()

    def reprocess_late(self) -> List[EmissionRecord]:
        """Replay the side channel; emit correction records for its windows.

        The late events' windows were already emitted (and their aggregate
        state evicted), so they cannot be recomputed in place.  Instead the
        drained events are replayed through a fresh runtime hosting the
        same queries (via :meth:`process_ordered` -- the events are sorted
        first) and the resulting window results are re-emitted flagged
        ``is_correction=True``: each record carries the late events'
        *additional* contribution to an already-published window, for the
        consumer to merge (COUNT/SUM add, MIN/MAX combine).  Trends that
        would have interleaved late and on-time events are beyond what an
        evicted window can recover -- the record patches, it does not
        replace.

        Returns ``[]`` when the side channel is empty.  Usable while the
        stream is live and after :meth:`flush`.
        """
        self._check_processable(require_open=False)
        late = self._ingestor.take_side_channel()
        if not late:
            return []
        replay = StreamingRuntime(lateness=0.0)
        for registered in self._queries:
            replay.register(
                CograEngine(
                    registered.engine.query,
                    emit_empty_groups=registered.engine._emit_empty_groups,
                    granularity=registered.engine.granularity,
                ),
                name=registered.name,
            )
        return replay_corrections(replay, late, self.watermark, self.metrics)

    def storage_units(self) -> int:
        """Stored scalar aggregates across every registered executor."""
        return sum(r.executor.storage_units() for r in self._queries)

    # -- adaptive granularity re-planning --------------------------------------

    def _ensure_replan_controller(self) -> ReplanController:
        """The controller, created on demand for forced migrations.

        A lazily created controller only tracks versions and the log; the
        hot-path check loop stays off unless the runtime was constructed
        with an enabled ``replan`` policy.
        """
        if self._replan_controller is None:
            self._replan_controller = ReplanController(ReplanPolicy())
        return self._replan_controller

    def _replan_now(self) -> None:
        """One check of the control loop: observe, decide, migrate."""
        controller = self._replan_controller
        controller.begin_check()
        started = _time.perf_counter()
        migrations = 0
        for registered in self._queries:
            raw = observe_executor(registered.executor)
            observe_instruments(raw, registered.instruments)
            target = controller.decide(registered.name, registered.engine, raw)
            previous = registered.engine.plan.granularity
            if target is previous or migrations >= controller.policy.max_migrations:
                continue
            if migrate_engine(registered.engine, target):
                migrations += 1
                controller.record_migration(
                    registered.name, previous, target, registered.executor.events_seen
                )
        pause = _time.perf_counter() - started
        self.metrics.record_replan(migrations, pause)
        self._observe_lifecycle("replan", pause)

    def migrate_granularity(self, name: str, granularity) -> bool:
        """Force a live granularity migration of one registered query.

        The manual counterpart of the control loop's act step -- results
        are unchanged, only cost.  Returns True when a migration happened
        (False when the query already runs at ``granularity``); disallowed
        granularities raise :class:`~repro.errors.PlanningError`.
        """
        self._check_processable(require_open=False)
        registered = self._by_name[name]
        previous = registered.engine.plan.granularity
        started = _time.perf_counter()
        migrated = migrate_engine(registered.engine, granularity)
        if migrated:
            pause = _time.perf_counter() - started
            self._ensure_replan_controller().record_migration(
                name,
                previous,
                registered.engine.plan.granularity,
                registered.executor.events_seen,
            )
            self.metrics.record_replan(1, pause)
            self._observe_lifecycle("replan", pause)
        return migrated

    @property
    def replan_log(self) -> List[Dict[str, object]]:
        """Migration records, oldest first (empty when none happened)."""
        controller = self._replan_controller
        return list(controller.log) if controller is not None else []

    @property
    def plan_versions(self) -> Dict[str, int]:
        """Per-query plan version: 0 at registration, +1 per migration."""
        versions = {registered.name: 0 for registered in self._queries}
        if self._replan_controller is not None:
            versions.update(self._replan_controller.plan_versions)
        return versions

    def query_observations(self) -> Dict[str, QueryObservation]:
        """Last :class:`QueryObservation` per query (empty before a check)."""
        controller = self._replan_controller
        return dict(controller.observations) if controller is not None else {}

    # -- checkpointing ---------------------------------------------------------

    def checkpoint(self) -> Dict[str, object]:
        """Snapshot the entire runtime state as JSON-safe primitives.

        The snapshot does not embed the query definitions themselves -- like
        restoring a stream-processing job from a savepoint, the caller
        recreates the runtime with the same registered queries and then
        calls :meth:`restore`.
        """
        if self._flushed:
            raise CheckpointError("cannot checkpoint a runtime that was flushed")
        if self._poisoned:
            raise CheckpointError(
                "cannot checkpoint a runtime whose restore failed mid-way"
            )
        started = _time.perf_counter()
        state = {
            "version": CHECKPOINT_VERSION,
            "queries": [
                {
                    "name": r.name,
                    "granularity": r.engine.granularity,
                    # the rendered query identifies the definition, so a
                    # restore into a same-named but different query fails;
                    # emit_empty_groups changes emission and routing, so it
                    # is part of the identity too
                    "definition": r.engine.query.describe(),
                    "emit_empty_groups": r.engine._emit_empty_groups,
                }
                for r in self._queries
            ],
            "executors": {
                r.name: snapshot_executor(r.executor) for r in self._queries
            },
            "ingest": self._ingestor.snapshot(),
            "metrics": self.metrics.snapshot(),
            "emitted_counts": dict(self._controller.emitted_counts),
            "registry": self.observability.registry.snapshot(),
        }
        self._observe_lifecycle("checkpoint", _time.perf_counter() - started)
        return state

    def restore(self, state: Dict[str, object]) -> None:
        """Restore a snapshot into this runtime.

        The runtime must have the same queries registered (same names, same
        order, same granularities) as the runtime the snapshot was taken
        from; anything else raises :class:`~repro.errors.CheckpointError`.
        """
        version = state.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {version!r} is not supported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        try:
            recorded = [
                (
                    q["name"],
                    q["granularity"],
                    q.get("definition"),
                    bool(q.get("emit_empty_groups", False)),
                )
                for q in state["queries"]
            ]
        except (KeyError, TypeError) as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc
        if self._replan_policy is not None:
            # with re-planning enabled the checkpointed granularity wins:
            # a recovery resumes the post-migration plan instead of the
            # statically registered one (names/definitions stay strict)
            recorded_by_name = {entry[0]: entry for entry in recorded}
            for registered in self._queries:
                entry = recorded_by_name.get(registered.name)
                if entry is not None and entry[1] != registered.engine.granularity:
                    try:
                        migrate_engine(registered.engine, entry[1])
                    except Exception:
                        # an unplannable recorded granularity falls through
                        # to the identity check below, which names it
                        pass
        current = [
            (
                r.name,
                r.engine.granularity,
                r.engine.query.describe(),
                bool(r.engine._emit_empty_groups),
            )
            for r in self._queries
        ]
        if recorded != current:
            names = [(entry[0], entry[1]) for entry in recorded]
            raise CheckpointError(
                f"registered queries do not match the checkpointed queries "
                f"{names}: names, granularities, definitions and "
                f"emit_empty_groups must be identical"
            )
        started = _time.perf_counter()
        try:
            for registered in self._queries:
                registered.engine.reset()
                restore_executor(
                    registered.executor, state["executors"][registered.name]
                )
            self._ingestor.restore(state["ingest"])
            self.metrics.restore(state["metrics"])
            # old checkpoints carry no registry section; restore(None)
            # resets the instruments instead of failing
            self.observability.registry.restore(state.get("registry"))
            self._controller.emitted_counts = {
                name: int(count) for name, count in state["emitted_counts"].items()
            }
        except Exception as exc:
            # a failure mid-application leaves some executors restored and
            # others fresh; poison the runtime so the inconsistent state can
            # never silently process events
            self._poisoned = True
            if isinstance(exc, CheckpointError):
                raise
            # corrupt or hand-edited snapshots surface data errors of many
            # shapes; the documented contract is a single error class
            raise CheckpointError(f"cannot restore checkpoint: {exc}") from exc
        self._poisoned = False
        self._flushed = False
        # ordered-mode emission resumes from the restored watermark
        self._ordered_watermark = self.metrics.watermark
        self._observe_lifecycle("restore", _time.perf_counter() - started)

    def registry_snapshot(self) -> Dict[str, object]:
        """Merged registry view of this runtime, for the exporters.

        Combines the runtime counters (:class:`StreamingMetrics`' private
        registry, plus finite watermark gauges) with the observability
        registry's per-query and lifecycle instruments, then derives the
        per-query selectivity gauges from the merged counters.
        """
        return finalize_snapshot(
            merge_snapshots(
                self.metrics.registry_snapshot(),
                self.observability.registry.snapshot(),
            )
        )

    def close(self) -> None:
        """Release resources held by the runtime (the tracer's sink).

        Exists so callers can treat :class:`StreamingRuntime` and
        :class:`~repro.streaming.sharded.ShardedRuntime` (which must stop
        its worker processes) uniformly.
        """
        self.observability.close()

    def __repr__(self) -> str:
        return (
            f"StreamingRuntime({len(self._queries)} queries, "
            f"watermark={self._ingestor.watermark:g}, buffered={len(self._ingestor)})"
        )


def group_results(
    records: Iterable[EmissionRecord], query: Optional[str] = None
) -> List[GroupResult]:
    """Extract plain :class:`GroupResult`s from emission records."""
    return [
        record.result
        for record in records
        if query is None or record.query == query
    ]
