"""Watermark-driven window lifecycle and incremental result emission.

In batch mode every window of a :class:`~repro.core.executor.QueryExecutor`
is closed either by a later event or by :meth:`flush` at end of stream.  A
streaming deployment cannot wait for end of stream: a window's results must
leave the system -- and its aggregate state must be evicted -- as soon as the
*watermark* passes the window's end, because the watermark is exactly the
promise that no further event can fall into the window.

:class:`EmissionController` performs that lifecycle step for every
registered executor and wraps each emitted
:class:`~repro.core.results.GroupResult` in an :class:`EmissionRecord`
carrying the query name and the watermark that triggered the emission, so
downstream consumers (CLI, tests, benchmark) can observe *when* a result
became available, not only its value.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.executor import QueryExecutor
from repro.core.results import GroupResult


class EmissionRecord:
    """One group result together with its emission context.

    Attributes
    ----------
    query:
        Name of the registered query that produced the result.
    result:
        The emitted :class:`~repro.core.results.GroupResult`.
    watermark:
        Watermark value at emission time (``inf`` for end-of-stream flushes).
    is_correction:
        True for records produced by side-channel late-event replay
        (:meth:`~repro.streaming.runtime.StreamingRuntime.reprocess_late`):
        the record patches a window that was already emitted, it does not
        replace it.
    """

    __slots__ = ("query", "result", "watermark", "is_correction")

    def __init__(
        self,
        query: str,
        result: GroupResult,
        watermark: float,
        is_correction: bool = False,
    ):
        self.query = query
        self.result = result
        self.watermark = watermark
        self.is_correction = is_correction

    @property
    def is_final_flush(self) -> bool:
        """True when the record was produced by the end-of-stream flush."""
        return math.isinf(self.watermark)

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view used by the CLI's JSONL output.

        The ``query`` and ``watermark`` metadata keys are authoritative: a
        grouping attribute or RETURN column of the same name cannot clobber
        them (query attribution must survive for downstream consumers).
        """
        row: Dict[str, object] = dict(self.result.as_dict())
        row["query"] = self.query
        if not math.isinf(self.watermark):
            row["watermark"] = self.watermark
        if self.is_correction:
            row["is_correction"] = True
        return row

    def __repr__(self) -> str:
        flag = ", correction" if self.is_correction else ""
        return (
            f"EmissionRecord({self.query!r}, wm={self.watermark:g}, "
            f"{self.result!r}{flag})"
        )


class EmissionController:
    """Advances executors to the watermark and collects emission records."""

    def __init__(self) -> None:
        #: query name -> number of results emitted so far (for introspection)
        self.emitted_counts: Dict[str, int] = {}

    # -- lifecycle -------------------------------------------------------------

    def advance(
        self, query: str, executor: QueryExecutor, watermark: float
    ) -> List[EmissionRecord]:
        """Emit (and evict) every window of ``executor`` ending <= ``watermark``."""
        if math.isinf(watermark) and watermark < 0:
            return []
        results = executor.advance_time(watermark)
        return self._wrap(query, results, watermark)

    def close(self, query: str, executor: QueryExecutor) -> List[EmissionRecord]:
        """End-of-stream flush: emit everything the executor still holds."""
        return self._wrap(query, executor.flush(), math.inf)

    def collect(
        self, query: str, results: List[GroupResult], watermark: float
    ) -> List[EmissionRecord]:
        """Wrap results produced as a side effect of processing an event.

        The executor also closes windows when a newly processed event lies
        beyond their end; those results carry the same watermark context as
        the surrounding ingestion step.
        """
        return self._wrap(query, results, watermark)

    def _wrap(
        self, query: str, results: List[GroupResult], watermark: float
    ) -> List[EmissionRecord]:
        if results:
            self.emitted_counts[query] = (
                self.emitted_counts.get(query, 0) + len(results)
            )
        return [EmissionRecord(query, result, watermark) for result in results]

    # -- introspection ---------------------------------------------------------

    def emitted(self, query: Optional[str] = None) -> int:
        """Results emitted so far, for one query or over all queries."""
        if query is not None:
            return self.emitted_counts.get(query, 0)
        return sum(self.emitted_counts.values())
