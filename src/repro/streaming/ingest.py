"""Out-of-order ingestion: reorder buffer, watermarks and late events.

Real event sources deliver events with *bounded disorder*: an event may
arrive after later-timestamped events, but not arbitrarily late.  The
ingestion layer restores the total ``(time, sequence)`` order the executors
require:

* a :class:`WatermarkStrategy` turns the arrival stream into a monotone
  *watermark* -- a promise that no event with a smaller timestamp will
  arrive any more (``bounded-delay`` derives it from the maximum timestamp
  seen; ``punctuation`` reads it from dedicated marker events);
* the :class:`OutOfOrderIngestor` buffers arrivals in a min-heap and
  releases them in timestamp order once the watermark passes them;
* events arriving *behind* the watermark are late and handled by the
  configured :class:`LatePolicy` (drop / raise / side-channel).
"""

from __future__ import annotations

import enum
import heapq
import math
from typing import Dict, List, Optional, Tuple

from repro.errors import CheckpointError, LateEventError
from repro.events.event import Event


class LatePolicy(enum.Enum):
    """What to do with an event that arrives behind the watermark."""

    #: silently discard the event (counted in the metrics)
    DROP = "drop"
    #: raise :class:`~repro.errors.LateEventError` (strict pipelines)
    RAISE = "raise"
    #: collect the event on a side channel for out-of-band reprocessing
    SIDE_CHANNEL = "side-channel"


# ---------------------------------------------------------------------------
# watermark strategies
# ---------------------------------------------------------------------------


class WatermarkStrategy:
    """Turns the (disordered) arrival stream into a monotone watermark."""

    def observe(self, event: Event) -> None:
        """Account for one arriving event."""
        raise NotImplementedError

    def watermark(self) -> float:
        """Current watermark; ``-inf`` before anything is known."""
        raise NotImplementedError

    def is_punctuation(self, event: Event) -> bool:
        """True when ``event`` only carries watermark information."""
        return False

    # -- checkpoint support ---------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Checkpointable strategy state."""
        raise NotImplementedError

    def restore(self, state: Dict[str, object]) -> None:
        """Restore the state written by :meth:`snapshot`."""
        raise NotImplementedError


class BoundedDelayWatermark(WatermarkStrategy):
    """Watermark = maximum event time seen minus a fixed lateness bound.

    ``delay`` is the disorder the source is trusted to stay within: an event
    may arrive up to ``delay`` seconds of event time after later events.  A
    delay of ``0`` accepts only in-order input (every disorder is late).
    """

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"the lateness bound must be non-negative, got {delay!r}")
        self.delay = float(delay)
        self._max_time = -math.inf

    def observe(self, event: Event) -> None:
        if event.time > self._max_time:
            self._max_time = event.time

    def watermark(self) -> float:
        return self._max_time - self.delay

    def snapshot(self) -> Dict[str, object]:
        return {
            "delay": self.delay,
            "max_time": None if math.isinf(self._max_time) else self._max_time,
        }

    def restore(self, state: Dict[str, object]) -> None:
        recorded = float(state["delay"])
        if recorded != self.delay:
            # configuration, not state: silently adopting the checkpoint's
            # bound would loosen (or tighten) what the operator configured
            raise CheckpointError(
                f"checkpoint was taken with a lateness bound of {recorded:g}s "
                f"but this runtime is configured with {self.delay:g}s"
            )
        max_time = state.get("max_time")
        self._max_time = -math.inf if max_time is None else float(max_time)

    def __repr__(self) -> str:
        return f"BoundedDelayWatermark(delay={self.delay:g}s)"


class PunctuationWatermark(WatermarkStrategy):
    """Watermark carried by dedicated punctuation events.

    Events of ``punctuation_type`` advance the watermark to their timestamp
    and are consumed by the ingestion layer (they never reach an executor).
    All other events leave the watermark untouched, so a source that stops
    punctuating stalls emission -- exactly the semantics of punctuated
    streams in Flink/Millwheel-style systems.
    """

    def __init__(self, punctuation_type: str = "Watermark"):
        self.punctuation_type = punctuation_type
        self._watermark = -math.inf

    def observe(self, event: Event) -> None:
        if self.is_punctuation(event) and event.time > self._watermark:
            self._watermark = event.time

    def watermark(self) -> float:
        return self._watermark

    def is_punctuation(self, event: Event) -> bool:
        return event.event_type == self.punctuation_type

    def snapshot(self) -> Dict[str, object]:
        return {
            "punctuation_type": self.punctuation_type,
            "watermark": None if math.isinf(self._watermark) else self._watermark,
        }

    def restore(self, state: Dict[str, object]) -> None:
        recorded = str(state["punctuation_type"])
        if recorded != self.punctuation_type:
            # adopting the checkpoint's type would turn the configured
            # punctuation events into data events and stall emission
            raise CheckpointError(
                f"checkpoint was taken with punctuation type {recorded!r} "
                f"but this runtime is configured with "
                f"{self.punctuation_type!r}"
            )
        watermark = state.get("watermark")
        self._watermark = -math.inf if watermark is None else float(watermark)

    def __repr__(self) -> str:
        return f"PunctuationWatermark(type={self.punctuation_type!r})"


# ---------------------------------------------------------------------------
# the reorder buffer
# ---------------------------------------------------------------------------


class IngestBatch:
    """Outcome of pushing one event into the ingestor.

    Attributes
    ----------
    released:
        Events released in ``(time, sequence)`` order; they are now safe to
        feed to executors because the watermark passed them.
    watermark:
        The watermark after the push (``-inf`` until the strategy knows one).
    advanced:
        True when the push moved the watermark forward, i.e. windows ending
        at or before :attr:`watermark` may now be emitted.
    late_event:
        The pushed event when it arrived behind the watermark, else ``None``.
    buffered:
        Reorder-buffer occupancy after the push (the metrics' single source
        of truth -- late events never enter the buffer).
    punctuation:
        True when the pushed event was consumed as a punctuation marker
        (so metrics never re-derive the strategy's decision).
    """

    __slots__ = (
        "released", "watermark", "advanced", "late_event", "buffered", "punctuation"
    )

    def __init__(
        self,
        released: List[Event],
        watermark: float,
        advanced: bool,
        late_event: Optional[Event] = None,
        buffered: int = 0,
        punctuation: bool = False,
    ):
        self.released = released
        self.watermark = watermark
        self.advanced = advanced
        self.late_event = late_event
        self.buffered = buffered
        self.punctuation = punctuation

    def __repr__(self) -> str:
        return (
            f"IngestBatch(released={len(self.released)}, watermark={self.watermark:g}, "
            f"advanced={self.advanced}, late={self.late_event is not None})"
        )


class OutOfOrderIngestor:
    """Bounded-lateness reorder buffer in front of the executors.

    Parameters
    ----------
    strategy:
        The :class:`WatermarkStrategy` driving release and emission.
    late_policy:
        What happens to events arriving behind the watermark.
    """

    def __init__(
        self,
        strategy: WatermarkStrategy,
        late_policy: LatePolicy = LatePolicy.DROP,
    ):
        self.strategy = strategy
        self.late_policy = LatePolicy(late_policy)
        #: (time, sequence, arrival tie-breaker, event) min-heap
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._arrivals = 0
        self.side_channel: List[Event] = []
        self.dropped = 0

    # -- ingestion -------------------------------------------------------------

    def push(self, event: Event) -> IngestBatch:
        """Ingest one event; return what may now flow downstream."""
        before = self.strategy.watermark()
        if self.strategy.is_punctuation(event):
            self.strategy.observe(event)
            watermark = self.strategy.watermark()
            return IngestBatch(
                self._release(watermark),
                watermark,
                watermark > before,
                buffered=len(self._heap),
                punctuation=True,
            )

        if event.time < before:
            self._handle_late(event, before)
            return IngestBatch(
                [], before, False, late_event=event, buffered=len(self._heap)
            )

        self._arrivals += 1
        heapq.heappush(self._heap, (event.time, event.sequence, self._arrivals, event))
        self.strategy.observe(event)
        watermark = self.strategy.watermark()
        return IngestBatch(
            self._release(watermark),
            watermark,
            watermark > before,
            buffered=len(self._heap),
        )

    def drain(self) -> List[Event]:
        """Release every buffered event (end of stream), in order."""
        return self._release(math.inf)

    def _release(self, watermark: float) -> List[Event]:
        """Pop all buffered events with ``time < watermark``, in order.

        Strictly below: an event *at* the watermark is not late (the late
        check is ``time < watermark`` too), so a second event with the same
        timestamp may still arrive -- releasing at equality would let
        equal-timestamp events straddle the watermark and reach executors
        out of ``(time, sequence)`` order.
        """
        released: List[Event] = []
        heap = self._heap
        while heap and heap[0][0] < watermark:
            released.append(heapq.heappop(heap)[3])
        return released

    def _handle_late(self, event: Event, watermark: float) -> None:
        if self.late_policy is LatePolicy.RAISE:
            raise LateEventError(
                f"event at time {event.time:g} arrived behind the watermark "
                f"{watermark:g}",
                event=event,
                watermark=watermark,
            )
        if self.late_policy is LatePolicy.SIDE_CHANNEL:
            self.side_channel.append(event)
        else:
            self.dropped += 1

    def take_side_channel(self) -> List[Event]:
        """Drain (return and clear) the late-event side channel.

        The runtimes expose this as ``take_late_events``; long-running jobs
        call it periodically so the side channel cannot grow without bound.
        """
        taken = self.side_channel
        self.side_channel = []
        return taken

    # -- inspection ------------------------------------------------------------

    def __len__(self) -> int:
        """Number of currently buffered events."""
        return len(self._heap)

    @property
    def watermark(self) -> float:
        """Current watermark of the underlying strategy."""
        return self.strategy.watermark()

    # -- checkpoint support ----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Checkpointable ingestor state (buffer, strategy, late accounting)."""
        from repro.streaming.checkpoint import snapshot_event

        return {
            "strategy": {
                "class": type(self.strategy).__name__,
                "state": self.strategy.snapshot(),
            },
            "late_policy": self.late_policy.value,
            "buffered": [
                snapshot_event(entry[3]) for entry in sorted(self._heap)
            ],
            "arrivals": self._arrivals,
            "dropped": self.dropped,
            "side_channel": [snapshot_event(event) for event in self.side_channel],
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Restore the state written by :meth:`snapshot`.

        The ingestor's *configuration* -- watermark strategy class and late
        policy -- must match the checkpoint: a runtime configured strictly
        (e.g. ``raise``) must not silently adopt a checkpoint's looser
        policy.  Strategy *state* (max time seen, last punctuation, and the
        recorded lateness bound) is restored.
        """
        from repro.streaming.checkpoint import restore_event

        strategy_state = state["strategy"]
        class_name = strategy_state["class"]
        if class_name != type(self.strategy).__name__:
            raise CheckpointError(
                f"checkpoint was taken with watermark strategy {class_name!r} "
                f"but this runtime uses {type(self.strategy).__name__!r}"
            )
        recorded_policy = LatePolicy(state["late_policy"])
        if recorded_policy is not self.late_policy:
            raise CheckpointError(
                f"checkpoint was taken with late policy "
                f"{recorded_policy.value!r} but this runtime is configured "
                f"with {self.late_policy.value!r}"
            )
        self.strategy.restore(strategy_state["state"])
        self._arrivals = int(state["arrivals"])
        self.dropped = int(state["dropped"])
        self.side_channel = [restore_event(item) for item in state["side_channel"]]
        self._heap = []
        for index, item in enumerate(state["buffered"]):
            event = restore_event(item)
            heapq.heappush(self._heap, (event.time, event.sequence, index, event))

    def __repr__(self) -> str:
        return (
            f"OutOfOrderIngestor({self.strategy!r}, policy={self.late_policy.value}, "
            f"buffered={len(self)})"
        )
