"""Declarative job configuration: one typed, serializable spec per job.

Three PRs of streaming growth (watermarks, sharding, sources/sinks,
checkpointing, recovery) accreted as keyword-argument sprawl: the same
knobs were re-declared -- with drifting defaults -- on
:meth:`CograEngine.stream`, :class:`~repro.streaming.runtime.
StreamingRuntime`, :class:`~repro.streaming.sharded.ShardedRuntime`,
:meth:`~repro.streaming.runtime.PipelineDriver.run` and a dozen CLI flags.
This module is the seam that replaces the sprawl, mirroring how production
engines separate a declarative job description (Flink's job graph, Beam's
pipeline options) from the runtime that executes it:

* a :class:`JobConfig` is a frozen dataclass tree -- queries, watermarking,
  late-event handling, sharding, checkpointing, source and sink -- that
  validates eagerly (:class:`~repro.errors.ConfigError` with actionable
  messages), round-trips through :meth:`JobConfig.to_dict` /
  :meth:`JobConfig.from_dict`, and loads from JSON or TOML files
  (:meth:`JobConfig.load`);
* :meth:`JobConfig.build` resolves the spec into a ready-to-run
  :class:`~repro.streaming.runtime.StreamingRuntime` or
  :class:`~repro.streaming.sharded.ShardedRuntime` plus opened source,
  sink and checkpoint store;
* the :class:`Job` facade (:func:`job`) runs the built pipeline with the
  full lifecycle -- checkpoint recovery, late-event persistence or
  reprocessing, teardown -- behind ``start()`` / ``results()`` /
  ``metrics`` / ``checkpoint()`` / ``stop()``.

Every entry point builds on this spec: ``CograEngine.stream(**kwargs)``
and the runtime constructors assemble the component configs internally
(which is what reconciled their once-divergent defaults), and ``cogra
stream --config job.json`` loads one directly, with CLI flags acting as
overrides.

Example
-------
::

    config = JobConfig(
        queries=(QueryConfig(text=QUERY, name="trends"),),
        watermark=WatermarkConfig(lateness=5.0),
        late=LatenessConfig(policy="drop"),
        shards=ShardConfig(workers=4),
    )
    records = job(config, events=feed).results()

    config.to_dict() == JobConfig.load(path).to_dict()   # serializable
"""

from __future__ import annotations

import dataclasses
import difflib
import json
import threading
import warnings
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.events.event import Event
from repro.streaming.checkpoint import CheckpointStore
from repro.streaming.emission import EmissionRecord
from repro.streaming.ingest import (
    BoundedDelayWatermark,
    LatePolicy,
    PunctuationWatermark,
    WatermarkStrategy,
)
from repro.streaming.jsonl import write_jsonl_events
from repro.streaming.sources import (
    EventSource,
    PartitionedLogSource,
    Sink,
    SkippingSource,
    TransactionalSink,
    as_source,
    open_sink,
    open_source,
)

#: granularities a query may force (mirrors ``cogra run --granularity``)
GRANULARITIES = ("pattern", "type", "mixed", "event")


@lru_cache(maxsize=256)
def _query_plan_info(
    text: str, granularity: Optional[str]
) -> Tuple[Tuple[str, ...], str, bool]:
    """(partition attributes, resolved granularity, count-windowed) facts.

    ``validate()`` and ``granularity_plan()`` both need the static
    analysis but never the (stateful) engine; caching the read-only
    facts avoids re-parsing and re-planning the same query text on every
    validation -- the CLI validates and then builds, a dry run validates
    and then plans.
    """
    from repro.core.engine import CograEngine

    engine = CograEngine(text, granularity=granularity)
    window = engine.query.window
    count_windowed = window is not None and window.is_count_based
    return engine.plan.partition_attributes, engine.granularity, count_windowed


def _check_unknown_keys(cls, data: Dict[str, object], context: str) -> None:
    """Reject keys that are not fields of ``cls``, suggesting the typo fix."""
    valid = [f.name for f in dataclasses.fields(cls)]
    unknown = [key for key in data if key not in valid]
    if not unknown:
        return
    parts = []
    for key in unknown:
        close = difflib.get_close_matches(str(key), valid, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        parts.append(f"{key!r}{hint}")
    raise ConfigError(
        f"unknown key{'s' if len(parts) > 1 else ''} {', '.join(parts)} in "
        f"{context}; valid keys: {', '.join(valid)}"
    )


def _require_mapping(data: object, context: str) -> Dict[str, object]:
    """Config sections must be objects/tables, not scalars or arrays."""
    if not isinstance(data, dict):
        raise ConfigError(
            f"{context} must be an object of settings, got {type(data).__name__}"
        )
    return data


def _require_bool(value: object, name: str) -> None:
    """Booleans must be real booleans -- the string 'false' is truthy."""
    if not isinstance(value, bool):
        raise ConfigError(f"{name} must be true or false, got {value!r}")


def _require_optional_string(value: object, name: str) -> None:
    """Optional strings must be null or a non-empty string."""
    if value is not None and (not isinstance(value, str) or not value):
        raise ConfigError(f"{name} must be null or a non-empty string, got {value!r}")


@dataclass(frozen=True)
class WatermarkConfig:
    """How the job derives watermarks from the arrival stream.

    ``kind="bounded-delay"`` trusts the source to stay within ``lateness``
    seconds of disorder (watermark = max event time seen - lateness);
    ``kind="punctuation"`` reads the watermark from dedicated marker events
    of type ``punctuation_type`` and ignores ``lateness`` -- mixing the two
    is rejected, exactly like the CLI's ``--lateness`` /
    ``--punctuation-type`` conflict.
    """

    kind: str = "bounded-delay"
    lateness: float = 0.0
    punctuation_type: Optional[str] = None

    KINDS = ("bounded-delay", "punctuation")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ConfigError(
                f"unknown watermark kind {self.kind!r}; valid kinds: "
                f"{', '.join(self.KINDS)}"
            )
        if not isinstance(self.lateness, (int, float)) or isinstance(
            self.lateness, bool
        ):
            raise ConfigError(
                f"watermark lateness must be a number of seconds, "
                f"got {self.lateness!r}"
            )
        if self.lateness < 0:
            raise ConfigError(
                f"watermark lateness must be non-negative, got {self.lateness:g}"
            )
        _require_optional_string(self.punctuation_type, "punctuation_type")
        if self.kind == "punctuation":
            if not self.punctuation_type:
                raise ConfigError(
                    "watermark kind 'punctuation' requires punctuation_type "
                    "(the event type carrying the watermark)"
                )
            if self.lateness:
                raise ConfigError(
                    "lateness has no effect with punctuation watermarks (the "
                    "watermark is carried by punctuation events); set one or "
                    "the other"
                )
        elif self.punctuation_type is not None:
            raise ConfigError(
                "punctuation_type requires watermark kind 'punctuation' "
                f"(got kind {self.kind!r})"
            )

    def build(self) -> WatermarkStrategy:
        """The :class:`WatermarkStrategy` this spec describes."""
        if self.kind == "punctuation":
            return PunctuationWatermark(self.punctuation_type)
        return BoundedDelayWatermark(float(self.lateness))


@dataclass(frozen=True)
class LatenessConfig:
    """What happens to events that arrive behind the watermark.

    This is the single home of the late-event policy: the runtimes and
    :meth:`CograEngine.stream` all resolve their ``late_policy`` keyword
    through it, so the default -- ``"raise"``, mirroring the batch path's
    strictness on disorder -- is declared exactly once.  ``"drop"``
    discards late events (counted in the metrics), ``"side-channel"``
    collects them for out-of-band handling: either persisted to
    ``side_channel_path`` as JSONL, or replayed at end of job into
    ``is_correction=True`` records when ``reprocess`` is set.
    """

    policy: str = "raise"
    side_channel_path: Optional[str] = None
    reprocess: bool = False

    def __post_init__(self) -> None:
        _require_optional_string(self.side_channel_path, "side_channel_path")
        _require_bool(self.reprocess, "reprocess")
        valid = [policy.value for policy in LatePolicy]
        if self.policy not in valid:
            close = difflib.get_close_matches(str(self.policy), valid, n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            raise ConfigError(
                f"unknown late-event policy {self.policy!r}{hint}; valid "
                f"policies: {', '.join(valid)}"
            )
        side_channel = self.policy == LatePolicy.SIDE_CHANNEL.value
        if self.side_channel_path and not side_channel:
            raise ConfigError(
                "side_channel_path requires the 'side-channel' policy "
                f"(got {self.policy!r})"
            )
        if self.reprocess and not side_channel:
            raise ConfigError(
                "reprocess requires the 'side-channel' policy (late events "
                f"must be collected to be replayed; got {self.policy!r})"
            )
        if self.side_channel_path and self.reprocess:
            raise ConfigError(
                "side_channel_path and reprocess are mutually exclusive: "
                "persist late events for out-of-band handling, or replay "
                "them in-band at end of job -- not both"
            )

    @classmethod
    def of(cls, policy: Union[LatePolicy, str, None]) -> "LatenessConfig":
        """Normalize a ``late_policy`` keyword (member, string or ``None``).

        ``None`` means "the shared default" -- the single place the
        runtimes, :meth:`CograEngine.stream` and the job spec agree on.
        """
        if policy is None:
            return cls()
        if isinstance(policy, LatePolicy):
            policy = policy.value
        return cls(policy=str(policy))

    @property
    def resolved_policy(self) -> LatePolicy:
        """The validated :class:`LatePolicy` member."""
        return LatePolicy(self.policy)


@dataclass(frozen=True)
class RebalanceConfig:
    """Adaptive shard rebalancing: when the router migrates hash sub-ranges.

    With ``enabled`` the sharded runtime watches the routing load per hash
    slot and moves hot slots -- with their live aggregator state, via the
    checkpoint split/merge path -- from overloaded to underloaded workers.
    ``skew_threshold`` fires a cycle when the busiest worker's load reaches
    that multiple of the mean load (note the busiest of N workers can reach
    at most N times the mean, so keep the threshold below the worker
    count); ``min_interval`` is the number of ingested events between skew
    checks (each cycle briefly quiesces the workers, so this bounds the
    migration overhead); ``max_moves`` caps the slots migrated per cycle;
    ``slots_per_worker`` sets the router granularity (hash slots =
    ``slots_per_worker`` x workers).
    """

    enabled: bool = False
    skew_threshold: float = 1.5
    min_interval: int = 512
    max_moves: int = 4
    slots_per_worker: int = 16

    def __post_init__(self) -> None:
        _require_bool(self.enabled, "rebalance enabled")
        if (
            not isinstance(self.skew_threshold, (int, float))
            or isinstance(self.skew_threshold, bool)
            or not self.skew_threshold > 1.0
        ):
            raise ConfigError(
                f"rebalance skew_threshold must be a number greater than 1 "
                f"(the busiest worker's load as a multiple of the mean load), "
                f"got {self.skew_threshold!r}"
            )
        for name in ("min_interval", "max_moves", "slots_per_worker"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ConfigError(
                    f"rebalance {name} must be a positive integer, got {value!r}"
                )


@dataclass(frozen=True)
class ReplanConfig:
    """Adaptive granularity re-planning: the online cost-model control loop.

    With ``enabled`` the runtime periodically re-evaluates the cost model
    against *observed* per-query statistics (mean events per open
    sub-stream, match rate) and live-migrates a query whose chosen
    granularity stopped being optimal -- through the checkpoint
    snapshot/restore path, so answers never change, only cost.
    ``check_interval_events`` is the number of ingested events between
    checks; ``hysteresis`` is the fractional cost margin the current plan
    must be beaten by before a migration happens (borderline queries keep
    their plan instead of flapping); ``max_migrations`` caps the queries
    migrated per check; ``ewma_alpha`` is the smoothing factor of the
    observed-statistics EWMAs (1.0 trusts only the latest check).
    """

    enabled: bool = False
    check_interval_events: int = 2048
    hysteresis: float = 0.25
    max_migrations: int = 4
    ewma_alpha: float = 0.5

    def __post_init__(self) -> None:
        _require_bool(self.enabled, "replan enabled")
        if (
            not isinstance(self.hysteresis, (int, float))
            or isinstance(self.hysteresis, bool)
            or not self.hysteresis >= 0.0
        ):
            raise ConfigError(
                f"replan hysteresis must be a non-negative number (the "
                f"fractional cost margin before a migration), got "
                f"{self.hysteresis!r}"
            )
        for name in ("check_interval_events", "max_migrations"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ConfigError(
                    f"replan {name} must be a positive integer, got {value!r}"
                )
        if (
            not isinstance(self.ewma_alpha, (int, float))
            or isinstance(self.ewma_alpha, bool)
            or not 0.0 < self.ewma_alpha <= 1.0
        ):
            raise ConfigError(
                f"replan ewma_alpha must be a number in (0, 1], got "
                f"{self.ewma_alpha!r}"
            )


@dataclass(frozen=True)
class ShardConfig:
    """The process topology: worker count and batching/recovery knobs.

    ``workers=1`` runs the whole job in-process on a
    :class:`~repro.streaming.runtime.StreamingRuntime`; more workers shard
    the stream by partition key across processes
    (:class:`~repro.streaming.sharded.ShardedRuntime`).  The remaining
    fields only apply to the sharded topology; ``rebalance`` configures
    live migration of hot hash ranges between the workers
    (:class:`RebalanceConfig`).
    """

    workers: int = 1
    ship_interval: int = 64
    max_batch: int = 512
    max_restarts: int = 0
    start_method: Optional[str] = None
    rebalance: RebalanceConfig = field(default_factory=RebalanceConfig)

    def __post_init__(self) -> None:
        for name in ("workers", "ship_interval", "max_batch", "max_restarts"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigError(f"{name} must be an integer, got {value!r}")
        if self.workers < 1:
            raise ConfigError(f"worker count must be at least 1, got {self.workers}")
        if self.ship_interval < 1:
            raise ConfigError(
                f"ship_interval must be at least 1, got {self.ship_interval}"
            )
        if self.max_batch < 1:
            raise ConfigError(f"max_batch must be at least 1, got {self.max_batch}")
        if self.max_restarts < 0:
            raise ConfigError(
                f"max_restarts must be non-negative, got {self.max_restarts}"
            )
        _require_optional_string(self.start_method, "start_method")
        if isinstance(self.rebalance, dict):
            # from_dict (and kwargs users) hand the nested section as a raw
            # mapping; validate and coerce so equality/hashing keep working
            context = "the 'shards.rebalance' section"
            section = _require_mapping(self.rebalance, context)
            _check_unknown_keys(RebalanceConfig, section, context)
            object.__setattr__(self, "rebalance", RebalanceConfig(**section))
        elif not isinstance(self.rebalance, RebalanceConfig):
            raise ConfigError(
                f"shards.rebalance must be a RebalanceConfig or an object of "
                f"settings (e.g. {{'enabled': true}}), got {self.rebalance!r}"
            )


@dataclass(frozen=True)
class BatchConfig:
    """Hot-path batching: decode granularity and shard wire format.

    ``decode_batch_size`` is how many events the driver pulls from the
    source (and pushes through the runtime) per slice; larger slices
    amortise per-event Python overhead, smaller ones reduce emission
    latency.  When checkpointing is on, the effective slice size is
    clamped so no slice straddles a checkpoint boundary.

    ``ship_serialized`` makes the sharded runtime ship each wave to a
    worker as one pre-pickled blob (and the workers' result acks back the
    same way) instead of a list of event objects.  Results are identical
    either way; disable it when debugging the worker protocol so the
    queue messages stay plain, inspectable Python objects.
    """

    decode_batch_size: int = 256
    ship_serialized: bool = True

    def __post_init__(self) -> None:
        value = self.decode_batch_size
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ConfigError(
                f"decode_batch_size must be a positive integer, got {value!r}"
            )
        _require_bool(self.ship_serialized, "ship_serialized")


@dataclass(frozen=True)
class CheckpointConfig:
    """Periodic checkpointing and recovery of the job.

    ``dir`` names the on-disk :class:`~repro.streaming.checkpoint.
    CheckpointStore`; ``interval`` checkpoints every N ingested events
    (incremental deltas, compacted every ``compact_every`` checkpoints,
    written on a background thread unless ``background=False``);
    ``recover`` resumes the job from the newest checkpoint in ``dir`` --
    and, combined with ``interval`` on a sharded topology, also restarts
    crashed workers from checkpoints instead of aborting.
    """

    dir: Optional[str] = None
    interval: Optional[int] = None
    background: bool = True
    compact_every: int = 8
    recover: bool = False

    def __post_init__(self) -> None:
        _require_optional_string(self.dir, "checkpoint dir")
        _require_bool(self.background, "checkpoint background")
        _require_bool(self.recover, "checkpoint recover")
        if self.interval is not None:
            if not isinstance(self.interval, int) or isinstance(self.interval, bool):
                raise ConfigError(
                    f"checkpoint interval must be an integer, got {self.interval!r}"
                )
            if self.interval < 1:
                raise ConfigError(
                    f"checkpoint interval must be at least 1, got {self.interval}"
                )
        if not isinstance(self.compact_every, int) or self.compact_every < 1:
            raise ConfigError(
                f"compact_every must be a positive integer, got {self.compact_every!r}"
            )
        if self.interval is not None and not self.dir:
            raise ConfigError(
                "a checkpoint interval requires a checkpoint dir "
                "(where the incremental checkpoints are stored)"
            )
        if self.recover and not self.dir:
            raise ConfigError(
                "recover requires a checkpoint dir (the store to resume from)"
            )
        if self.dir and self.interval is None and not self.recover:
            raise ConfigError(
                "a checkpoint dir does nothing by itself; add an interval to "
                "write periodic checkpoints and/or recover to resume from "
                "the store"
            )

    def build_store(self, registry=None) -> Optional[CheckpointStore]:
        """Open the configured :class:`CheckpointStore`, or ``None``.

        ``registry`` is an optional
        :class:`~repro.streaming.observability.MetricsRegistry` the store
        records write/restore durations and bytes into (the Job facade
        passes the runtime's, so checkpoint metrics land in the exported
        view).
        """
        if not self.dir:
            return None
        return CheckpointStore(
            self.dir,
            compact_every=self.compact_every,
            background=self.background,
            registry=registry,
        )


@dataclass(frozen=True)
class BackpressureConfig:
    """Bounded decoupling between ingestion and the slower pipeline ends.

    ``max_inflight`` bounds the worker inboxes of a sharded topology: at
    most that many shipped epochs may await worker acknowledgement before
    ingestion blocks (the bounded-queue half of backpressure).
    ``poll_interval_seconds`` paces the driver loop's
    :meth:`~repro.streaming.sources.Sink.ready` polls while a sink reports
    no capacity; ``max_wait_seconds`` turns a permanently stalled sink
    into an error instead of an unbounded hang (``null`` waits forever,
    like a blocking producer).  Both wait kinds are surfaced as
    ``backpressure_waits`` / ``backpressure_seconds`` in the metrics
    registry.
    """

    max_inflight: int = 64
    poll_interval_seconds: float = 0.01
    max_wait_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if (
            not isinstance(self.max_inflight, int)
            or isinstance(self.max_inflight, bool)
            or self.max_inflight < 1
        ):
            raise ConfigError(
                f"backpressure max_inflight must be a positive integer "
                f"(epochs in flight before ingestion blocks), "
                f"got {self.max_inflight!r}"
            )
        if (
            not isinstance(self.poll_interval_seconds, (int, float))
            or isinstance(self.poll_interval_seconds, bool)
            or not self.poll_interval_seconds > 0
        ):
            raise ConfigError(
                f"backpressure poll_interval_seconds must be a positive "
                f"number, got {self.poll_interval_seconds!r}"
            )
        if self.max_wait_seconds is not None and (
            not isinstance(self.max_wait_seconds, (int, float))
            or isinstance(self.max_wait_seconds, bool)
            or not self.max_wait_seconds > 0
        ):
            raise ConfigError(
                f"backpressure max_wait_seconds must be null or a positive "
                f"number, got {self.max_wait_seconds!r}"
            )


@dataclass(frozen=True)
class ObsConfig:
    """Observability: metrics export, lifecycle tracing, Prometheus endpoint.

    ``metrics_export_path`` appends periodic registry snapshots (every
    ``metrics_interval_seconds``) as JSONL time-series samples;
    ``trace_path`` + ``trace_sample_rate`` emit sampled lifecycle span
    trees (ingest -> route -> execute -> emit, plus checkpoint / recovery /
    rebalance operations) as JSONL; ``prometheus_port`` serves the most
    recent snapshot in the Prometheus text format on localhost (``0``
    binds an ephemeral port).  All default to off -- the runtime still
    collects its registry metrics, it just exports nothing.
    """

    metrics_export_path: Optional[str] = None
    metrics_interval_seconds: float = 10.0
    trace_path: Optional[str] = None
    trace_sample_rate: float = 0.0
    prometheus_port: Optional[int] = None

    def __post_init__(self) -> None:
        _require_optional_string(self.metrics_export_path, "metrics_export_path")
        _require_optional_string(self.trace_path, "trace_path")
        if (
            not isinstance(self.metrics_interval_seconds, (int, float))
            or isinstance(self.metrics_interval_seconds, bool)
            or not self.metrics_interval_seconds > 0
        ):
            raise ConfigError(
                f"metrics_interval_seconds must be a positive number, "
                f"got {self.metrics_interval_seconds!r}"
            )
        if (
            not isinstance(self.trace_sample_rate, (int, float))
            or isinstance(self.trace_sample_rate, bool)
            or not 0.0 <= self.trace_sample_rate <= 1.0
        ):
            raise ConfigError(
                f"trace_sample_rate must be a number between 0 and 1, "
                f"got {self.trace_sample_rate!r}"
            )
        if self.trace_path and not self.trace_sample_rate:
            raise ConfigError(
                "trace_path requires a positive trace_sample_rate "
                "(no span is ever sampled at rate 0)"
            )
        if self.trace_sample_rate and not self.trace_path:
            raise ConfigError(
                "trace_sample_rate requires trace_path "
                "(where the sampled spans are written)"
            )
        if self.prometheus_port is not None:
            if (
                not isinstance(self.prometheus_port, int)
                or isinstance(self.prometheus_port, bool)
                or not 0 <= self.prometheus_port <= 65535
            ):
                raise ConfigError(
                    f"prometheus_port must be a port number (0 binds an "
                    f"ephemeral one), got {self.prometheus_port!r}"
                )

    @property
    def exports_anything(self) -> bool:
        """Whether any exporter/endpoint is configured."""
        return bool(
            self.metrics_export_path
            or self.trace_path
            or self.prometheus_port is not None
        )

    def build_observability(self):
        """The :class:`~repro.streaming.observability.Observability` bundle.

        Always enabled (metric collection is cheap and the registry feeds
        checkpoints); tracing is attached only when configured.
        """
        from repro.streaming.observability import (
            JsonlTraceSink,
            Observability,
            Tracer,
        )

        tracer = None
        if self.trace_path and self.trace_sample_rate:
            tracer = Tracer(
                sample_rate=float(self.trace_sample_rate),
                sink=JsonlTraceSink(self.trace_path),
            )
        return Observability(tracer=tracer)

    def build_exporter(self):
        """The configured JSONL exporter, or ``None`` when nothing exports.

        A Prometheus endpoint without an export path still needs the
        exporter (with ``path=None``) -- it serves the exporter's most
        recent cached snapshot.
        """
        if not self.metrics_export_path and self.prometheus_port is None:
            return None
        from repro.streaming.observability import JsonlMetricsExporter

        return JsonlMetricsExporter(
            self.metrics_export_path,
            interval=float(self.metrics_interval_seconds),
        )


@dataclass(frozen=True)
class LogSourceConfig:
    """A Kafka-style partitioned log as the job's source.

    ``dir`` names the log directory (see
    :class:`~repro.streaming.sources.PartitionedLogSource`); consumer
    offsets are checkpointed with the runtime state, so ``--recover``
    resumes from the committed offset without re-reading the prefix.
    ``partitions`` and ``segment_records`` describe the layout a
    :class:`~repro.streaming.sources.PartitionedLogWriter` should use when
    tooling produces the log from this config; reading infers both from
    the directory itself.
    """

    dir: Optional[str] = None
    partitions: int = 1
    segment_records: int = 1024

    def __post_init__(self) -> None:
        _require_optional_string(self.dir, "source log dir")
        for name in ("partitions", "segment_records"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ConfigError(
                    f"source log {name} must be a positive integer, got {value!r}"
                )


@dataclass(frozen=True)
class SourceConfig:
    """Where the job's events come from, as a ``--source``-style spec.

    ``"-"`` reads JSONL from stdin, ``tail:PATH`` follows a growing JSONL
    file, ``tcp://HOST:PORT`` connects to a JSONL socket, ``log:DIR``
    reads a partitioned log directory, and anything else reads a static
    JSONL file (see :func:`~repro.streaming.sources.open_source`).  The
    ``log`` section is the typed alternative to ``log:DIR`` and adds the
    writer-side layout knobs.
    """

    spec: str = "-"
    log: LogSourceConfig = field(default_factory=LogSourceConfig)

    def __post_init__(self) -> None:
        if not isinstance(self.spec, str) or not self.spec:
            raise ConfigError(
                f"source spec must be a non-empty string ('-', PATH, "
                f"'tail:PATH', 'tcp://HOST:PORT' or 'log:DIR'), got {self.spec!r}"
            )
        if isinstance(self.log, dict):
            # from_dict (and kwargs users) hand the nested section as a raw
            # mapping; validate and coerce so equality/hashing keep working
            context = "the 'source.log' section"
            section = _require_mapping(self.log, context)
            _check_unknown_keys(LogSourceConfig, section, context)
            object.__setattr__(self, "log", LogSourceConfig(**section))
        elif not isinstance(self.log, LogSourceConfig):
            raise ConfigError(
                f"source.log must be a LogSourceConfig or an object of "
                f"settings (e.g. {{'dir': 'events-log'}}), got {self.log!r}"
            )
        if self.log.dir is not None and self.spec != "-":
            raise ConfigError(
                f"source.log.dir and source.spec {self.spec!r} are both set; "
                f"a job reads from one place -- drop one of them"
            )

    def build(self) -> EventSource:
        """Open the configured :class:`EventSource`."""
        if self.log.dir is not None:
            return PartitionedLogSource(self.log.dir)
        return open_source(self.spec)


@dataclass(frozen=True)
class SinkConfig:
    """Where the job's emitted records go.

    ``None`` collects them in memory (returned by :meth:`Job.results`),
    ``"-"``/``"stdout"`` writes JSON lines to stdout, anything else writes
    a JSONL file (see :func:`~repro.streaming.sources.open_sink`).

    ``exactly_once`` upgrades a file sink to a
    :class:`~repro.streaming.sources.TransactionalSink`: duplicate
    ``(query, window, group)`` deliveries are suppressed and the delivered
    offset is checkpointed atomically with the runtime state, so a crash
    between emit and checkpoint recovers without double-delivery.  It
    requires a real file path -- stdout cannot be truncated back to a
    committed offset.
    """

    spec: Optional[str] = None
    exactly_once: bool = False

    def __post_init__(self) -> None:
        if self.spec is not None and (not isinstance(self.spec, str) or not self.spec):
            raise ConfigError(
                f"sink spec must be null, '-', 'stdout' or a file path, "
                f"got {self.spec!r}"
            )
        _require_bool(self.exactly_once, "sink exactly_once")
        if self.exactly_once and self.spec in (None, "-", "stdout"):
            raise ConfigError(
                "sink.exactly_once requires a file sink spec (the delivered "
                "prefix must be truncatable on recovery; stdout and in-memory "
                "collection are not)"
            )

    def build(self, recover: bool = False) -> Optional[Sink]:
        """Open the configured :class:`Sink`, or ``None`` to collect.

        ``recover`` matters only for exactly-once sinks: it preserves the
        existing file until checkpoint recovery truncates it back to the
        committed offset (a fresh start truncates immediately).
        """
        if self.exactly_once:
            return TransactionalSink(self.spec, recover=recover)
        return open_sink(self.spec)


@dataclass(frozen=True)
class QueryConfig:
    """One query of the job: text plus its per-query execution settings."""

    text: str
    name: Optional[str] = None
    granularity: Optional[str] = None
    emit_empty_groups: Optional[bool] = None

    def __post_init__(self) -> None:
        if not isinstance(self.text, str) or not self.text.strip():
            raise ConfigError(
                "a query needs non-empty text (the textual query language)"
            )
        _require_optional_string(self.name, "a query's name")
        if self.emit_empty_groups is not None:
            _require_bool(self.emit_empty_groups, "a query's emit_empty_groups")
        if self.granularity is not None and self.granularity not in GRANULARITIES:
            close = difflib.get_close_matches(str(self.granularity), GRANULARITIES, n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            raise ConfigError(
                f"unknown granularity {self.granularity!r}{hint}; valid "
                f"granularities: {', '.join(GRANULARITIES)}"
            )


@dataclass(frozen=True)
class JobConfig:
    """The complete declarative description of one streaming job.

    Composes the component specs above; an instance is immutable,
    hashable, comparable and serializable: ``JobConfig.from_dict(c.to_dict())
    == c`` holds for every valid config (property-tested), and
    :meth:`load` reads the same dictionary shape from JSON or TOML files.
    Use :func:`dataclasses.replace` to derive variants.
    """

    queries: Tuple[QueryConfig, ...] = ()
    watermark: WatermarkConfig = field(default_factory=WatermarkConfig)
    late: LatenessConfig = field(default_factory=LatenessConfig)
    shards: ShardConfig = field(default_factory=ShardConfig)
    batch: BatchConfig = field(default_factory=BatchConfig)
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    source: SourceConfig = field(default_factory=SourceConfig)
    sink: SinkConfig = field(default_factory=SinkConfig)
    backpressure: BackpressureConfig = field(default_factory=BackpressureConfig)
    observability: ObsConfig = field(default_factory=ObsConfig)
    replan: ReplanConfig = field(default_factory=ReplanConfig)
    emit_empty_groups: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.queries, tuple):
            # allow lists at construction; normalise for hashability/equality
            object.__setattr__(self, "queries", tuple(self.queries))
        for query in self.queries:
            if not isinstance(query, QueryConfig):
                raise ConfigError(f"queries must be QueryConfig entries, got {query!r}")
        _require_bool(self.emit_empty_groups, "emit_empty_groups")
        if isinstance(self.replan, dict):
            context = "the 'replan' section"
            section = _require_mapping(self.replan, context)
            _check_unknown_keys(ReplanConfig, section, context)
            object.__setattr__(self, "replan", ReplanConfig(**section))
        elif not isinstance(self.replan, ReplanConfig):
            raise ConfigError(
                f"replan must be a ReplanConfig or an object of settings "
                f"(e.g. {{'enabled': true}}), got {self.replan!r}"
            )

    # -- serialization ---------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobConfig":
        """Build a config from the dictionary shape :meth:`to_dict` writes.

        Unknown keys -- at any nesting level -- are rejected with a
        :class:`~repro.errors.ConfigError` naming the closest valid key,
        so a typo'd setting fails loudly instead of being ignored.
        """
        data = _require_mapping(data, "the job config")
        _check_unknown_keys(cls, data, "the job config")
        kwargs: Dict[str, object] = {}
        sections = {
            "watermark": WatermarkConfig,
            "late": LatenessConfig,
            "shards": ShardConfig,
            "batch": BatchConfig,
            "checkpoint": CheckpointConfig,
            "source": SourceConfig,
            "sink": SinkConfig,
            "backpressure": BackpressureConfig,
            "observability": ObsConfig,
            "replan": ReplanConfig,
        }
        for key, value in data.items():
            if key == "queries":
                if not isinstance(value, (list, tuple)):
                    raise ConfigError(
                        f"queries must be a list of query objects, got {value!r}"
                    )
                queries = []
                for index, entry in enumerate(value):
                    entry = _require_mapping(entry, f"queries[{index}]")
                    _check_unknown_keys(QueryConfig, entry, f"queries[{index}]")
                    queries.append(QueryConfig(**entry))
                kwargs[key] = tuple(queries)
            elif key in sections:
                section_cls = sections[key]
                section = _require_mapping(value, f"the {key!r} section")
                _check_unknown_keys(section_cls, section, f"the {key!r} section")
                kwargs[key] = section_cls(**section)
            else:
                kwargs[key] = value
        return cls(**kwargs)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dictionary form; the inverse of :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "JobConfig":
        """Load a config from a JSON (default) or TOML (``.toml``) file."""
        return cls.from_dict(read_config_file(path))

    # -- resolution ------------------------------------------------------------

    def resolved_names(self) -> Tuple[str, ...]:
        """The emission names of the queries: explicit or ``q1``, ``q2``...."""
        return tuple(
            query.name or f"q{index}"
            for index, query in enumerate(self.queries, start=1)
        )

    def validate(self) -> "JobConfig":
        """Cross-field validation beyond what each component checks locally.

        Raises :class:`~repro.errors.ConfigError` for conflicts, and warns
        (``RuntimeWarning``) when a multi-worker topology cannot actually
        shard the registered queries.  Returns ``self`` for chaining.
        """
        if not self.queries:
            raise ConfigError(
                "a job needs at least one query (the queries list is empty)"
            )
        names = self.resolved_names()
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise ConfigError(
                f"duplicate query names {duplicates}; every query emits under "
                "a unique name (explicit or positional q1, q2, ...)"
            )
        side_channel = self.late.policy == LatePolicy.SIDE_CHANNEL.value
        if side_channel and not (self.late.side_channel_path or self.late.reprocess):
            raise ConfigError(
                "the 'side-channel' policy requires side_channel_path (where "
                "the late events are persisted) or reprocess=true (replay "
                "them at end of job); otherwise late events pile up "
                "unobserved -- use the 'drop' policy instead"
            )
        if self.shards.workers > 1:
            self._warn_unshardable()
        return self

    def _warn_unshardable(self) -> None:
        """Warn when workers>1 will fall back to a single shard."""
        infos = {
            name: _query_plan_info(query.text, query.granularity)
            for name, query in zip(self.resolved_names(), self.queries)
        }
        signatures = {name: info[0] for name, info in infos.items()}
        count_windowed = sorted(name for name, info in infos.items() if info[2])
        if count_windowed:
            warnings.warn(
                f"workers={self.shards.workers} but queries {count_windowed} "
                "use count-based windows, whose event ordinals are global to "
                "the stream; the job will run a single shard",
                RuntimeWarning,
                stacklevel=3,
            )
            return
        unpartitioned = sorted(name for name, sig in signatures.items() if not sig)
        if unpartitioned:
            warnings.warn(
                f"workers={self.shards.workers} but queries {unpartitioned} "
                "have no partition attributes (no GROUP-BY or equivalence "
                "predicate); the job will run a single shard",
                RuntimeWarning,
                stacklevel=3,
            )
        elif len(set(signatures.values())) > 1:
            warnings.warn(
                f"workers={self.shards.workers} but the queries partition on "
                f"different attributes {sorted(set(signatures.values()))}; "
                "the job will run a single shard",
                RuntimeWarning,
                stacklevel=3,
            )

    def granularity_plan(self) -> Dict[str, str]:
        """Per-query granularity the static analyzer resolves (dry runs)."""
        return {
            name: _query_plan_info(query.text, query.granularity)[1]
            for name, query in zip(self.resolved_names(), self.queries)
        }

    # -- building --------------------------------------------------------------

    def build_runtime(
        self,
        watermark_strategy: Optional[WatermarkStrategy] = None,
        register: bool = True,
        observability=None,
    ):
        """Resolve the runtime this spec describes.

        Returns a :class:`~repro.streaming.sharded.ShardedRuntime` when
        ``shards.workers > 1``, a :class:`~repro.streaming.runtime.
        StreamingRuntime` otherwise, with the queries registered under
        their resolved names (``register=False`` skips registration --
        :meth:`CograEngine.stream` registers its own engine instead).
        ``watermark_strategy`` and ``observability`` override the
        declarative specs with explicit strategy/bundle objects (they
        cannot be serialized, so they never live *in* the config).
        """
        strategy = watermark_strategy or self.watermark.build()
        if observability is None:
            observability = self.observability.build_observability()
        if self.shards.workers > 1:
            from repro.streaming.sharded import ShardedRuntime

            runtime = ShardedRuntime(
                workers=self.shards.workers,
                watermark_strategy=strategy,
                late_policy=self.late.policy,
                emit_empty_groups=self.emit_empty_groups,
                ship_interval=self.shards.ship_interval,
                max_batch=self.shards.max_batch,
                max_restarts=self.shards.max_restarts,
                start_method=self.shards.start_method,
                rebalance=self.shards.rebalance,
                max_inflight=self.backpressure.max_inflight,
                observability=observability,
                ship_serialized=self.batch.ship_serialized,
                replan=self.replan,
            )
        else:
            from repro.streaming.runtime import StreamingRuntime

            runtime = StreamingRuntime(
                watermark_strategy=strategy,
                late_policy=self.late.policy,
                emit_empty_groups=self.emit_empty_groups,
                observability=observability,
                replan=self.replan,
            )
        if register:
            for name, query in zip(self.resolved_names(), self.queries):
                runtime.register(
                    query.text,
                    name=name,
                    granularity=query.granularity,
                    emit_empty_groups=query.emit_empty_groups,
                )
        return runtime

    def build(self) -> "BuiltJob":
        """Resolve the whole spec: runtime + opened source, sink and store.

        The caller owns the returned resources (the :class:`Job` facade
        wraps them with the full lifecycle, including recovery and
        teardown; use it unless you are driving the loop by hand).
        """
        self.validate()
        runtime = self.build_runtime()
        source = self.source.build()
        try:
            sink = self.sink.build(recover=self.checkpoint.recover)
            store = self.checkpoint.build_store()
        except Exception:
            source.close()
            runtime.close()
            raise
        return BuiltJob(runtime=runtime, source=source, sink=sink, store=store)


@dataclass(frozen=True)
class TenantConfig:
    """Admission-control quotas for one tenant of the job server.

    Every limit is optional (``None`` means unlimited):

    * ``max_events_per_second`` throttles the tenant's jobs at the source
      driver via one token bucket *shared by all the tenant's jobs* (N
      concurrent jobs split the rate, they do not each get it) -- the
      scheduler feeds a job only the events the bucket can pay for, so a
      tenant over its rate is slowed, never failed;
    * ``burst`` is the bucket capacity (defaults to one second's worth of
      tokens), bounding how far a briefly-idle tenant can catch up;
    * ``max_state_bytes`` caps the serialized aggregator state of each
      job, enforced at checkpoint time
      (:class:`~repro.errors.StateQuotaError` fails the job);
    * ``max_concurrent_jobs`` bounds the tenant's live (pending or
      running) jobs; one more submit is rejected with
      :class:`~repro.errors.ConcurrencyQuotaError`.
    """

    name: str
    max_events_per_second: Optional[float] = None
    burst: Optional[float] = None
    max_state_bytes: Optional[int] = None
    max_concurrent_jobs: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigError("a tenant needs a non-empty name")
        for attribute in ("max_events_per_second", "burst"):
            value = getattr(self, attribute)
            if value is not None and (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or not value > 0
            ):
                raise ConfigError(
                    f"tenant {self.name!r} {attribute} must be null or a "
                    f"positive number, got {value!r}"
                )
        for attribute in ("max_state_bytes", "max_concurrent_jobs"):
            value = getattr(self, attribute)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool) or value < 1
            ):
                raise ConfigError(
                    f"tenant {self.name!r} {attribute} must be null or a "
                    f"positive integer, got {value!r}"
                )
        if self.burst is not None and self.max_events_per_second is None:
            raise ConfigError(
                f"tenant {self.name!r} sets burst without "
                f"max_events_per_second; burst is the rate limiter's bucket "
                f"capacity"
            )


@dataclass(frozen=True)
class ServerConfig:
    """The multi-tenant job server: endpoint, working directory, tenants.

    ``host``/``port`` are the local socket the newline-delimited JSON
    protocol listens on (``port=0`` binds an ephemeral port -- read the
    bound address from the running server); ``dir`` is the server's
    working directory, under which every job gets its own checkpoint
    directory (``<dir>/checkpoints/<job_id>``; ``None`` uses a fresh
    temporary directory).  ``tenants`` declares the known tenants and
    their quotas -- an empty tuple accepts any tenant name, unlimited.
    ``queue_slices`` bounds each job's prefetch queue between its source
    feeder and the scheduler (per-job backpressure);
    ``poll_interval_seconds`` paces the scheduler when no job has work.
    """

    host: str = "127.0.0.1"
    port: int = 0
    dir: Optional[str] = None
    tenants: Tuple[TenantConfig, ...] = ()
    queue_slices: int = 4
    poll_interval_seconds: float = 0.005

    def __post_init__(self) -> None:
        if not isinstance(self.host, str) or not self.host:
            raise ConfigError(f"server host must be a non-empty string, got {self.host!r}")
        if (
            not isinstance(self.port, int)
            or isinstance(self.port, bool)
            or not 0 <= self.port <= 65535
        ):
            raise ConfigError(
                f"server port must be a port number (0 binds an ephemeral "
                f"one), got {self.port!r}"
            )
        _require_optional_string(self.dir, "server dir")
        if not isinstance(self.tenants, tuple):
            object.__setattr__(self, "tenants", tuple(self.tenants))
        coerced = []
        for entry in self.tenants:
            if isinstance(entry, dict):
                context = "a 'tenants' entry"
                section = _require_mapping(entry, context)
                _check_unknown_keys(TenantConfig, section, context)
                entry = TenantConfig(**section)
            elif not isinstance(entry, TenantConfig):
                raise ConfigError(
                    f"tenants must be TenantConfig entries or objects of "
                    f"settings, got {entry!r}"
                )
            coerced.append(entry)
        object.__setattr__(self, "tenants", tuple(coerced))
        names = [tenant.name for tenant in self.tenants]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise ConfigError(f"duplicate tenant names {duplicates}")
        if (
            not isinstance(self.queue_slices, int)
            or isinstance(self.queue_slices, bool)
            or self.queue_slices < 1
        ):
            raise ConfigError(
                f"queue_slices must be a positive integer, got {self.queue_slices!r}"
            )
        if (
            not isinstance(self.poll_interval_seconds, (int, float))
            or isinstance(self.poll_interval_seconds, bool)
            or not self.poll_interval_seconds > 0
        ):
            raise ConfigError(
                f"poll_interval_seconds must be a positive number, "
                f"got {self.poll_interval_seconds!r}"
            )

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ServerConfig":
        """Build a server config from its dictionary form (JSON/TOML)."""
        data = _require_mapping(data, "the server config")
        _check_unknown_keys(cls, data, "the server config")
        return cls(**data)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dictionary form; the inverse of :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ServerConfig":
        """Load a server config from a JSON (default) or TOML file."""
        return cls.from_dict(read_config_file(path))

    def tenant(self, name: str) -> TenantConfig:
        """The named tenant's quotas.

        With no tenants declared, any name is admitted unlimited; with a
        tenant list, unknown names are rejected
        (:class:`~repro.errors.ConfigError`) -- declaring tenants IS the
        admission list.
        """
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        if not self.tenants:
            return TenantConfig(name=name)
        known = ", ".join(sorted(tenant.name for tenant in self.tenants))
        raise ConfigError(
            f"unknown tenant {name!r}; this server admits only: {known}"
        )


def read_config_file(path: Union[str, Path]) -> Dict[str, object]:
    """Read a job-config file into its raw dictionary form.

    JSON by default, TOML for ``.toml`` suffixes (requires Python 3.11+,
    whose standard library bundles ``tomllib``).  The CLI merges this raw
    form with flag overrides before :meth:`JobConfig.from_dict` validates
    the result; library users normally call :meth:`JobConfig.load`.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(f"cannot read job config {path}: {exc}") from exc
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError:  # pragma: no cover - py<3.11 only
            raise ConfigError(
                f"loading TOML job configs requires Python 3.11+ "
                f"(tomllib); convert {path.name} to JSON or upgrade"
            ) from None
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ConfigError(f"invalid TOML in {path}: {exc}") from exc
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid JSON in {path}: {exc}") from exc
    return _require_mapping(data, f"the job config in {path}")


def merge_config_layers(*layers: Dict[str, object]) -> Dict[str, object]:
    """Deep-merge raw config dictionaries, later layers winning key by key.

    The CLI's override semantics: defaults < ``--config`` file < explicit
    flags.  Nested dictionaries merge recursively; anything else (lists
    included -- a flag-provided query list replaces the file's) is
    replaced wholesale.
    """
    merged: Dict[str, object] = {}
    for layer in layers:
        for key, value in layer.items():
            if isinstance(value, dict) and isinstance(merged.get(key), dict):
                merged[key] = merge_config_layers(merged[key], value)
            else:
                merged[key] = value
    return merged


@dataclass
class BuiltJob:
    """What :meth:`JobConfig.build` resolves: the runtime and its endpoints."""

    runtime: object
    source: EventSource
    sink: Optional[Sink]
    store: Optional[CheckpointStore]


# ---------------------------------------------------------------------------
# checkpoint recovery shared by the Job facade and the CLI
# ---------------------------------------------------------------------------


@dataclass
class ResumeInfo:
    """Outcome of resuming a job from its checkpoint store.

    ``source`` is the effective source to drive (wrapped in a
    :class:`~repro.streaming.sources.SkippingSource` when the original
    replays an already-ingested prefix), ``notes`` the human-readable
    progress lines the CLI prints to stderr.
    """

    source: EventSource
    notes: List[str]
    checkpoint_id: Optional[int] = None
    skipped: int = 0


def resume_job(
    runtime,
    store: CheckpointStore,
    source: EventSource,
    sink: Optional[Sink] = None,
) -> ResumeInfo:
    """Restore ``runtime`` from the newest checkpoint in ``store``.

    Starts fresh (with a note) when the store is empty.  The source
    resumes where the checkpoint left off, preferring exactness and
    efficiency in this order:

    * an offset-aware source (:class:`PartitionedLogSource`) seeks to the
      checkpointed per-partition offsets -- the committed prefix is never
      re-read;
    * a replayable source -- static or tailed files, which re-deliver the
      stream from the beginning on a restart -- is wrapped in a
      :class:`SkippingSource` so the already-ingested prefix is skipped;
    * live sources (sockets, stdin pipes) deliver fresh data and are left
      alone, with a warning note that the producer must resume where the
      checkpoint left off.

    A ``sink`` exposing ``restore()`` (the
    :class:`~repro.streaming.sources.TransactionalSink`) is rolled back to
    the delivered offset stored in the same checkpoint -- or to empty when
    no checkpoint exists -- so the replayed suffix is delivered exactly
    once.
    """
    state = store.load_latest()
    if state is None:
        if sink is not None and hasattr(sink, "restore"):
            # a fresh start replays everything; whatever an earlier crashed
            # run left in the file would be delivered twice
            sink.restore(None)
        return ResumeInfo(
            source=source,
            notes=[f"no checkpoint in {store.directory}; starting fresh"],
        )
    runtime.restore(state)
    ingested = int(state["metrics"].get("events_ingested", 0))
    # punctuation events consumed source lines too without counting as
    # ingested data events; the skip must cover every line the
    # checkpointed run read
    consumed = ingested + int(state["metrics"].get("punctuations_seen", 0))
    checkpoint_id = store.latest_id()
    notes = [f"resumed from checkpoint {checkpoint_id} ({ingested} events in)"]
    skipped = 0
    offsets = state.get("source_offsets")
    if offsets is not None and hasattr(source, "seek"):
        source.seek(offsets)
        skipped = sum(int(offset) for offset in offsets.values())
        notes.append(
            f"seeking the partitioned log to its committed offsets "
            f"({skipped} records already consumed)"
        )
    elif getattr(source, "replayable", False):
        source = SkippingSource(source, consumed)
        skipped = consumed
        notes.append(
            f"skipping the {consumed} already-ingested events of the "
            "replayed input"
        )
    elif consumed:
        notes.append(
            "warning: this source type does not replay from the start; "
            "events are NOT skipped -- ensure the producer resumes where "
            "the checkpoint left off"
        )
    if sink is not None and hasattr(sink, "restore"):
        sink_state = state.get("sink")
        if sink_state is not None:
            sink.restore(sink_state)
            notes.append(
                f"sink rolled back to the committed offset "
                f"({sink_state.get('records', '?')} records, "
                f"{sink_state.get('bytes', '?')} bytes)"
            )
        else:
            notes.append(
                "warning: the checkpoint carries no sink state (was it "
                "written without exactly_once?); the sink file is left "
                "as-is and delivery is at-least-once for this resume"
            )
    return ResumeInfo(
        source=source, notes=notes, checkpoint_id=checkpoint_id, skipped=skipped
    )


# ---------------------------------------------------------------------------
# the Job facade
# ---------------------------------------------------------------------------


class Job:
    """Lifecycle facade over one :class:`JobConfig`: the public job API.

    ``start()`` builds the runtime, opens source/sink/store and performs
    checkpoint recovery; ``results()`` drives the pipeline to completion
    and returns the emitted records (also pushed into the configured
    sink); ``metrics`` exposes the runtime's counters; ``checkpoint()``
    snapshots mid-stream state (persisted when a store is configured);
    ``stop()`` tears everything down (idempotent, also called
    automatically when ``results()`` completes).

    ``stop()`` and ``results()`` are safe to call from a second thread:
    ``stop()`` during a live ``results()`` run cancels it -- the source
    is closed to unblock the driving thread, which performs the actual
    teardown and returns the records emitted so far (the job server's
    ``cancel`` rides on this) -- and concurrent ``results()`` calls
    serialize, the late ones returning the first one's collected list.

    ``events`` overrides the configured source with an in-memory iterable
    or :class:`EventSource` (tests, embedded use); ``sink`` overrides the
    configured sink with a :class:`Sink` instance.

    Example
    -------
    ::

        records = job(config, events=feed).results()

        with job("job.json").start() as running:
            snapshot = running.checkpoint()
    """

    def __init__(
        self,
        config: Union[JobConfig, Dict[str, object], str, Path],
        events: Optional[Union[EventSource, Iterable[Event]]] = None,
        sink: Optional[Sink] = None,
    ):
        if isinstance(config, (str, Path)):
            config = JobConfig.load(config)
        elif isinstance(config, dict):
            config = JobConfig.from_dict(config)
        elif not isinstance(config, JobConfig):
            raise ConfigError(
                f"job() takes a JobConfig, a config dict or a config file "
                f"path, got {type(config).__name__}"
            )
        config.validate()
        self.config = config
        self._events = events
        self._sink_override = sink
        self._runtime = None
        self._source: Optional[EventSource] = None
        self._sink: Optional[Sink] = None
        self._store: Optional[CheckpointStore] = None
        self._late_sink = None
        self._exporter = None
        self._prometheus = None
        self._records: Optional[List[EmissionRecord]] = None
        self._started = False
        self._stopped = False
        #: protects the lifecycle flags; re-entrant so stop() may run
        #: inside the driving thread's finally while it holds the lock
        self._lock = threading.RLock()
        #: serializes concurrent results() callers (the drive runs once)
        self._results_lock = threading.Lock()
        self._stop_requested = threading.Event()
        #: True while a results() drive is live; a concurrent stop() then
        #: only cancels (closes the source) and leaves the teardown to
        #: the driving thread
        self._driving = False
        #: human-readable recovery notes, populated by :meth:`start`
        self.resume_notes: List[str] = []

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "Job":
        """Build the pipeline and perform checkpoint recovery; returns self."""
        with self._lock:
            if self._started:
                raise RuntimeError("this job was already started")
            if self._stopped:
                raise RuntimeError("this job was stopped; build a new one")
            self._started = True
            try:
                self._runtime = self.config.build_runtime()
                if self._events is not None:
                    self._source = as_source(self._events)
                else:
                    self._source = self.config.source.build()
                if self._sink_override is not None:
                    self._sink = self._sink_override
                else:
                    self._sink = self.config.sink.build(
                        recover=self.config.checkpoint.recover
                    )
                self._store = self.config.checkpoint.build_store(
                    registry=self._runtime.observability.registry
                )
                if self._store is not None and self.config.checkpoint.recover:
                    info = resume_job(
                        self._runtime, self._store, self._source, sink=self._sink
                    )
                    self._source = info.source
                    self.resume_notes = info.notes
                self._exporter = self.config.observability.build_exporter()
                if self.config.observability.prometheus_port is not None:
                    from repro.streaming.observability import PrometheusTextServer

                    self._prometheus = PrometheusTextServer(
                        lambda: self._exporter.latest,
                        port=self.config.observability.prometheus_port,
                    ).start()
                if self.config.late.side_channel_path:
                    # truncate: the file holds THIS run's late events
                    self._late_sink = open(
                        self.config.late.side_channel_path, "w", encoding="utf-8"
                    )
            except Exception:
                self.stop()
                raise
        return self

    def results(self) -> List[EmissionRecord]:
        """Run the job to completion; return every emitted record.

        Starts the job if :meth:`start` was not called yet.  Records are
        also pushed into the configured sink as they are produced, and --
        with ``late.reprocess`` -- the side-channelled late events are
        replayed at the end into ``is_correction=True`` records.  The job
        is stopped when the stream completes; the collected records stay
        available from repeated calls.

        A concurrent :meth:`stop` cancels the run between source slices:
        the records emitted so far are returned (and cached, so later
        calls see the same partial list).  Concurrent ``results()``
        callers serialize; only one drives the pipeline.
        """
        with self._results_lock:
            if self._records is not None:
                return self._records
            with self._lock:
                if not self._started:
                    self.start()
                if self._stopped:
                    raise RuntimeError(
                        "this job was stopped (or failed) before completing; "
                        "build a new one"
                    )
                self._driving = True
            try:
                records = self._drive_records()
            finally:
                # cache only on success or cancellation: a failed run must
                # keep raising (the stopped-job guard above), never serve
                # the partial list as if the job had completed
                with self._lock:
                    self._driving = False
                self.stop()
            self._records = records
            return records

    def _drive_records(self) -> List[EmissionRecord]:
        """Drive the pipeline slice by slice, honouring a concurrent stop."""
        from repro.streaming.runtime import DriveSession

        on_late = self._persist_late if self._late_sink is not None else None
        interval = self.config.checkpoint.interval
        records: List[EmissionRecord] = []
        sink = self._sink
        session = DriveSession(
            self._runtime,
            self._source,
            checkpoint_store=self._store if interval else None,
            checkpoint_interval=interval,
            on_late=on_late,
            metrics_exporter=self._exporter,
            sink=sink,
            backpressure=self.config.backpressure,
            decode_batch_size=self.config.batch.decode_batch_size,
        )
        cancelled = False
        try:
            try:
                for batch in session.batches():
                    if self._stop_requested.is_set():
                        cancelled = True
                        break
                    for record in session.step(batch):
                        records.append(record)
                        if sink is not None:
                            sink.emit(record)
            except Exception:
                if not self._stop_requested.is_set():
                    raise
                # a concurrent stop() closed the source under the reading
                # thread; whatever the read raised is the cancellation
                cancelled = True
            if cancelled or self._stop_requested.is_set():
                return records
            for record in session.finish():
                records.append(record)
                if sink is not None:
                    sink.emit(record)
            if self.config.late.reprocess:
                for record in self._runtime.reprocess_late():
                    records.append(record)
                    if sink is not None:
                        sink.emit(record)
        finally:
            session.close()
        return records

    def stop(self) -> None:
        """Release every resource the job holds (idempotent, thread-safe).

        Called while another thread is inside :meth:`results`, it cancels
        the run instead: the source is closed (unblocking a live read)
        and the driving thread -- which notices between slices -- does
        the actual teardown and returns the records emitted so far.
        """
        with self._lock:
            self._stop_requested.set()
            if self._driving:
                if self._source is not None:
                    self._source.close()
                return
            if self._stopped:
                return
            self._stopped = True
            if self._source is not None:
                self._source.close()
            if self._late_sink is not None:
                self._late_sink.close()
            if self._prometheus is not None:
                self._prometheus.close()
            if self._runtime is not None:
                self._runtime.close()
            if self._exporter is not None:
                self._exporter.close()
            if self._sink is not None and self._sink_override is None:
                # sinks passed in from outside outlive the job; owned ones
                # don't
                self._sink.close()
            if self._store is not None:
                self._store.close()

    def __enter__(self) -> "Job":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- introspection and control --------------------------------------------

    @property
    def metrics(self):
        """The runtime's :class:`StreamingMetrics` (requires a started job)."""
        if self._runtime is None:
            raise RuntimeError("the job is not started; call start() first")
        return self._runtime.metrics

    @property
    def runtime(self):
        """The underlying runtime (requires a started job)."""
        if self._runtime is None:
            raise RuntimeError("the job is not started; call start() first")
        return self._runtime

    @property
    def prometheus_address(self) -> Optional[tuple]:
        """``(host, port)`` of the live Prometheus endpoint, or ``None``."""
        return None if self._prometheus is None else self._prometheus.address

    def checkpoint(self) -> Dict[str, object]:
        """Snapshot the runtime state; persist it when a store is open."""
        if self._runtime is None:
            raise RuntimeError("the job is not started; call start() first")
        snapshot = self._runtime.checkpoint()
        if self._store is not None:
            self._store.save(snapshot)
        return snapshot

    def _persist_late(self, late_events: List[Event]) -> None:
        """Persist side-channelled late events so they never pile up."""
        write_jsonl_events(late_events, self._late_sink)
        self._late_sink.flush()

    def __repr__(self) -> str:
        state = (
            "stopped"
            if self._stopped
            else "started"
            if self._started
            else "unstarted"
        )
        return f"Job({len(self.config.queries)} queries, {state})"


def job(
    config: Union[JobConfig, Dict[str, object], str, Path],
    events: Optional[Union[EventSource, Iterable[Event]]] = None,
    sink: Optional[Sink] = None,
) -> Job:
    """Create a :class:`Job` from a config, config dict or config file path.

    The documented entry point of the declarative API::

        records = repro.job("job.json").results()
        records = repro.job(config, events=feed).results()
    """
    return Job(config, events=events, sink=sink)
