"""JSON-lines event ingestion and result emission (CLI wire format).

The ``cogra stream`` subcommand reads one JSON object per line, e.g.::

    {"type": "Stock", "time": 3.0, "company": "IBM", "price": 101.5}
    {"type": "Watermark", "time": 10.0}

and writes one JSON object per emitted result.  The format is deliberately
forgiving about where attributes live: they may be nested under an
``"attributes"`` key or given as extra top-level keys, and ``"event_type"``
is accepted as an alias of ``"type"``.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, Iterator, List, Optional, TextIO, Union

from repro.errors import InvalidEventError
from repro.events.event import Event
from repro.streaming.emission import EmissionRecord

#: top-level keys that describe the event itself rather than its attributes
_RESERVED_KEYS = frozenset({"type", "event_type", "time", "sequence", "attributes"})


def event_from_json(obj: Dict[str, object], default_sequence: int = 0) -> Event:
    """Build an event from one decoded JSON object.

    ``default_sequence`` is used when the object carries no ``"sequence"``
    field; :func:`read_jsonl_events` passes the arrival index so that
    equal-timestamp events keep a strict total order (the same order
    :func:`~repro.events.stream.sort_events` would assign), which the
    executors' adjacency checks rely on.
    """
    event_type = obj.get("type", obj.get("event_type"))
    if not isinstance(event_type, str):
        raise InvalidEventError(
            f"JSONL event needs a string 'type' (or 'event_type') field, got {obj!r}"
        )
    if "time" not in obj:
        raise InvalidEventError(f"JSONL event needs a 'time' field, got {obj!r}")
    nested = obj.get("attributes")
    if nested is None:
        nested = {}
    elif not isinstance(nested, dict):
        # checked before the falsy fallback so an empty array/string fails
        # as loudly as a non-empty one would
        raise InvalidEventError(
            f"JSONL event 'attributes' must be an object, got {nested!r}"
        )
    attributes = dict(nested)
    for key, value in obj.items():
        if key not in _RESERVED_KEYS:
            attributes[key] = value
    raw_sequence = obj.get("sequence")
    try:
        time = float(obj["time"])
        sequence = default_sequence if raw_sequence is None else int(raw_sequence)
    except (TypeError, ValueError) as exc:
        raise InvalidEventError(
            f"JSONL event has a non-numeric 'time' or 'sequence': {obj!r}"
        ) from exc
    if not math.isfinite(time) or time < 0:
        # a NaN timestamp would sit at the reorder-buffer heap head and
        # block every later event forever; reject it loudly instead
        raise InvalidEventError(
            f"JSONL event 'time' must be a finite non-negative number: {obj!r}"
        )
    return Event(event_type, time, attributes, sequence=sequence)


def event_to_json(event: Event) -> Dict[str, object]:
    """The JSON object representation of ``event``.

    The ``sequence`` is always written (even when 0) so that reading the
    line back reproduces the event exactly instead of assigning a fresh
    arrival index.
    """
    obj: Dict[str, object] = {
        "type": event.event_type,
        "time": event.time,
        "sequence": event.sequence,
    }
    if event.attributes:
        obj["attributes"] = dict(event.attributes)
    return obj


def parse_jsonl_line(
    line: str, default_sequence: int = 0, line_number: Optional[int] = None
) -> Optional[Event]:
    """Parse one JSONL line into an event; ``None`` for blanks and comments.

    The single place the line-level wire rules live -- blank/``#`` skipping,
    JSON decoding, arrival-index sequencing -- shared by
    :func:`read_jsonl_events` (static files) and
    :class:`~repro.streaming.sources.JsonlFileTailSource` (growing files),
    so the two paths cannot drift apart.
    """
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        where = "line" if line_number is None else f"line {line_number}"
        raise InvalidEventError(f"{where} is not valid JSON: {exc}") from exc
    return event_from_json(obj, default_sequence=default_sequence)


def read_jsonl_events(lines: Union[TextIO, Iterable[str]]) -> Iterator[Event]:
    """Yield events from an iterable of JSONL lines (blank lines skipped).

    Events without an explicit ``"sequence"`` field receive their arrival
    index, so equal timestamps stay strictly ordered exactly as
    :func:`~repro.events.stream.sort_events` would order them.
    """
    index = 0
    for line_number, line in enumerate(lines, start=1):
        event = parse_jsonl_line(line, default_sequence=index, line_number=line_number)
        if event is None:
            continue
        yield event
        index += 1


def _event_from_json_fast(obj: Dict[str, object], default_sequence: int):
    """Decode the common wire shape without the full validation ladder.

    Handles the overwhelmingly typical line -- string ``"type"``, numeric
    ``"time"``, flat top-level attributes, integer or absent ``"sequence"``
    -- through :meth:`Event.from_wire`.  Anything unusual (aliased
    ``"event_type"``, nested ``"attributes"``, stringly-typed numbers,
    malformed fields) returns ``None`` so the caller falls back to
    :func:`event_from_json`, which either accepts it or raises the exact
    error the per-line path would.
    """
    event_type = obj.get("type")
    if type(event_type) is not str:
        return None
    time = obj.get("time")
    if type(time) is not float:
        if type(time) is int:
            time = float(time)
        else:
            return None
    if not (0.0 <= time < math.inf):  # rejects NaN, inf and negatives
        return None
    if "attributes" in obj or "event_type" in obj:
        return None
    raw_sequence = obj.get("sequence")
    if raw_sequence is None:
        sequence = default_sequence
    elif type(raw_sequence) is int:
        sequence = raw_sequence
    else:
        return None
    attributes = {
        key: value for key, value in obj.items() if key not in _RESERVED_KEYS
    }
    return Event.from_wire(event_type, time, attributes, sequence)


def read_jsonl_event_batches(
    lines: Union[TextIO, Iterable[str]], batch_size: int
) -> Iterator[List[Event]]:
    """Yield events in lists of up to ``batch_size``; ≡ :func:`read_jsonl_events`.

    The stream of events -- order, sequence assignment (only real events
    consume arrival indexes), blank/comment skipping, and error messages --
    is identical to the per-event reader; only the delivery granularity
    changes.  One ``json.loads`` loop plus the :func:`_event_from_json_fast`
    constructor path keeps per-line Python overhead to a minimum.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size!r}")
    loads = json.loads
    fast = _event_from_json_fast
    index = 0
    batch: List[Event] = []
    append = batch.append
    for line_number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            obj = loads(stripped)
        except json.JSONDecodeError as exc:
            raise InvalidEventError(
                f"line {line_number} is not valid JSON: {exc}"
            ) from exc
        event = fast(obj, index) if type(obj) is dict else None
        if event is None:
            event = event_from_json(obj, default_sequence=index)
        append(event)
        index += 1
        if len(batch) >= batch_size:
            yield batch
            batch = []
            append = batch.append
    if batch:
        yield batch


def write_jsonl_events(events: Iterable[Event], handle: TextIO) -> int:
    """Write events as JSONL; return the number of lines written."""
    written = 0
    for event in events:
        handle.write(json.dumps(event_to_json(event), sort_keys=True) + "\n")
        written += 1
    return written


def record_to_json_line(record: EmissionRecord) -> str:
    """One emitted result as a compact JSON line."""
    return json.dumps(record.as_dict(), sort_keys=True, default=str)
