"""Query language extensions sketched in Section 8 of the paper.

* :mod:`repro.extensions.rewrites` -- Kleene star and optional sub-patterns
  are syntactic sugar (``SEQ(Pi*, Pj) = SEQ(Pi+, Pj) | Pj`` and
  ``SEQ(Pi?, Pj) = SEQ(Pi, Pj) | Pj``); the rewriter turns them into the
  plus/sequence/disjunction core the aggregators already support.
* Disjunction needs no rewriting: the pattern automaton folds the
  alternatives into one predecessor-type relation and every granularity
  aggregates it natively (covered by the test suite).
* Repeated event types are supported by binding events to pattern
  *variables* rather than types (Section 8, "multiple event type
  occurrences"); see :class:`repro.analyzer.automaton.PatternAutomaton`.
* :mod:`repro.extensions.negation` -- negated event type atoms between two
  positive parts of a sequence, maintained with the per-granularity
  invalidation rules of Section 8.
"""

from repro.extensions.negation import (
    NegatedComponent,
    NegationAnalysis,
    analyze_negations,
    create_negation_aggregator,
    plan_negated_query,
    trend_respects_negations,
)
from repro.extensions.rewrites import desugar_pattern, expand_min_trend_length

__all__ = [
    "NegatedComponent",
    "NegationAnalysis",
    "analyze_negations",
    "create_negation_aggregator",
    "desugar_pattern",
    "expand_min_trend_length",
    "plan_negated_query",
    "trend_respects_negations",
]
