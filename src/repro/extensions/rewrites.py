"""Pattern rewritings for the syntactic-sugar operators (Section 8).

The paper observes that Kleene star and optional sub-patterns do not add
expressive power::

    SEQ(Pi*, Pj) = SEQ(Pi+, Pj) | Pj
    SEQ(Pi?, Pj) = SEQ(Pi, Pj)  | Pj

:func:`desugar_pattern` applies these equalities bottom-up, producing an
equivalent pattern built only from atoms, SEQ, Kleene plus and disjunction
-- the fragment every COGRA aggregator handles natively.  Because a
rewritten pattern may mention the same variable in several alternatives of
a disjunction, alternatives are kept as separate queries by
:func:`split_disjunction` when an engine prefers to evaluate them
independently.

:func:`expand_min_trend_length` implements the paper's treatment of minimal
trend length constraints for the common single-variable Kleene pattern:
``A+`` with minimal length ``k`` is unrolled to ``SEQ(A, ..., A, A+)``.
"""

from __future__ import annotations

from typing import List

from repro.errors import InvalidPatternError
from repro.query.ast import (
    Disjunction,
    EventTypePattern,
    KleenePlus,
    KleeneStar,
    Negation,
    OptionalPattern,
    Pattern,
    Sequence,
)


def desugar_pattern(pattern: Pattern) -> Pattern:
    """Rewrite Kleene star and optional sub-patterns into the core fragment.

    The result contains only event type atoms, SEQ, Kleene plus, negation
    and disjunction.  Sub-patterns that can match the empty trend at the top
    level (a bare ``A*``) are rejected, mirroring the paper's assumption
    that a query matches at least one event.
    """
    rewritten = _desugar(pattern)
    if isinstance(rewritten, _OptionalMarker):
        # A top-level star/optional may match the empty trend; the empty
        # alternative carries no events and is dropped (Section 2.1 assumes
        # trends of length >= 1).
        rewritten = rewritten.inner
    if rewritten is None:
        raise InvalidPatternError(
            f"pattern {pattern!r} matches only the empty trend after desugaring"
        )
    return rewritten


def _desugar(pattern: Pattern):
    """Return the rewritten pattern, or ``None`` when only the empty match remains."""
    if isinstance(pattern, EventTypePattern):
        return EventTypePattern(pattern.event_type, pattern.variable)

    if isinstance(pattern, KleenePlus):
        inner = _desugar(pattern.inner)
        if isinstance(inner, _OptionalMarker):
            # (P?)+ == P* : one or more optional blocks reduce to P+ | empty.
            return _optional(KleenePlus(inner.inner))
        if inner is None:
            return None
        return KleenePlus(inner)

    if isinstance(pattern, KleeneStar):
        # P* == P+ | empty ; the empty alternative is expressed by the caller
        # (a sequence simply drops the part, a top-level star is rejected).
        inner = _desugar(pattern.inner)
        if isinstance(inner, _OptionalMarker):
            inner = inner.inner
        if inner is None:
            return None
        return _optional(KleenePlus(inner))

    if isinstance(pattern, OptionalPattern):
        inner = _desugar(pattern.inner)
        if isinstance(inner, _OptionalMarker):
            return inner
        if inner is None:
            return None
        return _optional(inner)

    if isinstance(pattern, Negation):
        inner = _desugar(pattern.inner)
        if isinstance(inner, _OptionalMarker):
            inner = inner.inner
        if inner is None:
            return None
        return Negation(inner)

    if isinstance(pattern, Sequence):
        parts = [_desugar(part) for part in pattern.parts]
        return _desugar_sequence(parts)

    if isinstance(pattern, Disjunction):
        alternatives = [_desugar(alt) for alt in pattern.alternatives]
        alternatives = [
            alt.inner if isinstance(alt, _OptionalMarker) else alt for alt in alternatives
        ]
        concrete = [alt for alt in alternatives if alt is not None]
        if not concrete:
            return None
        flattened: List[Pattern] = []
        for alternative in concrete:
            if isinstance(alternative, Disjunction):
                flattened.extend(alternative.alternatives)
            else:
                flattened.append(alternative)
        if len(flattened) == 1:
            return flattened[0]
        return Disjunction(flattened)

    raise InvalidPatternError(f"cannot desugar pattern node {type(pattern).__name__}")


class _OptionalMarker:
    """Wrapper marking 'this part may be present or absent' inside a sequence."""

    def __init__(self, inner: Pattern):
        self.inner = inner


def _optional(inner: Pattern) -> "_OptionalMarker":
    return _OptionalMarker(inner)


def _desugar_sequence(parts: List) -> Pattern:
    """Expand optional markers in a sequence into a disjunction of sequences."""
    combinations: List[List[Pattern]] = [[]]
    for part in parts:
        if part is None:
            continue
        if isinstance(part, _OptionalMarker):
            with_part = [combo + [part.inner] for combo in combinations]
            without_part = [list(combo) for combo in combinations]
            combinations = with_part + without_part
        else:
            combinations = [combo + [part] for combo in combinations]

    alternatives: List[Pattern] = []
    seen = set()
    for combo in combinations:
        if not combo:
            continue
        candidate = combo[0] if len(combo) == 1 else Sequence(combo)
        key = repr(candidate)
        if key not in seen:
            seen.add(key)
            alternatives.append(candidate)
    if not alternatives:
        return None
    if len(alternatives) == 1:
        return alternatives[0]
    return Disjunction(alternatives)


def expand_min_trend_length(pattern: Pattern, min_length: int) -> Pattern:
    """Unroll ``A+`` to ``SEQ(A, ..., A, A+)`` for a minimal trend length.

    Only the single-variable Kleene pattern is supported (the case discussed
    in the paper); other shapes raise :class:`InvalidPatternError`.  The
    unrolled occurrences receive fresh variable names (``A__1``, ...) but
    keep the original event type, so aggregates over the original variable
    must be rewritten by the caller.
    """
    if min_length <= 1:
        return pattern
    if not isinstance(pattern, KleenePlus) or not isinstance(pattern.inner, EventTypePattern):
        raise InvalidPatternError(
            "minimal trend length expansion is only defined for single-variable "
            "Kleene patterns such as A+"
        )
    atom = pattern.inner
    prefix = [
        EventTypePattern(atom.event_type, f"{atom.variable}__{index}")
        for index in range(1, min_length)
    ]
    return Sequence(prefix + [KleenePlus(EventTypePattern(atom.event_type, atom.variable))])
