"""Negated sub-patterns (Section 8 of the paper).

The paper sketches negation support as follows: *split the pattern into
positive and negative sub-patterns and maintain aggregates for each
sub-pattern separately.  Whenever a negative sub-pattern N finds a match,*

* *per event:* all previously matched events of predecessor types ``Tp`` of
  N are marked as incompatible with all future events of following types
  ``Tf`` of N,
* *per type:* the aggregates of all predecessor types ``Tp`` are marked as
  invalid to contribute to aggregates of the following types ``Tf``,
* *per pattern:* the last matched event of the sub-pattern preceding N is
  set to null.

This module implements exactly that for negated *event type atoms* placed
between two positive parts of a sequence, e.g. ``SEQ(A+, NOT C, B)`` or the
ridesharing pattern ``SEQ(Accept, NOT Cancel, Finish)``:

* :func:`analyze_negations` splits a pattern into its positive part and a
  list of :class:`NegatedComponent` descriptors (``Tp`` / ``Tf`` per
  negation),
* :func:`create_negation_aggregator` builds the negation-aware counterpart
  of the granularity the planner selected for the positive part, and
* :class:`~repro.core.engine.CograEngine` routes queries with negated
  patterns through this module automatically.

Enforced semantics
------------------
A trend is counted when, for every negated component, no event of the
negated type occurs between two *adjacent* trend events that cross the
negation boundary (an event bound to a ``Tp`` variable followed by an event
bound to a ``Tf`` variable).  This is the relation the incremental
invalidation rules above maintain; :func:`trend_respects_negations` states
it explicitly and doubles as the correctness oracle of the test suite.

Scope and simplifications (documented in DESIGN.md):

* A negated sub-pattern must be a single event type atom that appears as a
  direct element of a sequence with at least one positive part before and
  after it.
* The negated event type must not also occur positively in the pattern.
* Queries with predicates on adjacent events are evaluated at event
  granularity (the mixed-grained dual bookkeeping is not implemented).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence as Seq, Tuple

from repro.analyzer.automaton import PatternAutomaton
from repro.analyzer.granularity import Granularity
from repro.analyzer.plan import CograPlan, plan_query
from repro.core.aggregate_state import TrendAccumulator
from repro.core.base import SubstreamAggregator
from repro.core.event_grained import EventGrainedAggregator
from repro.core.pattern_grained import PatternGrainedAggregator
from repro.errors import InvalidPatternError, PlanningError
from repro.events.event import Event
from repro.query.ast import EventTypePattern, Negation, Pattern, Sequence
from repro.query.query import Query
from repro.query.semantics import Semantics


@dataclass(frozen=True)
class NegatedComponent:
    """One negated event type atom of a pattern and its boundary variables.

    Attributes
    ----------
    index:
        Position of the component in document order (used as a stable key).
    event_type:
        Event type whose occurrence invalidates crossing the boundary.
    predecessor_variables:
        ``Tp`` -- variables that may immediately precede the negation (the
        end variables of the positive part before it).
    follower_variables:
        ``Tf`` -- variables that may immediately follow the negation (the
        start variables of the positive part after it).
    prefix_variables:
        All variables of the positive part before the negation; used by the
        pattern-grained invalidation rule.
    """

    index: int
    event_type: str
    predecessor_variables: FrozenSet[str]
    follower_variables: FrozenSet[str]
    prefix_variables: FrozenSet[str]

    def describe(self) -> str:
        """Readable rendering used in plan explanations."""
        return (
            f"NOT {self.event_type} between {sorted(self.predecessor_variables)} "
            f"and {sorted(self.follower_variables)}"
        )


@dataclass(frozen=True)
class NegationAnalysis:
    """Result of splitting a pattern into positive and negative parts."""

    positive_pattern: Pattern
    components: Tuple[NegatedComponent, ...]

    @property
    def has_negations(self) -> bool:
        """True when the original pattern contained at least one negation."""
        return bool(self.components)

    def negated_types(self) -> FrozenSet[str]:
        """Event types that occur under a negation."""
        return frozenset(component.event_type for component in self.components)


# ---------------------------------------------------------------------------
# static analysis
# ---------------------------------------------------------------------------


def strip_negations(pattern: Pattern) -> Pattern:
    """Return ``pattern`` with every negated sub-pattern removed.

    Negations may only appear as direct elements of a sequence; anywhere
    else (inside a Kleene operator, as a whole pattern, ...) the incremental
    invalidation rules of Section 8 do not apply and the function raises
    :class:`InvalidPatternError`.
    """
    if isinstance(pattern, Negation):
        raise InvalidPatternError(
            "a negated sub-pattern must appear inside a sequence with positive "
            "parts before and after it"
        )
    if isinstance(pattern, EventTypePattern):
        return pattern
    if isinstance(pattern, Sequence):
        parts = [strip_negations(part) for part in pattern.parts if not isinstance(part, Negation)]
        if not parts:
            raise InvalidPatternError("a sequence may not consist of negated parts only")
        if len(parts) == 1:
            return parts[0]
        return Sequence(parts)
    rebuilt = [strip_negations(child) for child in pattern.children()]
    if not rebuilt:
        return pattern
    clone = type(pattern).__new__(type(pattern))
    clone.__dict__.update(pattern.__dict__)
    # rebuild the children attribute used by the concrete node type
    if hasattr(pattern, "inner"):
        clone.inner = rebuilt[0]
    elif hasattr(pattern, "parts"):
        clone.parts = tuple(rebuilt)
    elif hasattr(pattern, "alternatives"):
        clone.alternatives = tuple(rebuilt)
    return clone


def analyze_negations(pattern: Pattern) -> NegationAnalysis:
    """Split ``pattern`` into its positive part and its negated components."""
    components: List[NegatedComponent] = []
    _collect_components(pattern, components)
    positive = strip_negations(pattern) if components else pattern
    positive.validate()

    positive_types = frozenset(leaf.event_type for leaf in positive.leaves())
    for component in components:
        if component.event_type in positive_types:
            raise InvalidPatternError(
                f"event type {component.event_type!r} occurs both positively and "
                "under a negation, which the negation extension does not support"
            )
    return NegationAnalysis(positive_pattern=positive, components=tuple(components))


def _collect_components(pattern: Pattern, components: List[NegatedComponent]) -> None:
    """Find negated atoms in every sequence of ``pattern`` (pre-order)."""
    if isinstance(pattern, Sequence):
        for position, part in enumerate(pattern.parts):
            if isinstance(part, Negation):
                components.append(_component_for(pattern.parts, position, len(components)))
            else:
                _collect_components(part, components)
        return
    if isinstance(pattern, Negation):
        raise InvalidPatternError(
            "a negated sub-pattern must appear inside a sequence with positive "
            "parts before and after it"
        )
    for child in pattern.children():
        _collect_components(child, components)


def _component_for(parts: Seq[Pattern], position: int, index: int) -> NegatedComponent:
    """Build the :class:`NegatedComponent` for ``parts[position]``."""
    negation = parts[position]
    inner = negation.inner
    if not isinstance(inner, EventTypePattern):
        raise InvalidPatternError(
            f"only negated event type atoms are supported, got NOT({inner!r})"
        )
    prefix_parts = [part for part in parts[:position] if not isinstance(part, Negation)]
    suffix_parts = [part for part in parts[position + 1:] if not isinstance(part, Negation)]
    if not prefix_parts or not suffix_parts:
        raise InvalidPatternError(
            f"the negated type {inner.event_type!r} needs a positive sub-pattern "
            "both before and after it"
        )
    prefix = strip_negations(prefix_parts[0] if len(prefix_parts) == 1 else Sequence(prefix_parts))
    suffix = strip_negations(suffix_parts[0] if len(suffix_parts) == 1 else Sequence(suffix_parts))
    prefix_automaton = PatternAutomaton(prefix)
    suffix_automaton = PatternAutomaton(suffix)
    return NegatedComponent(
        index=index,
        event_type=inner.event_type,
        predecessor_variables=frozenset(prefix_automaton.end_variables),
        follower_variables=frozenset(suffix_automaton.start_variables),
        prefix_variables=frozenset(prefix_automaton.variables),
    )


def positive_query(query: Query, analysis: Optional[NegationAnalysis] = None) -> Query:
    """Return ``query`` with negated sub-patterns removed from its pattern."""
    analysis = analysis or analyze_negations(query.pattern)
    if not analysis.has_negations:
        return query
    return Query(
        pattern=analysis.positive_pattern,
        semantics=query.semantics,
        aggregates=query.aggregates,
        predicates=query.predicates,
        group_by=query.group_by,
        window=query.window,
        return_attributes=query.return_attributes,
        min_trend_length=query.min_trend_length,
        name=query.name,
    )


def plan_negated_query(
    query: Query, forced_granularity: Optional[Granularity] = None
) -> Tuple[CograPlan, NegationAnalysis]:
    """Plan a query with negated sub-patterns.

    The plan is computed for the positive part; mixed granularity is
    escalated to event granularity because the negation bookkeeping for the
    type-grained half of a mixed plan is not implemented.
    """
    analysis = analyze_negations(query.pattern)
    if (
        analysis.has_negations
        and (forced_granularity is Granularity.MIXED or forced_granularity == "mixed")
    ):
        raise PlanningError(
            "granularity 'mixed' cannot be forced on a query with negated "
            "sub-patterns (the type-grained half of the mixed bookkeeping is "
            "not implemented); force 'event' instead"
        )
    plan = plan_query(positive_query(query, analysis), forced_granularity=forced_granularity)
    if analysis.has_negations and plan.granularity is Granularity.MIXED:
        plan = plan_query(
            positive_query(query, analysis), forced_granularity=Granularity.EVENT
        )
    return plan, analysis


# ---------------------------------------------------------------------------
# negation-aware aggregators
# ---------------------------------------------------------------------------


def _crossing_edges(
    components: Seq[NegatedComponent],
) -> Dict[Tuple[str, str], List[NegatedComponent]]:
    """Map adjacency edges ``(Tp variable, Tf variable)`` to the boundaries they cross."""
    crossing: Dict[Tuple[str, str], List[NegatedComponent]] = {}
    for component in components:
        for predecessor in component.predecessor_variables:
            for follower in component.follower_variables:
                crossing.setdefault((predecessor, follower), []).append(component)
    for edge, crossed in crossing.items():
        if len(crossed) > 1:
            raise InvalidPatternError(
                f"the adjacency edge {edge} crosses {len(crossed)} negation boundaries; "
                "at most one negated type may separate two positive parts"
            )
    return crossing


def _components_by_type(
    components: Seq[NegatedComponent],
) -> Dict[str, List[NegatedComponent]]:
    by_type: Dict[str, List[NegatedComponent]] = {}
    for component in components:
        by_type.setdefault(component.event_type, []).append(component)
    return by_type


class NegationPatternGrainedAggregator(PatternGrainedAggregator):
    """Pattern-grained aggregation with negated sub-patterns (NEXT / CONT).

    Whenever an event of a negated type arrives and the last matched event
    belongs to the positive part preceding that negation, the partial trends
    ending at the last matched event are invalidated (Section 8).
    """

    def __init__(self, plan: CograPlan, components: Seq[NegatedComponent]):
        super().__init__(plan)
        self._components = tuple(components)
        self._negated_by_type = _components_by_type(self._components)

    def process(self, event: Event) -> None:
        components = self._negated_by_type.get(event.event_type)
        if components:
            for component in components:
                if self._last_variable is not None and (
                    self._last_variable in component.prefix_variables
                ):
                    self._reset_last()
            if self.plan.semantics is Semantics.CONTIGUOUS:
                # a negated event also breaks contiguity like any other event
                self._reset_last()
            return
        super().process(event)


class NegationTypeGrainedAggregator(SubstreamAggregator):
    """Type-grained aggregation with negated sub-patterns (ANY semantics).

    Besides the per-variable accumulator of Algorithm 1 the aggregator keeps
    one *compatible* accumulator per (negated component, ``Tp`` variable).
    Events of ``Tf`` variables draw their predecessor trends from the
    compatible accumulator, which is reset whenever the negated type
    matches -- exactly the "mark ``Tp`` invalid for ``Tf``" rule of
    Section 8.
    """

    def __init__(self, plan: CograPlan, components: Seq[NegatedComponent]):
        super().__init__(plan)
        self._components = tuple(components)
        self._negated_by_type = _components_by_type(self._components)
        self._crossing = _crossing_edges(self._components)
        targets = plan.targets
        self._full: Dict[str, TrendAccumulator] = {
            variable: TrendAccumulator.zero(targets)
            for variable in plan.automaton.variables
        }
        self._compatible: Dict[Tuple[int, str], TrendAccumulator] = {
            (component.index, variable): TrendAccumulator.zero(targets)
            for component in self._components
            for variable in component.predecessor_variables
        }

    # -- hot path -----------------------------------------------------------------

    def process(self, event: Event) -> None:
        plan = self.plan
        components = self._negated_by_type.get(event.event_type)
        if components:
            for component in components:
                for variable in component.predecessor_variables:
                    self._compatible[(component.index, variable)] = TrendAccumulator.zero(
                        plan.targets
                    )
            return

        variables = plan.candidate_variables(event)
        if not variables:
            return
        self.events_processed += 1

        staged: List[Tuple[str, TrendAccumulator]] = []
        for variable in variables:
            predecessor = TrendAccumulator.zero(plan.targets)
            for predecessor_variable in plan.automaton.pred_types(variable):
                crossed = self._crossing.get((predecessor_variable, variable))
                if crossed:
                    predecessor.merge(
                        self._compatible[(crossed[0].index, predecessor_variable)]
                    )
                else:
                    predecessor.merge(self._full[predecessor_variable])
            cell = predecessor.extended(event, variable)
            if plan.is_start(variable):
                cell.merge(TrendAccumulator.singleton(event, variable, plan.targets))
            staged.append((variable, cell))

        for variable, cell in staged:
            self._full[variable].merge(cell)
            for component in self._components:
                if variable in component.predecessor_variables:
                    self._compatible[(component.index, variable)].merge(cell)

    # -- results -------------------------------------------------------------------

    def final_accumulator(self) -> TrendAccumulator:
        final = TrendAccumulator.zero(self.plan.targets)
        for variable in self.plan.automaton.end_variables:
            final.merge(self._full[variable])
        return final

    def cell(self, variable: str) -> TrendAccumulator:
        """Full accumulator of ``variable`` (for inspection)."""
        return self._full[variable]

    def compatible_cell(self, component_index: int, variable: str) -> TrendAccumulator:
        """Compatible accumulator of a ``Tp`` variable (for inspection)."""
        return self._compatible[(component_index, variable)]

    # -- memory accounting -------------------------------------------------------------

    def storage_units(self) -> int:
        units = sum(cell.storage_units for cell in self._full.values())
        units += sum(cell.storage_units for cell in self._compatible.values())
        return units


class NegationEventGrainedAggregator(EventGrainedAggregator):
    """Event-grained aggregation with negated sub-patterns (ANY semantics).

    Every stored event of a ``Tp`` variable that arrived before the most
    recent match of the negated type is blocked from contributing to events
    of the corresponding ``Tf`` variables.  Because stored nodes are
    appended in arrival order a single cut-off index per (component, ``Tp``
    variable) encodes the blocked set.
    """

    def __init__(self, plan: CograPlan, components: Seq[NegatedComponent]):
        super().__init__(plan)
        self._components = tuple(components)
        self._negated_by_type = _components_by_type(self._components)
        self._crossing = _crossing_edges(self._components)
        self._cutoffs: Dict[Tuple[int, str], int] = {
            (component.index, variable): 0
            for component in self._components
            for variable in component.predecessor_variables
        }

    def process(self, event: Event) -> None:
        plan = self.plan
        components = self._negated_by_type.get(event.event_type)
        if components:
            for component in components:
                for variable in component.predecessor_variables:
                    self._cutoffs[(component.index, variable)] = len(self._nodes[variable])
            return

        variables = plan.candidate_variables(event)
        if not variables:
            return
        self.events_processed += 1

        staged: List[Tuple[str, TrendAccumulator]] = []
        for variable in variables:
            predecessor = TrendAccumulator.zero(plan.targets)
            for predecessor_variable in plan.automaton.pred_types(variable):
                crossed = self._crossing.get((predecessor_variable, variable))
                blocked_below = (
                    self._cutoffs[(crossed[0].index, predecessor_variable)] if crossed else 0
                )
                nodes = self._nodes[predecessor_variable]
                for position, (stored_event, stored_cell) in enumerate(nodes):
                    if position < blocked_below:
                        continue
                    if plan.adjacency_satisfied(
                        stored_event, predecessor_variable, event, variable
                    ):
                        predecessor.merge(stored_cell)
            cell = predecessor.extended(event, variable)
            if plan.is_start(variable):
                cell.merge(TrendAccumulator.singleton(event, variable, plan.targets))
            staged.append((variable, cell))

        for variable, cell in staged:
            self._nodes[variable].append((event, cell))
            if plan.is_end(variable):
                self._final.merge(cell)


def create_negation_aggregator(
    plan: CograPlan, components: Seq[NegatedComponent]
) -> SubstreamAggregator:
    """Build the negation-aware aggregator for the plan's granularity."""
    if not components:
        from repro.core.base import create_aggregator

        return create_aggregator(plan)
    granularity = plan.granularity
    if granularity is Granularity.PATTERN:
        return NegationPatternGrainedAggregator(plan, components)
    if granularity is Granularity.TYPE:
        return NegationTypeGrainedAggregator(plan, components)
    if granularity is Granularity.EVENT:
        return NegationEventGrainedAggregator(plan, components)
    raise InvalidPatternError(
        f"negated patterns are not supported at {granularity.value} granularity; "
        "plan them with plan_negated_query()"
    )


# ---------------------------------------------------------------------------
# reference semantics (used as the correctness oracle)
# ---------------------------------------------------------------------------


def trend_respects_negations(
    components: Seq[NegatedComponent],
    events: Seq[Event],
    trend: Seq[Tuple[int, str]],
) -> bool:
    """Check the negation constraint for one explicitly constructed trend.

    ``trend`` is a tuple of ``(event index, variable)`` bindings into
    ``events`` (the representation used by the trend enumeration oracle).
    The constraint holds when no event of a negated type occurs between two
    adjacent trend events that cross the corresponding negation boundary.
    """
    if not components:
        return True
    crossing = _crossing_edges(components)
    for (left_index, left_variable), (right_index, right_variable) in zip(trend, trend[1:]):
        crossed = crossing.get((left_variable, right_variable))
        if not crossed:
            continue
        component = crossed[0]
        left_key = events[left_index].order_key
        right_key = events[right_index].order_key
        for event in events:
            if event.event_type != component.event_type:
                continue
            if left_key < event.order_key < right_key:
                return False
    return True


def filter_trends_with_negations(
    components: Seq[NegatedComponent],
    events: Seq[Event],
    trends: Seq[Seq[Tuple[int, str]]],
) -> List[Tuple[Tuple[int, str], ...]]:
    """Drop enumerated trends that violate a negation constraint."""
    return [
        tuple(trend)
        for trend in trends
        if trend_respects_negations(components, events, trend)
    ]
