"""Mixed-grained aggregator: Algorithm 2 of the paper (Section 5).

Applicable to queries under skip-till-any-match *with* predicates on
adjacent events.  The pattern variables are split into

* ``Tt`` -- variables whose events never need to be re-examined: a single
  type-grained accumulator suffices, and
* ``Te`` -- variables that appear on the predecessor side of an adjacent
  predicate: their events must be kept (together with an event-grained
  accumulator each) so the predicate can be evaluated against future events.

In the extreme case ``Tt = ∅`` the aggregator degenerates to event-grained
(GRETA-like) aggregation, which is exactly what the granularity selector
reports as :class:`~repro.analyzer.granularity.Granularity.EVENT`.

Time complexity is ``O(n * (t + n_e))`` and space ``Θ(t + n_e)`` where ``t``
is the number of type-grained variables and ``n_e`` the number of stored
events (Theorems 5.2 and 5.3).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analyzer.plan import CograPlan
from repro.core.aggregate_state import TrendAccumulator
from repro.core.base import SubstreamAggregator
from repro.events.event import Event


class MixedGrainedAggregator(SubstreamAggregator):
    """Maintains type-grained cells for ``Tt`` and per-event cells for ``Te``."""

    def __init__(self, plan: CograPlan):
        super().__init__(plan)
        targets = plan.targets
        self._type_grained = plan.type_grained
        self._event_grained = plan.event_grained
        #: Tt variable -> accumulator of all (partial) trends ending at it
        self._type_cells: Dict[str, TrendAccumulator] = {
            variable: TrendAccumulator.zero(targets)
            for variable in plan.automaton.variables
            if variable in self._type_grained
        }
        #: Te variable -> list of (event, accumulator of trends ending at event)
        self._event_cells: Dict[str, List[Tuple[Event, TrendAccumulator]]] = {
            variable: []
            for variable in plan.automaton.variables
            if variable in self._event_grained
        }
        #: accumulator of finished trends that end at an event of a Te variable
        self._final = TrendAccumulator.zero(targets)

    # -- hot path -----------------------------------------------------------------

    def process(self, event: Event) -> None:
        """Algorithm 2, lines 5-14 (generalised to all Table 8 aggregates)."""
        plan = self.plan
        variables = plan.candidate_variables(event)
        if not variables:
            return  # irrelevant events are skipped under skip-till-any-match
        self.events_processed += 1

        staged: List[Tuple[str, TrendAccumulator]] = []
        for variable in variables:
            predecessor = TrendAccumulator.zero(plan.targets)
            for predecessor_variable in plan.automaton.pred_types(variable):
                if predecessor_variable in self._type_grained:
                    predecessor.merge(self._type_cells[predecessor_variable])
                else:
                    for stored_event, stored_cell in self._event_cells[predecessor_variable]:
                        if plan.adjacency_satisfied(
                            stored_event, predecessor_variable, event, variable
                        ):
                            predecessor.merge(stored_cell)
            cell = predecessor.extended(event, variable)
            if plan.is_start(variable):
                cell.merge(TrendAccumulator.singleton(event, variable, plan.targets))
            staged.append((variable, cell))

        # Apply the staged updates only after every binding has been computed
        # against the pre-event state (an event is never its own predecessor).
        for variable, cell in staged:
            if variable in self._type_grained:
                self._type_cells[variable].merge(cell)
            else:
                self._event_cells[variable].append((event, cell))
                if plan.is_end(variable):
                    self._final.merge(cell)

    # -- results -------------------------------------------------------------------

    def final_accumulator(self) -> TrendAccumulator:
        """Finished-trend summary: Te end events plus Tt end variables."""
        final = self._final.copy()
        for variable in self.plan.automaton.end_variables:
            if variable in self._type_grained:
                final.merge(self._type_cells[variable])
        return final

    def cell(self, variable: str) -> TrendAccumulator:
        """Type-grained accumulator of ``variable`` (must be in ``Tt``)."""
        return self._type_cells[variable]

    def stored_events(self, variable: str) -> List[Tuple[Event, TrendAccumulator]]:
        """Stored (event, accumulator) pairs of a ``Te`` variable."""
        return list(self._event_cells[variable])

    # -- memory accounting -------------------------------------------------------------

    def storage_units(self) -> int:
        units = self._final.storage_units
        units += sum(cell.storage_units for cell in self._type_cells.values())
        for entries in self._event_cells.values():
            for _, cell in entries:
                # the stored event itself counts as one unit besides its cell
                units += 1 + cell.storage_units
        return units

    def stored_event_count(self) -> int:
        return sum(len(entries) for entries in self._event_cells.values())
