"""COGRA runtime: incremental coarse-grained event trend aggregation.

The package implements the paper's contribution:

* :mod:`repro.core.aggregate_state` -- incremental aggregate cells
  (Table 8: COUNT, MIN, MAX, SUM, AVG at every granularity),
* :mod:`repro.core.type_grained` -- Algorithm 1 (ANY, no adjacent predicates),
* :mod:`repro.core.mixed_grained` -- Algorithm 2 (ANY with adjacent predicates),
* :mod:`repro.core.pattern_grained` -- Algorithm 3 (NEXT / CONT),
* :mod:`repro.core.executor` -- sliding windows, grouping and result emission,
* :mod:`repro.core.engine` -- the public facade :class:`CograEngine`.
"""

from repro.core.aggregate_state import TrendAccumulator
from repro.core.base import SubstreamAggregator, create_aggregator
from repro.core.engine import CograEngine
from repro.core.event_grained import EventGrainedAggregator
from repro.core.executor import QueryExecutor
from repro.core.results import GroupResult
from repro.core.type_grained import TypeGrainedAggregator
from repro.core.mixed_grained import MixedGrainedAggregator
from repro.core.pattern_grained import PatternGrainedAggregator

__all__ = [
    "CograEngine",
    "EventGrainedAggregator",
    "GroupResult",
    "MixedGrainedAggregator",
    "PatternGrainedAggregator",
    "QueryExecutor",
    "SubstreamAggregator",
    "TrendAccumulator",
    "TypeGrainedAggregator",
    "create_aggregator",
]
