"""Time-driven stream transaction scheduler (Section 8, parallel processing).

The paper processes all events that carry the same application timestamp as
one *stream transaction*: for every timestamp ``t`` the scheduler waits
until all transactions with smaller timestamps have completed, then wraps
the events with timestamp ``t`` into a transaction and submits it.

In this single-process reproduction the scheduler provides the same
ordering guarantees without threads: it buffers events per timestamp,
releases complete transactions in timestamp order and dispatches the events
of a transaction to one or more executors (one per partition, mirroring the
per-sub-stream parallelism the paper describes).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.executor import QueryExecutor
from repro.core.results import GroupResult
from repro.errors import StreamOrderError
from repro.events.event import Event


class StreamTransaction:
    """All events sharing one application timestamp."""

    __slots__ = ("time", "events")

    def __init__(self, time: float, events: Sequence[Event]):
        self.time = time
        self.events = list(events)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"StreamTransaction(t={self.time:g}, {len(self.events)} events)"


class TimeDrivenScheduler:
    """Groups events into per-timestamp transactions and dispatches them.

    Parameters
    ----------
    executor_factory:
        Zero-argument callable creating a fresh :class:`QueryExecutor`
        (or any object with ``process``/``flush``) per partition.
    partition_function:
        Maps an event to a partition identifier; all events of a partition
        are handled by the same executor.  Defaults to a single partition.
    """

    def __init__(
        self,
        executor_factory: Callable[[], QueryExecutor],
        partition_function: Optional[Callable[[Event], object]] = None,
    ):
        self._executor_factory = executor_factory
        self._partition_function = partition_function or (lambda event: 0)
        self._executors: Dict[object, QueryExecutor] = {}
        self._pending_time: Optional[float] = None
        self._pending_events: List[Event] = []
        self._completed_transactions = 0

    # -- feeding ------------------------------------------------------------------

    def submit(self, event: Event) -> List[GroupResult]:
        """Buffer ``event``; dispatch the previous transaction if it is complete."""
        emitted: List[GroupResult] = []
        if self._pending_time is None:
            self._pending_time = event.time
        elif event.time < self._pending_time:
            raise StreamOrderError(
                f"event at time {event.time} arrived after transaction {self._pending_time}"
            )
        elif event.time > self._pending_time:
            emitted.extend(self._dispatch_pending())
            self._pending_time = event.time
        self._pending_events.append(event)
        return emitted

    def run(self, events: Iterable[Event]) -> List[GroupResult]:
        """Process a finite stream transactionally and return all results."""
        emitted: List[GroupResult] = []
        for event in events:
            emitted.extend(self.submit(event))
        emitted.extend(self.finish())
        return emitted

    def finish(self) -> List[GroupResult]:
        """Dispatch the last transaction and flush every executor."""
        emitted = self._dispatch_pending()
        for executor in self._executors.values():
            emitted.extend(executor.flush())
        return emitted

    # -- inspection ----------------------------------------------------------------

    @property
    def completed_transactions(self) -> int:
        """Number of stream transactions dispatched so far."""
        return self._completed_transactions

    @property
    def partition_count(self) -> int:
        """Number of partitions (executors) created so far."""
        return len(self._executors)

    def executors(self) -> Dict[object, QueryExecutor]:
        """Mapping from partition identifier to its executor."""
        return dict(self._executors)

    # -- internals -------------------------------------------------------------------

    def _dispatch_pending(self) -> List[GroupResult]:
        if not self._pending_events:
            return []
        transaction = StreamTransaction(self._pending_time, self._pending_events)
        self._pending_events = []
        emitted: List[GroupResult] = []
        for event in transaction.events:
            partition = self._partition_function(event)
            executor = self._executors.get(partition)
            if executor is None:
                executor = self._executor_factory()
                self._executors[partition] = executor
            emitted.extend(executor.process(event))
        self._completed_transactions += 1
        return emitted
