"""Result records emitted by the runtime executor."""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class GroupResult:
    """Aggregation result of one group within one window.

    Attributes
    ----------
    window_id:
        Identifier of the sliding window (``wid`` of Section 7), or ``0``
        for queries without a WITHIN clause.
    window_start / window_end:
        Time interval covered by the window (``None`` when unbounded).
    group:
        Mapping from grouping attribute name to its value for this group.
    values:
        Mapping from RETURN-clause column name (e.g. ``"COUNT(*)"``,
        ``"MIN(M.rate)"``) to the aggregate value.
    trend_count:
        Number of finished trends in the group (``COUNT(*)`` even when it
        was not requested), useful for filtering empty groups.
    """

    __slots__ = ("window_id", "window_start", "window_end", "group", "values", "trend_count")

    def __init__(
        self,
        window_id: int,
        window_start: Optional[float],
        window_end: Optional[float],
        group: Dict[str, object],
        values: Dict[str, object],
        trend_count: int,
    ):
        self.window_id = window_id
        self.window_start = window_start
        self.window_end = window_end
        self.group = group
        self.values = values
        self.trend_count = trend_count

    @property
    def group_key(self) -> Tuple:
        """The group as a hashable tuple of values (attribute order of the query)."""
        return tuple(self.group.values())

    def __getitem__(self, column: str):
        """Access a RETURN-clause value or a grouping attribute by name."""
        if column in self.values:
            return self.values[column]
        return self.group[column]

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view: grouping attributes, values and window metadata."""
        row: Dict[str, object] = {"window_id": self.window_id}
        row.update(self.group)
        row.update(self.values)
        return row

    def __repr__(self) -> str:
        group = ", ".join(f"{k}={v!r}" for k, v in self.group.items())
        values = ", ".join(f"{k}={v!r}" for k, v in self.values.items())
        return f"GroupResult(window={self.window_id}, {{{group}}}, {{{values}}})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GroupResult):
            return NotImplemented
        return (
            self.window_id == other.window_id
            and self.group == other.group
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return hash((self.window_id, tuple(sorted(self.group.items()))))
