"""Incremental aggregate cells (Table 8 of the paper).

A :class:`TrendAccumulator` summarises a *multiset of (partial) trends*.
Every COGRA granularity attaches accumulators to different anchors --
a whole pattern, an event type, or a single matched event -- but all of
them manipulate the accumulators through the same three operations:

``merge``
    Combine the summaries of two disjoint trend multisets (used to collect
    the trends ending at all predecessor types/events of a new event).

``extended``
    Derive the summary of the trends obtained by appending a new event to
    every trend of the multiset.  The trend count is unchanged; per-variable
    targets gain one occurrence of the new event per trend.

``singleton``
    The summary of the one-event trend ``(e)`` -- used when the new event is
    bound to a start type of the pattern and therefore begins a new trend.

From a final accumulator (the summary of all finished trends of a group)
:meth:`TrendAccumulator.result_value` extracts the value of any RETURN
clause aggregate.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.errors import InvalidQueryError
from repro.events.event import Event
from repro.query.aggregates import AggregateFunction, AggregateSpec

#: A target is a (variable, attribute) pair; attribute is None for COUNT(E).
Target = Tuple[str, Optional[str]]

# indices into the per-target state list
_COUNT, _SUM, _MIN, _MAX = 0, 1, 2, 3


class TrendAccumulator:
    """Summary of a multiset of (partial) event trends.

    Parameters
    ----------
    targets:
        The ``(variable, attribute)`` pairs the accumulator must track in
        addition to the trend count (derived from the RETURN clause by the
        planner).
    """

    __slots__ = ("targets", "trend_count", "_states")

    def __init__(self, targets: Tuple[Target, ...]):
        self.targets = targets
        self.trend_count = 0
        # per-target [occurrence count, sum, min, max]
        self._states: Dict[Target, list] = {
            target: [0, 0, None, None] for target in targets
        }

    # -- constructors -------------------------------------------------------

    @classmethod
    def zero(cls, targets: Tuple[Target, ...]) -> "TrendAccumulator":
        """The summary of the empty trend multiset."""
        return cls(targets)

    @classmethod
    def singleton(
        cls, event: Event, variable: str, targets: Tuple[Target, ...]
    ) -> "TrendAccumulator":
        """The summary of the single trend ``(event)`` with ``event`` bound to ``variable``."""
        accumulator = cls(targets)
        accumulator.trend_count = 1
        accumulator._apply_event(event, variable, 1)
        return accumulator

    def copy(self) -> "TrendAccumulator":
        """An independent copy of this accumulator."""
        duplicate = TrendAccumulator(self.targets)
        duplicate.trend_count = self.trend_count
        duplicate._states = {target: list(state) for target, state in self._states.items()}
        return duplicate

    # -- predicates ----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when the accumulator summarises no trend at all."""
        return self.trend_count == 0

    # -- the three incremental operations -------------------------------------

    def merge(self, other: "TrendAccumulator") -> None:
        """Add the trends summarised by ``other`` to this accumulator."""
        if other.trend_count == 0:
            return
        self.trend_count += other.trend_count
        for target, state in self._states.items():
            other_state = other._states[target]
            state[_COUNT] += other_state[_COUNT]
            state[_SUM] += other_state[_SUM]
            state[_MIN] = _minimum(state[_MIN], other_state[_MIN])
            state[_MAX] = _maximum(state[_MAX], other_state[_MAX])

    def merged(self, other: "TrendAccumulator") -> "TrendAccumulator":
        """Non-destructive :meth:`merge`."""
        result = self.copy()
        result.merge(other)
        return result

    def extended(self, event: Event, variable: str) -> "TrendAccumulator":
        """Summary of the trends obtained by appending ``event`` to every trend.

        The trend count is preserved; targets on ``variable`` gain one
        occurrence of the event per extended trend.  Extending an empty
        accumulator yields an empty accumulator (there is nothing to extend).
        """
        result = self.copy()
        if result.trend_count == 0:
            return result
        result._apply_event(event, variable, result.trend_count)
        return result

    def extend(self, event: Event, variable: str) -> None:
        """In-place :meth:`extended`: append ``event`` to every trend.

        For callers that own a scratch accumulator (the type-grained batch
        path builds a fresh predecessor merge per event) this skips the
        defensive copy; the resulting state is identical.
        """
        if self.trend_count == 0:
            return
        self._apply_event(event, variable, self.trend_count)

    def include_singleton(self, event: Event, variable: str) -> None:
        """In-place ``merge(singleton(event, variable, self.targets))``.

        Skips building the intermediate one-trend accumulator.  The state
        updates are identical: merging a fresh singleton adds a trend count
        of 1 and the event's own count/sum/min/max contributions, which is
        exactly one multiplicity-1 application of the event.
        """
        self.trend_count += 1
        self._apply_event(event, variable, 1)

    def extend_batch(
        self, events: Iterable[Event], variable: str
    ) -> "TrendAccumulator":
        """Summary after appending each of ``events`` (in order) to every trend.

        Equivalent to folding :meth:`extended` over ``events`` but with a
        single copy up front: the sum/count/min/max recurrences are applied
        in one Python frame instead of re-copying the per-target state per
        event.  The trend count is a loop invariant (``extended`` never
        changes it), so every event applies at the same multiplicity, and
        the per-event application order is preserved -- including the
        OverflowError saturation behaviour of repeated ``extended`` calls.
        """
        result = self.copy()
        trend_count = result.trend_count
        if trend_count == 0:
            return result
        apply_event = result._apply_event
        for event in events:
            apply_event(event, variable, trend_count)
        return result

    def _apply_event(self, event: Event, variable: str, multiplicity: int) -> None:
        """Account for ``event`` occurring once in ``multiplicity`` trends."""
        for (target_variable, attribute), state in self._states.items():
            if target_variable != variable:
                continue
            state[_COUNT] += multiplicity
            if attribute is None:
                continue
            value = event.get(attribute)
            if value is None:
                continue
            try:
                state[_SUM] += value * multiplicity
            except OverflowError:
                # Under skip-till-any-match the trend count is exponential in
                # the number of events, so SUM/AVG over enormous windows can
                # exceed the float range; saturate instead of failing.
                state[_SUM] = float("inf") if value >= 0 else float("-inf")
            state[_MIN] = _minimum(state[_MIN], value)
            state[_MAX] = _maximum(state[_MAX], value)

    # -- result extraction ------------------------------------------------------

    def occurrence_count(self, variable: str, attribute: Optional[str] = None) -> int:
        """Total occurrences of ``variable`` over all summarised trends."""
        state = self._lookup(variable, attribute)
        return state[_COUNT]

    def result_value(self, spec: AggregateSpec):
        """Value of the RETURN-clause aggregate ``spec`` for this accumulator.

        MIN/MAX/AVG return ``None`` when no event contributes (for instance
        when the group matched no trend).
        """
        if spec.is_count_star:
            return self.trend_count
        function = spec.function
        if function is AggregateFunction.COUNT:
            return self._lookup(spec.variable, None)[_COUNT]
        state = self._lookup(spec.variable, spec.attribute)
        if function is AggregateFunction.SUM:
            return state[_SUM]
        if function is AggregateFunction.MIN:
            return state[_MIN]
        if function is AggregateFunction.MAX:
            return state[_MAX]
        if function is AggregateFunction.AVG:
            if state[_COUNT] == 0:
                return None
            return state[_SUM] / state[_COUNT]
        raise InvalidQueryError(f"unsupported aggregation function {function}")  # pragma: no cover

    def results(self, specs: Iterable[AggregateSpec]) -> Dict[str, object]:
        """Mapping from column name to value for all requested aggregates."""
        return {spec.name: self.result_value(spec) for spec in specs}

    def _lookup(self, variable: Optional[str], attribute: Optional[str]) -> list:
        key = (variable, attribute)
        if key in self._states:
            return self._states[key]
        # COUNT(E) may be requested while only (E, attr) targets are tracked;
        # occurrence counts agree across attributes of the same variable.
        for (target_variable, _), state in self._states.items():
            if target_variable == variable:
                return state
        raise InvalidQueryError(
            f"aggregate over {variable}.{attribute} was not planned for this query"
        )

    # -- memory accounting ---------------------------------------------------------

    @property
    def storage_units(self) -> int:
        """Number of scalar values held by the accumulator.

        The benchmark harness sums these to reproduce the paper's
        "number of maintained aggregates" memory metric.
        """
        return 1 + 4 * len(self._states)

    def __repr__(self) -> str:
        parts = [f"trends={self.trend_count}"]
        for (variable, attribute), state in self._states.items():
            label = variable if attribute is None else f"{variable}.{attribute}"
            parts.append(
                f"{label}: count={state[_COUNT]} sum={state[_SUM]} "
                f"min={state[_MIN]} max={state[_MAX]}"
            )
        return f"TrendAccumulator({', '.join(parts)})"


def _minimum(left, right):
    """Minimum treating ``None`` as 'no value yet'."""
    if left is None:
        return right
    if right is None:
        return left
    return left if left <= right else right


def _maximum(left, right):
    """Maximum treating ``None`` as 'no value yet'."""
    if left is None:
        return right
    if right is None:
        return left
    return left if left >= right else right
