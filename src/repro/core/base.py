"""Common interface of the COGRA sub-stream aggregators.

The runtime executor (Section 7) partitions the input stream by window and
group; each resulting *sub-stream* is processed by one aggregator instance
whose concrete class depends on the granularity chosen by the static
analyzer (Table 4).
"""

from __future__ import annotations

from typing import Dict

from repro.analyzer.granularity import Granularity
from repro.analyzer.plan import CograPlan
from repro.core.aggregate_state import TrendAccumulator
from repro.errors import PlanningError
from repro.events.event import Event


class SubstreamAggregator:
    """Base class of the per-(window, group) aggregators."""

    def __init__(self, plan: CograPlan):
        self.plan = plan
        self.events_processed = 0

    # -- the per-event hot path -------------------------------------------------

    def process(self, event: Event) -> None:
        """Update the maintained aggregates with ``event``."""
        raise NotImplementedError

    # -- results ------------------------------------------------------------------

    def final_accumulator(self) -> TrendAccumulator:
        """Summary of all finished trends seen so far."""
        raise NotImplementedError

    def results(self) -> Dict[str, object]:
        """RETURN-clause values for this sub-stream."""
        return self.final_accumulator().results(self.plan.query.aggregates)

    @property
    def trend_count(self) -> int:
        """Number of finished trends (COUNT(*)) seen so far."""
        return self.final_accumulator().trend_count

    # -- memory accounting ----------------------------------------------------------

    def storage_units(self) -> int:
        """Number of scalar values currently stored by the aggregator.

        This is the machine-independent memory metric reported by the
        benchmark harness (the paper's "number of aggregates").
        """
        raise NotImplementedError

    def stored_event_count(self) -> int:
        """Number of matched events the aggregator keeps around."""
        return 0


def create_aggregator(plan: CograPlan) -> SubstreamAggregator:
    """Instantiate the aggregator matching the plan's granularity."""
    # imported lazily to avoid circular imports at package load time
    from repro.core.event_grained import EventGrainedAggregator
    from repro.core.mixed_grained import MixedGrainedAggregator
    from repro.core.pattern_grained import PatternGrainedAggregator
    from repro.core.type_grained import TypeGrainedAggregator

    granularity = plan.granularity
    if granularity is Granularity.PATTERN:
        return PatternGrainedAggregator(plan)
    if granularity is Granularity.TYPE:
        return TypeGrainedAggregator(plan)
    if granularity is Granularity.MIXED:
        return MixedGrainedAggregator(plan)
    if granularity is Granularity.EVENT:
        return EventGrainedAggregator(plan)
    raise PlanningError(f"no aggregator for granularity {granularity}")  # pragma: no cover
