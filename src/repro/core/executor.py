"""Runtime executor: windows, grouping and result emission (Section 7).

The executor consumes a time-ordered event stream and routes every event to
one sub-stream aggregator per (window, group) combination.  Aggregator
instances are created lazily on the first event of a sub-stream and torn
down as soon as their window expires, at which point the aggregation result
of every group in the window is emitted.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analyzer.plan import CograPlan, plan_query
from repro.core.base import SubstreamAggregator, create_aggregator
from repro.core.partitioner import window_bounds
from repro.core.results import GroupResult
from repro.errors import StreamOrderError
from repro.events.event import Event
from repro.query.query import Query


class QueryExecutor:
    """Evaluates one event trend aggregation query over a stream.

    Parameters
    ----------
    query:
        The query to evaluate, or an already-computed :class:`CograPlan`.
    emit_empty_groups:
        When True, groups whose final trend count is zero are still emitted
        (with ``COUNT(*) = 0`` and ``None`` extrema).  Defaults to False,
        matching the usual CEP behaviour of reporting only matched groups.
    aggregator_factory:
        Callable mapping a plan to a fresh sub-stream aggregator.  Defaults
        to :func:`~repro.core.base.create_aggregator`; the negation
        extension substitutes negation-aware aggregators here.
    """

    def __init__(self, query, emit_empty_groups: bool = False, aggregator_factory=None):
        if isinstance(query, CograPlan):
            self.plan = query
        elif isinstance(query, Query):
            self.plan = plan_query(query)
        else:
            raise TypeError(f"expected a Query or CograPlan, got {type(query).__name__}")
        self.query = self.plan.query
        self.emit_empty_groups = emit_empty_groups
        self._aggregator_factory = aggregator_factory or create_aggregator

        window = self.query.window
        #: set for count-based tumbling windows, which place events by
        #: arrival ordinal (``events_seen``) instead of timestamp and close
        #: on arrival of the next window's first event, never on watermarks
        self._count_window = (
            window if window is not None and window.is_count_based else None
        )
        self._aggregators: Dict[Tuple[int, Tuple], SubstreamAggregator] = {}
        self._window_groups: Dict[int, Set[Tuple]] = {}
        #: smallest open window id, or None; window ends grow with the id,
        #: so expiry checks can bail out in O(1) when nothing can close
        self._min_open_window: Optional[int] = None
        self._last_time: Optional[float] = None
        self._events_seen = 0
        self._relevant_types = frozenset(
            self.plan.automaton.variable_types[variable]
            for variable in self.plan.automaton.variables
        )

    # -- streaming interface -------------------------------------------------------

    def process(self, event: Event, partition_key: Optional[Tuple] = None) -> List[GroupResult]:
        """Feed one event; return the results of windows that just closed.

        ``partition_key`` lets a caller that already computed the event's
        grouping key (the streaming runtime routes one event to several
        executors sharing the same partition attributes) skip recomputing it.
        """
        if self._last_time is not None and event.time < self._last_time:
            raise StreamOrderError(
                f"event at time {event.time} arrived after time {self._last_time}"
            )
        self._last_time = event.time
        self._events_seen += 1

        count_window = self._count_window
        if count_window is not None:
            window_ids = [count_window.window_of_ordinal(self._events_seen - 1)]
            emitted = self._close_count_windows(window_ids[0])
        else:
            emitted = self._close_expired_windows(event.time)

        if self._is_filtered_out(event):
            return emitted

        key = partition_key if partition_key is not None else self.plan.partition_key(event)
        if count_window is None:
            window = self.query.window
            window_ids = [0] if window is None else window.windows_of(event.time)
        for window_id in window_ids:
            aggregator = self._aggregators.get((window_id, key))
            if aggregator is None:
                aggregator = self._aggregator_factory(self.plan)
                self._aggregators[(window_id, key)] = aggregator
                self._window_groups.setdefault(window_id, set()).add(key)
                if self._min_open_window is None or window_id < self._min_open_window:
                    self._min_open_window = window_id
            aggregator.process(event)
        return emitted

    def batch_is_quiet(self, start_time: float, end_time: float) -> bool:
        """True when an ordered run over ``[start_time, end_time]`` cannot emit.

        "Quiet" means no open window closes during the run and every event
        falls into the same window set, so :meth:`process_batch` may skip
        the per-event expiry checks and feed whole runs to one aggregator.
        Queries without a WITHIN clause never emit mid-stream, so they are
        always quiet.
        """
        window = self.query.window
        if window is None:
            return True
        if window.is_count_based:
            # the run's time span says nothing about ordinal boundaries, so
            # count windows always take the per-event path
            return False
        if (
            self._min_open_window is not None
            and window.window_end(self._min_open_window) <= end_time
        ):
            return False
        return window.windows_of(start_time) == window.windows_of(end_time)

    def process_batch(
        self, events: List[Event], partition_key: Optional[Tuple] = None
    ) -> List[GroupResult]:
        """Feed an ordered run of events; ≡ per-event :meth:`process`.

        When the run is quiet (see :meth:`batch_is_quiet`) the per-event
        order/expiry/window bookkeeping is hoisted out of the loop, the run
        is grouped by partition key, and each target aggregator sees its
        whole group in a single call -- aggregators that expose
        ``process_run`` fold it in one frame.  Grouping non-consecutive
        same-key events together is safe *because* the run is quiet: no
        window closes mid-run, each (window, key) aggregator only ever sees
        its own key's events in their original relative order, and window
        emission sorts group keys -- so state and output are byte-identical
        to the per-event path.  Non-quiet runs fall back to per-event
        processing.

        ``partition_key``, when given, asserts that every event in the run
        shares that key (the caller already grouped), skipping the per-event
        key computation.
        """
        count = len(events)
        if count == 0:
            return []
        if count == 1:
            return self.process(events[0], partition_key=partition_key)
        first_time = events[0].time
        last_time = events[-1].time
        if not self.batch_is_quiet(first_time, last_time):
            emitted: List[GroupResult] = []
            for event in events:
                emitted.extend(self.process(event, partition_key=partition_key))
            return emitted
        if self._last_time is not None and first_time < self._last_time:
            raise StreamOrderError(
                f"event at time {first_time} arrived after time {self._last_time}"
            )
        previous = first_time
        for event in events:
            if event.time < previous:
                raise StreamOrderError(
                    f"event at time {event.time} arrived after time {previous}"
                )
            previous = event.time
        self._last_time = last_time
        self._events_seen += count
        live = [event for event in events if not self._is_filtered_out(event)]
        if not live:
            return []
        if partition_key is not None:
            groups: Iterable[Tuple[Tuple, List[Event]]] = ((partition_key, live),)
        else:
            key_of = self.plan.partition_key
            grouped: Dict[Tuple, List[Event]] = {}
            for event in live:
                key = key_of(event)
                bucket = grouped.get(key)
                if bucket is None:
                    grouped[key] = [event]
                else:
                    bucket.append(event)
            groups = grouped.items()
        window = self.query.window
        window_ids = [0] if window is None else window.windows_of(first_time)
        aggregators = self._aggregators
        for key, group in groups:
            for window_id in window_ids:
                aggregator = aggregators.get((window_id, key))
                if aggregator is None:
                    aggregator = self._aggregator_factory(self.plan)
                    aggregators[(window_id, key)] = aggregator
                    self._window_groups.setdefault(window_id, set()).add(key)
                    if self._min_open_window is None or window_id < self._min_open_window:
                        self._min_open_window = window_id
                process_run = getattr(aggregator, "process_run", None)
                if process_run is not None:
                    process_run(group)
                elif len(group) == 1:
                    aggregator.process(group[0])
                else:
                    aggregator_process = aggregator.process
                    for event in group:
                        aggregator_process(event)
        return []

    def run(self, events: Iterable[Event]) -> List[GroupResult]:
        """Process a whole stream and return every emitted result."""
        collected: List[GroupResult] = []
        for event in events:
            collected.extend(self.process(event))
        collected.extend(self.flush())
        return collected

    def flush(self) -> List[GroupResult]:
        """Close every remaining window and return its results."""
        emitted: List[GroupResult] = []
        for window_id in sorted(self._window_groups):
            emitted.extend(self._emit_window(window_id))
        self._min_open_window = None
        return emitted

    def advance_time(self, time: float) -> List[GroupResult]:
        """Declare that no event before ``time`` will arrive any more.

        Emits (and evicts) every window whose end lies at or before ``time``
        without processing an event -- the hook the streaming runtime uses to
        drive window emission from watermarks instead of event arrivals.
        Events processed afterwards must carry timestamps ``>= time``.
        """
        if self._last_time is None or time > self._last_time:
            self._last_time = time
        return self._close_expired_windows(time)

    # -- inspection ------------------------------------------------------------------

    @property
    def events_seen(self) -> int:
        """Number of events fed into the executor so far."""
        return self._events_seen

    def open_window_count(self) -> int:
        """Number of windows currently maintained."""
        return len(self._window_groups)

    def open_group_count(self) -> int:
        """Number of (window, group) aggregators currently maintained."""
        return len(self._aggregators)

    def storage_units(self) -> int:
        """Scalar values currently stored across every open aggregator.

        This is the machine-independent memory metric used by the
        benchmark harness to reproduce the paper's memory charts.
        """
        return sum(aggregator.storage_units() for aggregator in self._aggregators.values())

    def stored_event_count(self) -> int:
        """Matched events currently stored across every open aggregator."""
        return sum(
            aggregator.stored_event_count() for aggregator in self._aggregators.values()
        )

    # -- internals ---------------------------------------------------------------------

    def _is_filtered_out(self, event: Event) -> bool:
        """Local predicates filter events of pattern types (Section 7).

        Events of types that do not occur in the pattern are never filtered
        here: they are invisible to the skip-till semantics but must still
        reach the pattern-grained aggregator to break contiguity.
        """
        if event.event_type not in self._relevant_types:
            return False
        return not self.plan.candidate_variables(event)

    def _close_count_windows(self, current_window: int) -> List[GroupResult]:
        """Emit every open count window that precedes ``current_window``."""
        if self._min_open_window is None or self._min_open_window >= current_window:
            return []
        emitted: List[GroupResult] = []
        expired = [
            window_id
            for window_id in self._window_groups
            if window_id < current_window
        ]
        for window_id in sorted(expired):
            emitted.extend(self._emit_window(window_id))
        self._min_open_window = (
            min(self._window_groups) if self._window_groups else None
        )
        return emitted

    def _close_expired_windows(self, time: float) -> List[GroupResult]:
        window = self.query.window
        if window is None or window.is_count_based:
            # count windows close on event arrival, not on watermarks
            return []
        if (
            self._min_open_window is None
            or window.window_end(self._min_open_window) > time
        ):
            return []  # the earliest open window is still live
        emitted: List[GroupResult] = []
        expired = [
            window_id
            for window_id in self._window_groups
            if window.window_end(window_id) <= time
        ]
        for window_id in sorted(expired):
            emitted.extend(self._emit_window(window_id))
        self._min_open_window = (
            min(self._window_groups) if self._window_groups else None
        )
        return emitted

    def _emit_window(self, window_id: int) -> List[GroupResult]:
        keys = self._window_groups.pop(window_id, set())
        start, end = window_bounds(self.query.window, window_id)
        emitted: List[GroupResult] = []
        for key in sorted(keys, key=repr):
            aggregator = self._aggregators.pop((window_id, key))
            accumulator = aggregator.final_accumulator()
            if accumulator.trend_count == 0 and not self.emit_empty_groups:
                continue
            group = dict(zip(self.plan.partition_attributes, key))
            emitted.append(
                GroupResult(
                    window_id=window_id,
                    window_start=start,
                    window_end=end,
                    group=group,
                    values=accumulator.results(self.query.aggregates),
                    trend_count=accumulator.trend_count,
                )
            )
        return emitted
