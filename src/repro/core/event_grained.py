"""Event-grained aggregator: the finest granularity (GRETA's strategy).

The mixed-grained aggregator of Section 5 degenerates to *event* granularity
when every pattern variable appears on the predecessor side of some adjacent
predicate (``Tt = ∅``).  This module implements that extreme case as its own
aggregator so that

* the granularity selector can report :class:`~repro.analyzer.granularity.
  Granularity.EVENT` and dispatch to a dedicated implementation, and
* ablation studies can force a coarser-eligible query down to event
  granularity and measure exactly what the coarse-grained strategies save
  (see :mod:`repro.bench.ablation`).

One accumulator is kept per matched event binding -- the node set of the
GRETA graph -- and processing a new event touches every stored node of a
predecessor variable.  Time complexity is ``O(n^2)`` and space ``Θ(n)`` per
sub-stream, which is exactly the complexity the paper attributes to GRETA
and improves upon with the type/mixed/pattern granularities.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analyzer.plan import CograPlan
from repro.core.aggregate_state import TrendAccumulator
from repro.core.base import SubstreamAggregator
from repro.events.event import Event


class EventGrainedAggregator(SubstreamAggregator):
    """Maintains one trend accumulator per matched event binding."""

    def __init__(self, plan: CograPlan):
        super().__init__(plan)
        #: variable -> list of (event, accumulator of trends ending at that event)
        self._nodes: Dict[str, List[Tuple[Event, TrendAccumulator]]] = {
            variable: [] for variable in plan.automaton.variables
        }
        #: accumulator of all finished trends seen so far
        self._final = TrendAccumulator.zero(plan.targets)

    # -- hot path -----------------------------------------------------------------

    def process(self, event: Event) -> None:
        """Insert ``event`` into the graph and update the affected accumulators."""
        plan = self.plan
        variables = plan.candidate_variables(event)
        if not variables:
            return  # irrelevant events are skipped under skip-till-any-match
        self.events_processed += 1

        staged: List[Tuple[str, TrendAccumulator]] = []
        for variable in variables:
            predecessor = TrendAccumulator.zero(plan.targets)
            for predecessor_variable in plan.automaton.pred_types(variable):
                for stored_event, stored_cell in self._nodes[predecessor_variable]:
                    if plan.adjacency_satisfied(
                        stored_event, predecessor_variable, event, variable
                    ):
                        predecessor.merge(stored_cell)
            cell = predecessor.extended(event, variable)
            if plan.is_start(variable):
                cell.merge(TrendAccumulator.singleton(event, variable, plan.targets))
            staged.append((variable, cell))

        # Staged updates are applied only after every binding has been
        # computed against the pre-event graph, so an event bound to several
        # variables is never its own predecessor (Section 8).
        for variable, cell in staged:
            self._nodes[variable].append((event, cell))
            if plan.is_end(variable):
                self._final.merge(cell)

    # -- results -------------------------------------------------------------------

    def final_accumulator(self) -> TrendAccumulator:
        return self._final.copy()

    def stored_nodes(self, variable: str) -> List[Tuple[Event, TrendAccumulator]]:
        """Stored (event, accumulator) pairs of ``variable`` (for inspection)."""
        return list(self._nodes[variable])

    # -- memory accounting -------------------------------------------------------------

    def storage_units(self) -> int:
        units = self._final.storage_units
        for entries in self._nodes.values():
            for _, cell in entries:
                # the stored event itself counts as one unit besides its cell
                units += 1 + cell.storage_units
        return units

    def stored_event_count(self) -> int:
        return sum(len(entries) for entries in self._nodes.values())
