"""Type-grained aggregator: Algorithm 1 of the paper (Section 4).

Applicable to queries under skip-till-any-match without predicates on
adjacent events.  One accumulator is maintained per pattern variable; every
matched event updates the accumulator of its variable and is discarded
immediately.  Time complexity is ``O(n * l)`` and space ``Θ(l)`` for ``n``
events per window and pattern length ``l`` -- both optimal (Theorems 4.2
and 4.3).

For the running example ``(SEQ(A+, B))+`` over the stream
``a1 b2 a3 a4 c5 b6 a7 b8`` the maintained counts evolve exactly as in
Table 5 of the paper and the final count is 43.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analyzer.plan import CograPlan
from repro.core.aggregate_state import TrendAccumulator
from repro.core.base import SubstreamAggregator
from repro.events.event import Event


class TypeGrainedAggregator(SubstreamAggregator):
    """Maintains one trend accumulator per pattern variable."""

    def __init__(self, plan: CograPlan):
        super().__init__(plan)
        targets = plan.targets
        #: variable -> accumulator of all (partial) trends ending at that variable
        self._cells: Dict[str, TrendAccumulator] = {
            variable: TrendAccumulator.zero(targets)
            for variable in plan.automaton.variables
        }

    # -- hot path -----------------------------------------------------------------

    def process(self, event: Event) -> None:
        """Algorithm 1, lines 3-8 (generalised to all Table 8 aggregates)."""
        plan = self.plan
        variables = plan.candidate_variables(event)
        if not variables:
            return  # irrelevant events are skipped under skip-till-any-match
        self.events_processed += 1

        # Compute the new per-event accumulators against the *old* cells so
        # that an event bound to several variables (Section 8, repeated
        # types) is never its own predecessor.
        new_cells: List[Tuple[str, TrendAccumulator]] = []
        for variable in variables:
            predecessor = TrendAccumulator.zero(plan.targets)
            for predecessor_variable in plan.automaton.pred_types(variable):
                predecessor.merge(self._cells[predecessor_variable])
            cell = predecessor.extended(event, variable)
            if plan.is_start(variable):
                cell.merge(
                    TrendAccumulator.singleton(event, variable, plan.targets)
                )
            new_cells.append((variable, cell))

        for variable, cell in new_cells:
            self._cells[variable].merge(cell)

    def process_run(self, events) -> None:
        """Process an ordered run of events; ≡ sequential :meth:`process` calls.

        The per-event recurrence is identical, but plan lookups are hoisted
        out of the loop and the predecessor merge is extended in place
        (:meth:`TrendAccumulator.extend` / :meth:`~TrendAccumulator.include_singleton`)
        instead of allocating three intermediate accumulators per event.
        Events bound to several variables (repeated types, Section 8) still
        buffer their new cells so an event is never its own predecessor.
        """
        plan = self.plan
        candidate_variables = plan.candidate_variables
        targets = plan.targets
        pred_types = plan.automaton.pred_types
        is_start = plan.is_start
        cells = self._cells
        zero = TrendAccumulator.zero
        processed = 0
        for event in events:
            variables = candidate_variables(event)
            if not variables:
                continue
            processed += 1
            if len(variables) == 1:
                variable = variables[0]
                cell = zero(targets)
                for predecessor_variable in pred_types(variable):
                    cell.merge(cells[predecessor_variable])
                cell.extend(event, variable)
                if is_start(variable):
                    cell.include_singleton(event, variable)
                cells[variable].merge(cell)
                continue
            new_cells: List[Tuple[str, TrendAccumulator]] = []
            for variable in variables:
                cell = zero(targets)
                for predecessor_variable in pred_types(variable):
                    cell.merge(cells[predecessor_variable])
                cell.extend(event, variable)
                if is_start(variable):
                    cell.include_singleton(event, variable)
                new_cells.append((variable, cell))
            for variable, cell in new_cells:
                cells[variable].merge(cell)
        self.events_processed += processed

    # -- results -------------------------------------------------------------------

    def final_accumulator(self) -> TrendAccumulator:
        """Merge of the accumulators of all end variables."""
        final = TrendAccumulator.zero(self.plan.targets)
        for variable in self.plan.automaton.end_variables:
            final.merge(self._cells[variable])
        return final

    def cell(self, variable: str) -> TrendAccumulator:
        """Accumulator currently maintained for ``variable`` (for inspection)."""
        return self._cells[variable]

    # -- memory accounting -------------------------------------------------------------

    def storage_units(self) -> int:
        return sum(cell.storage_units for cell in self._cells.values())
