"""Pattern-grained aggregator: Algorithm 3 of the paper (Section 6).

Applicable to queries under the skip-till-next-match and contiguous
semantics.  Under these semantics an event has at most one predecessor
event in any trend (Theorem 6.1), so it suffices to keep

* the last matched event together with the accumulator of the (partial)
  trends ending at it, and
* the accumulator of all finished trends.

Time complexity is ``O(n)`` and space ``O(1)`` (Theorems 6.3 and 6.4).

Behavioural notes (faithful to Algorithm 3):

* Under skip-till-next-match an event that cannot extend the last matched
  event and is not of a start type is simply skipped.
* Under the contiguous semantics such an event -- as well as any event of a
  type that does not occur in the pattern -- invalidates the partial trends
  ending at the last matched event: the last event is reset to ``null``.
* An event bound to a start type always begins a new trend; it also becomes
  the new last matched event.
"""

from __future__ import annotations

from typing import Optional

from repro.analyzer.plan import CograPlan
from repro.core.aggregate_state import TrendAccumulator
from repro.core.base import SubstreamAggregator
from repro.events.event import Event
from repro.query.semantics import Semantics


class PatternGrainedAggregator(SubstreamAggregator):
    """Keeps only the last matched event and the final accumulator."""

    def __init__(self, plan: CograPlan):
        super().__init__(plan)
        targets = plan.targets
        self._last_event: Optional[Event] = None
        self._last_variable: Optional[str] = None
        self._last_cell = TrendAccumulator.zero(targets)
        self._final = TrendAccumulator.zero(targets)

    # -- hot path -----------------------------------------------------------------

    def process(self, event: Event) -> None:
        """Algorithm 3, lines 2-9 (generalised to all Table 8 aggregates)."""
        plan = self.plan
        variables = plan.candidate_variables(event)
        if not variables:
            # The event cannot be matched at all.  Under the contiguous
            # semantics it still invalidates the running partial trends.
            if plan.semantics is Semantics.CONTIGUOUS:
                self._reset_last()
            return

        variable = variables[0]
        self.events_processed += 1

        adjacent = (
            self._last_event is not None
            and self._last_variable is not None
            and plan.adjacency_satisfied(
                self._last_event, self._last_variable, event, variable
            )
        )
        matched = adjacent or plan.is_start(variable)

        if not matched:
            if plan.semantics is Semantics.CONTIGUOUS:
                self._reset_last()
            return

        if adjacent:
            cell = self._last_cell.extended(event, variable)
        else:
            cell = TrendAccumulator.zero(plan.targets)
        if plan.is_start(variable):
            cell.merge(TrendAccumulator.singleton(event, variable, plan.targets))
        if plan.is_end(variable):
            self._final.merge(cell)

        self._last_event = event
        self._last_variable = variable
        self._last_cell = cell

    def process_run(self, events) -> None:
        """Process an ordered run of events; ≡ sequential :meth:`process` calls.

        Maximal sub-runs of adjacent middle-of-pattern events (same
        variable, neither start nor end) are folded through
        :meth:`TrendAccumulator.extend_batch`: one accumulator copy per
        sub-run instead of one per event.  Every other event -- start/end
        bindings, unmatched events, contiguity breakers -- takes the
        per-event path, so the resulting state is identical.
        """
        plan = self.plan
        candidate_variables = plan.candidate_variables
        adjacency_satisfied = plan.adjacency_satisfied
        is_start = plan.is_start
        is_end = plan.is_end
        index = 0
        count = len(events)
        while index < count:
            event = events[index]
            variables = candidate_variables(event)
            if not variables:
                self.process(event)
                index += 1
                continue
            variable = variables[0]
            if is_start(variable) or is_end(variable):
                self.process(event)
                index += 1
                continue
            last_event = self._last_event
            last_variable = self._last_variable
            if (
                last_event is None
                or last_variable is None
                or not adjacency_satisfied(last_event, last_variable, event, variable)
            ):
                self.process(event)
                index += 1
                continue
            # collect the maximal adjacent middle run starting here
            run = [event]
            last_event = event
            stop = index + 1
            while stop < count:
                candidate = events[stop]
                next_variables = candidate_variables(candidate)
                if not next_variables:
                    break
                next_variable = next_variables[0]
                if (
                    next_variable != variable
                    or is_start(next_variable)
                    or is_end(next_variable)
                    or not adjacency_satisfied(
                        last_event, variable, candidate, next_variable
                    )
                ):
                    break
                run.append(candidate)
                last_event = candidate
                stop += 1
            self.events_processed += len(run)
            self._last_cell = self._last_cell.extend_batch(run, variable)
            self._last_event = last_event
            self._last_variable = variable
            index = stop

    def _reset_last(self) -> None:
        """Invalidate the partial trends ending at the last matched event."""
        self._last_event = None
        self._last_variable = None
        self._last_cell = TrendAccumulator.zero(self.plan.targets)

    # -- results -------------------------------------------------------------------

    def final_accumulator(self) -> TrendAccumulator:
        return self._final.copy()

    @property
    def last_event(self) -> Optional[Event]:
        """The last matched event (for inspection in tests)."""
        return self._last_event

    @property
    def last_cell(self) -> TrendAccumulator:
        """Accumulator of the partial trends ending at the last matched event."""
        return self._last_cell

    # -- memory accounting -------------------------------------------------------------

    def storage_units(self) -> int:
        units = self._final.storage_units + self._last_cell.storage_units
        if self._last_event is not None:
            units += 1
        return units

    def stored_event_count(self) -> int:
        return 1 if self._last_event is not None else 0
