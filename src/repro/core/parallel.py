"""Partition-parallel query execution (Sections 7 and 8, "Parallel Processing").

Equivalence predicates and the GROUP-BY clause partition the stream into
sub-streams that are independent of each other, so they can be processed in
parallel.  This module provides

* :class:`ParallelExecutor` -- evaluates one query by splitting the stream
  on its partition attributes and running one
  :class:`~repro.core.executor.QueryExecutor` per partition on a thread
  pool,
* :func:`partition_stream` -- the deterministic splitting helper it uses, and
* :func:`shard_index` -- the stable partition-key -> shard mapping shared
  with the multi-process streaming deployment.

Python threads do not give CPU parallelism for pure-Python hot loops (the
GIL), so the executor's purpose in this reproduction is to demonstrate the
*scalability structure* the paper describes -- partitions never interact, so
results are identical to sequential execution regardless of the worker
count.  The multi-process deployment this structure enables is
:class:`~repro.streaming.sharded.ShardedRuntime`, which runs one worker
*process* per hash-range of partition keys and achieves true CPU
parallelism; this module stays the single-process, finite-stream
counterpart.  The benchmark suite checks the structural property here
(identical results, per-partition isolation) and measures wall-clock
speed-up in ``benchmarks/bench_sharded_runtime.py``.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analyzer.plan import CograPlan, plan_query
from repro.core.executor import QueryExecutor
from repro.core.results import GroupResult
from repro.errors import InvalidQueryError
from repro.events.event import Event
from repro.query.query import Query

#: A partition is identified by the values of the query's partition attributes.
PartitionKey = Tuple


def partition_stream(
    plan: CograPlan, events: Iterable[Event]
) -> Dict[PartitionKey, List[Event]]:
    """Split ``events`` into per-partition lists, preserving arrival order.

    Every event is routed by the values of the query's partition attributes
    (GROUP-BY plus stream-partitioning ``[attr]`` predicates), exactly like
    the sequential :class:`~repro.core.executor.QueryExecutor` does, so a
    partition-parallel run produces identical results.  Queries without
    partition attributes yield a single partition.
    """
    partitions: Dict[PartitionKey, List[Event]] = {}
    for event in events:
        partitions.setdefault(plan.partition_key(event), []).append(event)
    return partitions


def shard_index(key: PartitionKey, shard_count: int) -> int:
    """Deterministic owner shard of a partition key.

    Both the sharded streaming runtime's router and its checkpoint
    splitter map keys to workers through this function, so a checkpoint
    taken under one worker count restores correctly under another.  The
    hash is CRC-32 of the key's ``repr`` rather than the builtin ``hash``:
    per-process ``PYTHONHASHSEED`` randomisation would make workers and
    parent disagree about key ownership.
    """
    if shard_count <= 1:
        return 0
    return zlib.crc32(repr(key).encode("utf-8")) % shard_count


class ParallelExecutor:
    """Evaluate a query partition-parallel over a finite stream.

    This is the single-process (thread pool) form of the paper's
    partition parallelism; the multi-process streaming form is
    :class:`~repro.streaming.sharded.ShardedRuntime`, which routes the
    same partition keys across worker processes via :func:`shard_index`.

    Parameters
    ----------
    query:
        The query (or a pre-computed plan) to evaluate.  Queries without
        partition attributes run as a single partition.
    workers:
        Number of worker threads.  Defaults to the number of partitions
        (capped at 8), never less than 1.
    emit_empty_groups:
        Forwarded to the per-partition executors.
    """

    def __init__(
        self,
        query,
        workers: Optional[int] = None,
        emit_empty_groups: bool = False,
    ):
        if isinstance(query, CograPlan):
            self.plan = query
        elif isinstance(query, Query):
            self.plan = plan_query(query)
        else:
            raise TypeError(f"expected a Query or CograPlan, got {type(query).__name__}")
        if workers is not None and workers < 1:
            raise InvalidQueryError(f"worker count must be at least 1, got {workers}")
        self.query = self.plan.query
        self.workers = workers
        self.emit_empty_groups = emit_empty_groups
        #: number of partitions evaluated by the last :meth:`run`
        self.partition_count = 0
        #: per-partition event counts of the last run (for load inspection)
        self.partition_sizes: Dict[PartitionKey, int] = {}

    # -- evaluation ------------------------------------------------------------------

    def run(self, events: Iterable[Event]) -> List[GroupResult]:
        """Evaluate the query over ``events`` and return all results.

        Results are returned in a deterministic order (window id, then
        group key), identical to what a sequential run produces.
        """
        partitions = partition_stream(self.plan, events)
        self.partition_count = len(partitions)
        self.partition_sizes = {key: len(bucket) for key, bucket in partitions.items()}
        if not partitions:
            return []

        worker_count = self.workers or min(8, len(partitions))
        worker_count = max(1, min(worker_count, len(partitions)))

        ordered_keys = sorted(partitions, key=repr)
        if worker_count == 1:
            chunks = [self._run_partition(partitions[key]) for key in ordered_keys]
        else:
            with ThreadPoolExecutor(max_workers=worker_count) as pool:
                chunks = list(
                    pool.map(lambda key: self._run_partition(partitions[key]), ordered_keys)
                )

        results = [result for chunk in chunks for result in chunk]
        results.sort(key=lambda result: (result.window_id, repr(result.group_key)))
        return results

    def _run_partition(self, events: Sequence[Event]) -> List[GroupResult]:
        executor = QueryExecutor(self.plan, emit_empty_groups=self.emit_empty_groups)
        return executor.run(events)

    def __repr__(self) -> str:
        return f"ParallelExecutor({self.query.name!r}, workers={self.workers or 'auto'})"
