"""Stream partitioning helpers (Section 7 of the paper).

Sliding windows, GROUP-BY attributes and stream-partitioning equivalence
predicates ``[attr]`` split the input stream into independent sub-streams.
The COGRA executor partitions lazily, event by event; the two-step baselines
and the correctness oracle partition eagerly with the helpers of this
module so that every approach agrees on what a sub-stream is.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.events.event import Event
from repro.query.query import Query
from repro.query.windows import WindowSpec

#: A sub-stream is identified by its window id and its group key.
SubstreamKey = Tuple[int, Tuple]


def group_key(event: Event, attributes: Sequence[str]) -> Tuple:
    """Grouping key of ``event`` for the given partition attributes."""
    return tuple(event.get(attribute) for attribute in attributes)


def partition_by_group(
    events: Iterable[Event], attributes: Sequence[str]
) -> Dict[Tuple, List[Event]]:
    """Split ``events`` into per-group lists, preserving arrival order."""
    groups: Dict[Tuple, List[Event]] = {}
    for event in events:
        groups.setdefault(group_key(event, attributes), []).append(event)
    return groups


def windows_of(event: Event, window: Optional[WindowSpec]) -> List[int]:
    """Window identifiers containing ``event`` (``[0]`` without a window)."""
    if window is None:
        return [0]
    return window.windows_of(event.time)


def window_bounds(window: Optional[WindowSpec], window_id: int) -> Tuple[Optional[float], Optional[float]]:
    """``(start, end)`` of the window or ``(None, None)`` without a window."""
    if window is None:
        return (None, None)
    return window.window_interval(window_id)


def substreams(
    query: Query, events: Iterable[Event]
) -> Iterator[Tuple[SubstreamKey, List[Event]]]:
    """Yield ``((window_id, group_key), events)`` sub-streams of ``query``.

    Events are replicated into every window that contains them, exactly as
    the runtime executor does.  The order of events inside a sub-stream is
    the arrival order, and sub-streams are yielded ordered by window id and
    then by first appearance of the group.
    """
    attributes = query.partition_attributes
    window = query.window
    collected: Dict[SubstreamKey, List[Event]] = {}
    for event in events:
        key = group_key(event, attributes)
        for window_id in windows_of(event, window):
            collected.setdefault((window_id, key), []).append(event)
    for substream_key in sorted(collected, key=lambda item: (item[0], repr(item[1]))):
        yield substream_key, collected[substream_key]


def filter_local_predicates(query: Query, events: Iterable[Event]) -> List[Event]:
    """Drop events of pattern types that fail the query's local predicates.

    Events of types that do not occur in the pattern are kept: they are
    invisible to skip-till-any/next-match but break contiguity under the
    contiguous semantics (like ``c5`` in the paper's running example).
    """
    variable_types = query.pattern.variable_types()
    types_of_pattern = set(variable_types.values())
    local = query.local_predicates
    if not local:
        return list(events)

    def passes(event: Event) -> bool:
        if event.event_type not in types_of_pattern:
            return True
        relevant_variables = [
            variable
            for variable, event_type in variable_types.items()
            if event_type == event.event_type
        ]
        for variable in relevant_variables:
            ok = True
            for predicate in local:
                if predicate.variable in (None, variable) and not predicate.evaluate(event):
                    ok = False
                    break
            if ok:
                return True
        return False

    return [event for event in events if passes(event)]
