"""Public facade of the COGRA runtime.

:class:`CograEngine` is the recommended entry point of the library::

    from repro import CograEngine

    engine = CograEngine.from_text('''
        RETURN patient, MIN(M.rate), MAX(M.rate)
        PATTERN Measurement M+
        SEMANTICS contiguous
        WHERE [patient] AND M.rate < NEXT(M).rate AND M.activity = 'passive'
        GROUP-BY patient
        WITHIN 10 minutes SLIDE 30 seconds
    ''')
    results = engine.run(stream)

The engine wraps the static analyzer and the runtime executor; it can be
used in batch mode (:meth:`run`) or incrementally (:meth:`process` /
:meth:`flush`).
"""

from __future__ import annotations

from typing import Iterable, List, Union

from repro.analyzer.plan import CograPlan, plan_query
from repro.core.executor import QueryExecutor
from repro.core.results import GroupResult
from repro.events.event import Event
from repro.query.parser import parse_query
from repro.query.query import Query


class CograEngine:
    """Evaluate event trend aggregation queries with the COGRA strategy.

    Parameters
    ----------
    query:
        A :class:`~repro.query.query.Query` or the textual form of one.
    emit_empty_groups:
        When True, groups with zero matched trends are emitted as well.
    granularity:
        Optional granularity override (a :class:`~repro.analyzer.granularity.
        Granularity` or its string value).  Only finer, still-correct
        granularities are accepted; used by ablation studies to compare
        COGRA's coarse granularities against GRETA-style event granularity.
    """

    def __init__(
        self,
        query: Union[Query, str],
        emit_empty_groups: bool = False,
        granularity=None,
    ):
        if isinstance(query, str):
            query = parse_query(query)
        self.query: Query = query
        if query.pattern.has_negation:
            # Queries with negated sub-patterns are planned for their positive
            # part and executed with negation-aware aggregators (Section 8).
            from repro.extensions.negation import (
                create_negation_aggregator,
                plan_negated_query,
            )

            self.plan, self.negation_analysis = plan_negated_query(
                query, forced_granularity=granularity
            )
            components = self.negation_analysis.components
            self._aggregator_factory = (
                lambda plan: create_negation_aggregator(plan, components)
            )
        else:
            self.plan: CograPlan = plan_query(query, forced_granularity=granularity)
            self.negation_analysis = None
            self._aggregator_factory = None
        self._emit_empty_groups = emit_empty_groups
        self._executor = self._build_executor()

    # -- constructors ----------------------------------------------------------------

    @classmethod
    def from_text(cls, text: str, name: str = "") -> "CograEngine":
        """Build an engine from the textual query language."""
        return cls(parse_query(text, name=name))

    # -- evaluation ------------------------------------------------------------------

    def run(self, events: Iterable[Event]) -> List[GroupResult]:
        """Evaluate the query over a finite stream and return all results.

        The engine is reset before the run, so :meth:`run` can be called
        repeatedly with different streams.
        """
        self.reset()
        return self._executor.run(events)

    def process(self, event: Event) -> List[GroupResult]:
        """Feed one event; return results of any windows that closed."""
        return self._executor.process(event)

    def flush(self) -> List[GroupResult]:
        """Close all open windows and return their results."""
        return self._executor.flush()

    def reset(self) -> None:
        """Discard all runtime state while keeping the compiled plan."""
        self._executor = self._build_executor()

    def _build_executor(self) -> QueryExecutor:
        return QueryExecutor(
            self.plan,
            emit_empty_groups=self._emit_empty_groups,
            aggregator_factory=self._aggregator_factory,
        )

    # -- introspection ------------------------------------------------------------------

    def explain(self) -> str:
        """Describe the COGRA configuration chosen by the static analyzer."""
        text = self.plan.describe()
        if self.negation_analysis is not None and self.negation_analysis.has_negations:
            negations = "; ".join(
                component.describe() for component in self.negation_analysis.components
            )
            text += f"\nnegations   : {negations}"
        return text

    @property
    def granularity(self) -> str:
        """Granularity selected for the query (pattern / type / mixed / event)."""
        return self.plan.granularity.value

    def storage_units(self) -> int:
        """Current number of stored scalar aggregates (memory metric)."""
        return self._executor.storage_units()

    def stored_event_count(self) -> int:
        """Current number of stored matched events."""
        return self._executor.stored_event_count()

    def __repr__(self) -> str:
        return f"CograEngine({self.query.name!r}, granularity={self.granularity})"
