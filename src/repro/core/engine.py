"""Public facade of the COGRA runtime.

:class:`CograEngine` is the recommended entry point of the library::

    from repro import CograEngine

    engine = CograEngine.from_text('''
        RETURN patient, MIN(M.rate), MAX(M.rate)
        PATTERN Measurement M+
        SEMANTICS contiguous
        WHERE [patient] AND M.rate < NEXT(M).rate AND M.activity = 'passive'
        GROUP-BY patient
        WITHIN 10 minutes SLIDE 30 seconds
    ''')
    results = engine.run(stream)

The engine wraps the static analyzer and the runtime executor; it can be
used in batch mode (:meth:`run`) or incrementally (:meth:`process` /
:meth:`flush`).
"""

from __future__ import annotations

from typing import Iterable, List, Union

from repro.analyzer.plan import CograPlan, plan_query
from repro.core.executor import QueryExecutor
from repro.core.results import GroupResult
from repro.events.event import Event
from repro.query.parser import parse_query
from repro.query.query import Query


class CograEngine:
    """Evaluate event trend aggregation queries with the COGRA strategy.

    Parameters
    ----------
    query:
        A :class:`~repro.query.query.Query` or the textual form of one.
    emit_empty_groups:
        When True, groups with zero matched trends are emitted as well.
    granularity:
        Optional granularity override (a :class:`~repro.analyzer.granularity.
        Granularity` or its string value).  Only finer, still-correct
        granularities are accepted; used by ablation studies to compare
        COGRA's coarse granularities against GRETA-style event granularity.
    """

    def __init__(
        self,
        query: Union[Query, str],
        emit_empty_groups: bool = False,
        granularity=None,
    ):
        if isinstance(query, str):
            query = parse_query(query)
        self.query: Query = query
        if query.pattern.has_negation:
            # Queries with negated sub-patterns are planned for their positive
            # part and executed with negation-aware aggregators (Section 8).
            from repro.extensions.negation import (
                create_negation_aggregator,
                plan_negated_query,
            )

            self.plan, self.negation_analysis = plan_negated_query(
                query, forced_granularity=granularity
            )
            components = self.negation_analysis.components
            self._aggregator_factory = (
                lambda plan: create_negation_aggregator(plan, components)
            )
        else:
            self.plan: CograPlan = plan_query(query, forced_granularity=granularity)
            self.negation_analysis = None
            self._aggregator_factory = None
        self._emit_empty_groups = emit_empty_groups
        self._stream_active = False
        self._executor = self._build_executor()

    # -- constructors ----------------------------------------------------------------

    @classmethod
    def from_text(cls, text: str, name: str = "") -> "CograEngine":
        """Build an engine from the textual query language."""
        return cls(parse_query(text, name=name))

    # -- evaluation ------------------------------------------------------------------

    def run(self, events: Iterable[Event]) -> List[GroupResult]:
        """Evaluate the query over a finite stream and return all results.

        The engine is reset before the run, so :meth:`run` can be called
        repeatedly with different streams.
        """
        self.reset()
        return self._executor.run(events)

    def process(self, event: Event) -> List[GroupResult]:
        """Feed one event; return results of any windows that closed."""
        self._check_not_streaming("process")
        return self._executor.process(event)

    def flush(self) -> List[GroupResult]:
        """Close all open windows and return their results."""
        self._check_not_streaming("flush")
        return self._executor.flush()

    def advance_time(self, time: float) -> List[GroupResult]:
        """Close (and return) windows ending at or before ``time``.

        Used by the streaming runtime to drive window emission from
        watermarks instead of event arrivals; see
        :meth:`~repro.core.executor.QueryExecutor.advance_time`.
        """
        self._check_not_streaming("advance_time")
        return self._executor.advance_time(time)

    def _check_not_streaming(self, operation: str) -> None:
        """Engine state is owned by an active stream() run; reject mutation."""
        if self._stream_active:
            raise RuntimeError(
                f"cannot call {operation}() while one of this engine's "
                "stream() runs is active; exhaust or close the generator "
                "first, or use a separate engine"
            )

    def stream(
        self,
        events: Iterable[Event],
        lateness: float = 0.0,
        watermark_strategy=None,
        late_policy="raise",
        workers: int = 1,
        observability=None,
    ):
        """Evaluate the query over a possibly out-of-order stream, lazily.

        Yields each :class:`GroupResult` as soon as the watermark passes its
        window -- before end of stream -- instead of collecting everything
        like :meth:`run`.  ``events`` may be any iterable or an
        :class:`~repro.streaming.sources.EventSource` (a tailed JSONL file,
        a socket, ...); ``lateness`` bounds the tolerated disorder in
        seconds; see :class:`~repro.streaming.runtime.StreamingRuntime` for
        the full option set (this method is the single-query shortcut).

        Events later than ``lateness`` allows raise
        :class:`~repro.errors.LateEventError` by default, mirroring
        :meth:`run`'s strictness on disorder -- pass ``late_policy="drop"``
        (and use a :class:`~repro.streaming.runtime.StreamingRuntime`
        directly when you need its metrics and side channel) to tolerate
        loss instead.

        ``workers > 1`` runs the stream on a
        :class:`~repro.streaming.sharded.ShardedRuntime`: one worker
        process per hash-range of partition keys, with ingestion and
        watermarking in this process.  Execution state then lives in the
        workers, so :meth:`storage_units` and friends observe nothing;
        results may also trail the input by a batching interval (they are
        complete when the iterator is exhausted).  Queries without
        partition attributes fall back to one shard with a warning.

        With ``workers=1`` the engine itself hosts the execution (it is
        reset first), so :meth:`storage_units` and friends observe the
        streaming run.  Either way the engine is claimed *at the call*, not
        at first iteration: until the returned iterator is exhausted or
        closed, any other mutation (:meth:`run`, :meth:`process`,
        :meth:`flush`, :meth:`reset`, or a second :meth:`stream`) raises
        :class:`RuntimeError` instead of silently mixing two streams into
        one executor.

        ``observability`` accepts an
        :class:`~repro.streaming.observability.Observability` bundle --
        e.g. one with a sampling tracer attached, or
        ``Observability.disabled()`` to strip instrumentation; the
        default collects registry metrics with tracing off.

        Internally the kwargs assemble a
        :class:`~repro.streaming.config.JobConfig` -- the declarative spec
        behind every entry point -- and the runtime is resolved from it;
        multi-query jobs, sinks, checkpointing and recovery are the
        config's (and :func:`repro.job`'s) territory.
        """
        from repro.streaming.config import (
            JobConfig,
            LatenessConfig,
            ShardConfig,
            WatermarkConfig,
        )

        config = JobConfig(
            watermark=WatermarkConfig(lateness=float(lateness)),
            late=LatenessConfig.of(late_policy),
            shards=ShardConfig(workers=workers),
            emit_empty_groups=self._emit_empty_groups,
        )
        runtime = config.build_runtime(
            watermark_strategy=watermark_strategy,
            register=False,
            observability=observability,
        )
        if workers > 1:
            # the engine cannot host sharded execution (state lives in the
            # worker processes); ship the definition at this engine's
            # resolved granularity instead
            runtime.register(self.query, granularity=self.granularity)
            self.reset()
        else:
            runtime.register(self)  # resets the engine, so claim afterwards
        self._stream_active = True
        return _StreamRun(self, self._stream_records(runtime, events))

    def _stream_records(self, runtime, events: Iterable[Event]):
        try:
            # the runtimes' shared pipeline driver owns ingestion (and closes
            # the source); ``events`` may equally be an EventSource -- e.g. a
            # tailed file or socket (repro.streaming.sources)
            for record in runtime.drive(events):
                yield record.result
        finally:
            # stops ShardedRuntime workers on early close; no-op otherwise
            runtime.close()

    def reset(self) -> None:
        """Discard all runtime state while keeping the compiled plan."""
        self._check_not_streaming("reset")
        self._executor = self._build_executor()

    def _build_executor(self) -> QueryExecutor:
        return QueryExecutor(
            self.plan,
            emit_empty_groups=self._emit_empty_groups,
            aggregator_factory=self._aggregator_factory,
        )

    # -- introspection ------------------------------------------------------------------

    @property
    def executor(self) -> QueryExecutor:
        """The current runtime executor (replaced by :meth:`reset`)."""
        return self._executor

    def explain(self) -> str:
        """Describe the COGRA configuration chosen by the static analyzer."""
        text = self.plan.describe()
        if self.negation_analysis is not None and self.negation_analysis.has_negations:
            negations = "; ".join(
                component.describe() for component in self.negation_analysis.components
            )
            text += f"\nnegations   : {negations}"
        return text

    @property
    def granularity(self) -> str:
        """Granularity selected for the query (pattern / type / mixed / event)."""
        return self.plan.granularity.value

    def storage_units(self) -> int:
        """Current number of stored scalar aggregates (memory metric)."""
        return self._executor.storage_units()

    def stored_event_count(self) -> int:
        """Current number of stored matched events."""
        return self._executor.stored_event_count()

    def __repr__(self) -> str:
        return f"CograEngine({self.query.name!r}, granularity={self.granularity})"


class _StreamRun:
    """Iterator returned by :meth:`CograEngine.stream`.

    Owns the engine's ``_stream_active`` claim and releases it on
    exhaustion, on any error raised mid-iteration, on :meth:`close`, and on
    garbage collection -- including when the iterator was never started
    (a bare generator's ``finally`` would not run in that case).
    """

    __slots__ = ("_engine", "_generator", "_released")

    def __init__(self, engine: CograEngine, generator):
        self._engine = engine
        self._generator = generator
        self._released = False

    def __iter__(self) -> "_StreamRun":
        return self

    def __next__(self) -> GroupResult:
        try:
            return next(self._generator)
        except BaseException:
            # StopIteration, LateEventError, anything: a generator cannot
            # be resumed after raising, so the claim can be released
            self._release()
            raise

    def close(self) -> None:
        """Abandon the stream and free the engine for other use."""
        self._generator.close()
        self._release()

    def _release(self) -> None:
        if not self._released:
            self._released = True
            self._engine._stream_active = False

    def __del__(self):  # pragma: no cover - GC timing dependent
        self._release()
