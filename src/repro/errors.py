"""Exception hierarchy for the COGRA reproduction.

Every error raised by the library derives from :class:`CograError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish parse errors from planning or runtime
errors.
"""

from __future__ import annotations


class CograError(Exception):
    """Base class for all errors raised by this library."""


class QueryParseError(CograError):
    """Raised when the textual query language cannot be parsed."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class InvalidPatternError(CograError):
    """Raised when a pattern violates the structural rules of the model.

    Examples: an empty sequence, a Kleene operator applied to nothing, or a
    pattern in which the same variable name is bound twice.
    """


class InvalidQueryError(CograError):
    """Raised when a query is structurally valid but semantically unusable.

    Examples: an aggregate referring to a variable that does not occur in
    the pattern, a window whose slide is non-positive, or a semantics that
    an approach does not support.
    """


class UnsupportedQueryError(CograError):
    """Raised by an execution approach that cannot evaluate a query.

    The baselines reproduce the expressive-power limits of the original
    systems (Table 9 of the paper): for instance A-Seq refuses queries with
    predicates on adjacent events and GRETA refuses the contiguous
    semantics.
    """


class PlanningError(CograError):
    """Raised when the static analyzer cannot derive a COGRA configuration."""


class StreamOrderError(CograError):
    """Raised when events are fed to an executor out of timestamp order."""


class InvalidEventError(CograError):
    """Raised when serialized event data (JSONL, checkpoints) is malformed.

    Examples: a JSONL line without a ``type``/``time`` field, a non-numeric
    timestamp, or an ``attributes`` value that is not an object.
    """


class ConfigError(CograError, ValueError):
    """Raised when a declarative job configuration is invalid.

    Examples: an unknown (typo'd) key in a ``JobConfig`` dictionary, an
    out-of-range value (``workers=0``), or a cross-field conflict such as
    ``recover=True`` without a checkpoint directory.  Subclasses
    :class:`ValueError` as well, because the same validations used to be
    plain ``ValueError``s raised by the runtime constructors.
    """


class SourceError(CograError):
    """Raised when an event source cannot be opened or fails mid-stream.

    Examples: a ``tcp://`` source whose peer refuses the connection or
    drops it mid-line, a tailed JSONL file that cannot be opened, or a
    malformed ``--source`` specification.
    """


class LateEventError(StreamOrderError):
    """Raised by the streaming runtime when an event arrives later than the
    configured lateness bound allows and the late-event policy is ``raise``.
    """

    def __init__(self, message: str, event=None, watermark: float | None = None):
        super().__init__(message)
        self.event = event
        self.watermark = watermark


class WorkerCrashError(CograError):
    """Raised when a sharded-runtime worker process dies unexpectedly.

    Carries the shard index and the process exit code (or the remote
    traceback text when the worker reported an error before exiting) so
    operators can tell an OOM kill from a Python failure.
    """

    def __init__(self, message: str, shard: int | None = None, exitcode: int | None = None):
        super().__init__(message)
        self.shard = shard
        self.exitcode = exitcode


class CheckpointError(CograError):
    """Raised when runtime state cannot be snapshotted or restored.

    Examples: restoring a checkpoint into a runtime whose registered
    queries differ from the checkpointed ones, or snapshotting an
    aggregator class the checkpoint module does not know about.
    """


class QuotaError(CograError):
    """Base class for per-tenant admission-control violations.

    The multi-tenant job server enforces three quota kinds, each with its
    own subclass so callers (and the wire protocol) can distinguish a
    throttle from a hard rejection: :class:`RateQuotaError` (events/sec),
    :class:`StateQuotaError` (aggregator state bytes at checkpoint time)
    and :class:`ConcurrencyQuotaError` (concurrent jobs per tenant).
    Carries the ``tenant`` the violation belongs to.
    """

    def __init__(self, message: str, tenant: str | None = None):
        super().__init__(message)
        self.tenant = tenant


class RateQuotaError(QuotaError):
    """Raised when a tenant's event-rate token bucket rejects a request."""


class StateQuotaError(QuotaError):
    """Raised when a checkpoint exceeds a tenant's state-byte budget.

    Enforced at checkpoint save time -- the serialized snapshot is the
    authoritative measure of a job's aggregator state size.
    """

    def __init__(
        self,
        message: str,
        tenant: str | None = None,
        state_bytes: int | None = None,
        limit_bytes: int | None = None,
    ):
        super().__init__(message, tenant=tenant)
        self.state_bytes = state_bytes
        self.limit_bytes = limit_bytes


class ConcurrencyQuotaError(QuotaError):
    """Raised when a tenant submits more concurrent jobs than allowed."""


class ExecutionAbortedError(CograError):
    """Raised when an execution exceeds a configured cost budget.

    The benchmark harness uses cost budgets to reproduce the paper's
    "does not terminate" data points without actually hanging the test
    machine.
    """

    def __init__(self, message: str, events_processed: int = 0):
        super().__init__(message)
        self.events_processed = events_processed
