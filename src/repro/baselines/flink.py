"""Flink-style two-step baseline (industrial streaming systems).

Flink, Esper and Oracle Stream Analytics support fixed-length event
sequences but no Kleene closure.  Following the paper's experimental setup,
a Kleene query is flattened into a workload of fixed-length sequence
queries covering every possible trend length (see
:mod:`repro.baselines.flattening`); each of these queries is evaluated in
two steps -- all matching sequences are constructed and materialised, then
aggregated.

This reproduces the baseline's characteristic behaviour: latency and memory
grow exponentially with the number of events per window under the
skip-till-any-match semantics, and the approach stops terminating beyond a
few tens of thousands of events (the cost budget converts this into an
:class:`~repro.errors.ExecutionAbortedError` that the harness reports as a
"did not terminate" data point).

Per Table 9 the approach supports the skip-till-any-match and contiguous
semantics and predicates on adjacent events, but not skip-till-next-match.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analyzer.plan import CograPlan
from repro.baselines.base import ApproachCapabilities, BaselineApproach
from repro.baselines.flattening import (
    Variant,
    flatten_pattern,
    longest_possible_repetition,
)
from repro.core.aggregate_state import TrendAccumulator
from repro.events.event import Event
from repro.query.semantics import Semantics


class FlinkStyleApproach(BaselineApproach):
    """Workload of flattened fixed-length sequence queries, evaluated two-step."""

    name = "flink"
    capabilities = ApproachCapabilities(
        kleene_closure=False,
        semantics=frozenset({Semantics.SKIP_TILL_ANY_MATCH, Semantics.CONTIGUOUS}),
        adjacent_predicates=True,
        online_trend_aggregation=False,
    )

    def __init__(
        self,
        cost_budget: Optional[int] = None,
        max_variants: int = 10_000,
        max_repetitions: Optional[int] = None,
    ):
        super().__init__(cost_budget=cost_budget)
        self.max_variants = max_variants
        #: optional override of the longest-match length.  The paper's setup
        #: determines the longest match of the data set up front; benchmark
        #: workloads pass the value their generator used, while ``None``
        #: falls back to the (pessimistic) per-sub-stream upper bound.
        self.max_repetitions = max_repetitions
        #: number of flattened queries evaluated during the last run
        self.workload_size = 0

    def aggregate_substream(self, plan: CograPlan, events: List[Event]) -> TrendAccumulator:
        repetitions = self.max_repetitions or longest_possible_repetition(
            plan.query.pattern, events
        )
        variants = flatten_pattern(
            plan.query.pattern, max_repetitions=repetitions, max_variants=self.max_variants
        )
        self.workload_size = len(variants)
        total = TrendAccumulator.zero(plan.targets)
        for variant in variants:
            matches = self._construct_sequences(plan, events, variant)
            # two-step: the matches are materialised before aggregation
            self._account_storage(
                self.workload_size + sum(len(match) for match in matches)
            )
            for match in matches:
                accumulator: Optional[TrendAccumulator] = None
                for event_index, variable in match:
                    event = events[event_index]
                    if accumulator is None:
                        accumulator = TrendAccumulator.singleton(event, variable, plan.targets)
                    else:
                        accumulator = accumulator.extended(event, variable)
                if accumulator is not None:
                    total.merge(accumulator)
        return total

    # -- sequence construction -------------------------------------------------------

    def _construct_sequences(
        self, plan: CograPlan, events: List[Event], variant: Variant
    ) -> List[List]:
        """All assignments of stream events to the variant's positions."""
        matches: List[List] = []
        assignment: List = []

        def extend(position_index: int, previous_event_index: int) -> None:
            if position_index == len(variant):
                self._charge_trend()
                matches.append(list(assignment))
                return
            event_type, variable = variant[position_index]
            if plan.semantics is Semantics.CONTIGUOUS and position_index > 0:
                candidates = range(previous_event_index + 1, min(previous_event_index + 2, len(events)))
            else:
                candidates = range(previous_event_index + 1, len(events))
            for event_index in candidates:
                event = events[event_index]
                if event.event_type != event_type:
                    continue
                if not plan.passes_local(event, variable):
                    continue
                if position_index > 0:
                    previous_index, previous_variable = assignment[-1]
                    satisfied = plan.adjacency_satisfied(
                        events[previous_index], previous_variable, event, variable
                    )
                    if plan.semantics is Semantics.CONTIGUOUS:
                        satisfied = satisfied and event_index == previous_index + 1
                    if not satisfied:
                        continue
                assignment.append((event_index, variable))
                extend(position_index + 1, event_index)
                assignment.pop()

        extend(0, -1)
        return matches
