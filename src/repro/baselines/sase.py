"""SASE-style two-step baseline (Zhang, Diao, Immerman; reproduced per Section 9.1).

SASE supports Kleene closure and all three event matching semantics, but it
computes aggregates in two steps: it first *constructs* every event trend
and only then aggregates the constructed trends.  The implementation
follows the description in the paper's experimental setup:

* every matched event is pushed onto a per-variable stack together with
  pointers to its viable predecessor events (the pointer sets depend on the
  event matching semantics, Definition 7),
* for every window a DFS over these pointers constructs each trend, and
* each constructed trend is aggregated and immediately discarded (only the
  current DFS path is kept in memory).

The time complexity is therefore proportional to the *number of trends*
(exponential in the number of events under skip-till-any-match), while the
memory is dominated by the stacks and pointers.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analyzer.plan import CograPlan
from repro.baselines.base import (
    ALL_SEMANTICS,
    ApproachCapabilities,
    BaselineApproach,
    contiguous_adjacent,
    next_match_adjacent,
)
from repro.core.aggregate_state import TrendAccumulator
from repro.events.event import Event
from repro.query.semantics import Semantics


class _StackEntry:
    """One matched event in a SASE stack."""

    __slots__ = ("index", "variable", "event", "pointers")

    def __init__(self, index: int, variable: str, event: Event):
        self.index = index
        self.variable = variable
        self.event = event
        #: predecessor entries this event may extend (most recent first)
        self.pointers: List["_StackEntry"] = []


class SaseApproach(BaselineApproach):
    """Two-step trend construction and aggregation with Kleene support."""

    name = "sase"
    capabilities = ApproachCapabilities(
        kleene_closure=True,
        semantics=ALL_SEMANTICS,
        adjacent_predicates=True,
        online_trend_aggregation=False,
    )

    def aggregate_substream(self, plan: CograPlan, events: List[Event]) -> TrendAccumulator:
        entries = self._build_stacks(plan, events)
        total = TrendAccumulator.zero(plan.targets)
        pointer_count = sum(len(entry.pointers) for entry in entries)
        self._account_storage(len(entries) + pointer_count)
        for entry in entries:
            if plan.is_end(entry.variable):
                self._construct_and_aggregate(plan, entry, total, len(entries) + pointer_count)
        return total

    # -- step 1: stacks and predecessor pointers ------------------------------------

    def _build_stacks(self, plan: CograPlan, events: List[Event]) -> List[_StackEntry]:
        semantics = plan.semantics
        entries: List[_StackEntry] = []
        per_variable: dict = {variable: [] for variable in plan.automaton.variables}
        for index, event in enumerate(events):
            new_entries: List[_StackEntry] = []
            for variable in plan.candidate_variables(event):
                entry = _StackEntry(index, variable, event)
                for predecessor_variable in plan.automaton.pred_types(variable):
                    for predecessor in per_variable[predecessor_variable]:
                        if self._adjacent(
                            plan, events, semantics, predecessor, entry
                        ):
                            entry.pointers.append(predecessor)
                new_entries.append(entry)
            # register the event's bindings only after all of them were
            # created, so an event is never its own predecessor
            for entry in new_entries:
                per_variable[entry.variable].append(entry)
                entries.append(entry)
        return entries

    def _adjacent(
        self,
        plan: CograPlan,
        events: List[Event],
        semantics: Semantics,
        predecessor: _StackEntry,
        entry: _StackEntry,
    ) -> bool:
        if semantics is Semantics.SKIP_TILL_ANY_MATCH:
            return plan.adjacency_satisfied(
                predecessor.event, predecessor.variable, entry.event, entry.variable
            )
        if semantics is Semantics.SKIP_TILL_NEXT_MATCH:
            return next_match_adjacent(
                plan, events, predecessor.index, predecessor.variable, entry.index, entry.variable
            )
        return contiguous_adjacent(
            plan, events, predecessor.index, predecessor.variable, entry.index, entry.variable
        )

    # -- step 2: DFS trend construction followed by aggregation -----------------------

    def _construct_and_aggregate(
        self,
        plan: CograPlan,
        end_entry: _StackEntry,
        total: TrendAccumulator,
        base_storage: int,
    ) -> None:
        """Construct every trend that finishes at ``end_entry`` and aggregate it."""
        path: List[_StackEntry] = [end_entry]
        stack: List = [iter(end_entry.pointers)]
        if plan.is_start(end_entry.variable):
            self._aggregate_path(plan, path, total)
        while stack:
            pointer_iterator = stack[-1]
            predecessor: Optional[_StackEntry] = next(pointer_iterator, None)
            if predecessor is None:
                stack.pop()
                path.pop()
                continue
            path.append(predecessor)
            self._account_storage(base_storage + len(path))
            if plan.is_start(predecessor.variable):
                self._aggregate_path(plan, path, total)
            stack.append(iter(predecessor.pointers))

    def _aggregate_path(
        self, plan: CograPlan, path: List[_StackEntry], total: TrendAccumulator
    ) -> None:
        """Aggregate one constructed trend (the reversed DFS path)."""
        self._charge_trend()
        accumulator: Optional[TrendAccumulator] = None
        for entry in reversed(path):
            if accumulator is None:
                accumulator = TrendAccumulator.singleton(entry.event, entry.variable, plan.targets)
            else:
                accumulator = accumulator.extended(entry.event, entry.variable)
        if accumulator is not None:
            total.merge(accumulator)
