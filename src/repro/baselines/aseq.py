"""A-Seq baseline: online aggregation of fixed-length event sequences.

A-Seq (Qi, Cao, Ray, Rundensteiner) avoids sequence construction by
maintaining one counter (here: one accumulator) per *prefix* of a sequence
pattern.  It does not support Kleene closure, so Kleene queries are
flattened into a workload of fixed-length sequence queries exactly as for
the Flink-style baseline; A-Seq then evaluates every flattened query online.

Per Table 9 the approach supports only the skip-till-any-match semantics
and no predicates on adjacent events (beyond the stream-partitioning
equivalence predicates).  Its memory grows linearly with the number of
flattened queries, i.e. with the longest possible trend length.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analyzer.plan import CograPlan
from repro.baselines.base import ANY_ONLY, ApproachCapabilities, BaselineApproach
from repro.baselines.flattening import (
    Variant,
    flatten_pattern,
    longest_possible_repetition,
)
from repro.core.aggregate_state import TrendAccumulator
from repro.events.event import Event


class ASeqApproach(BaselineApproach):
    """Prefix-counter online aggregation of flattened sequence queries."""

    name = "aseq"
    capabilities = ApproachCapabilities(
        kleene_closure=False,
        semantics=ANY_ONLY,
        adjacent_predicates=False,
        online_trend_aggregation=True,
    )

    def __init__(
        self,
        cost_budget: Optional[int] = None,
        max_variants: int = 100_000,
        max_repetitions: Optional[int] = None,
    ):
        super().__init__(cost_budget=cost_budget)
        self.max_variants = max_variants
        self.max_repetitions = max_repetitions
        #: number of flattened queries evaluated during the last run
        self.workload_size = 0

    def aggregate_substream(self, plan: CograPlan, events: List[Event]) -> TrendAccumulator:
        repetitions = self.max_repetitions or longest_possible_repetition(
            plan.query.pattern, events
        )
        variants = flatten_pattern(
            plan.query.pattern, max_repetitions=repetitions, max_variants=self.max_variants
        )
        self.workload_size = len(variants)
        total = TrendAccumulator.zero(plan.targets)
        states = [self._PrefixState(plan, variant) for variant in variants]
        self._account_storage(sum(state.storage_units for state in states))
        for event in events:
            for state in states:
                state.process(event)
        self._account_storage(sum(state.storage_units for state in states))
        for state in states:
            total.merge(state.final())
        return total

    class _PrefixState:
        """Prefix accumulators of one flattened fixed-length query."""

        def __init__(self, plan: CograPlan, variant: Variant):
            self.plan = plan
            self.variant = variant
            # prefix 0 represents the empty sequence: exactly one of them.
            unit = TrendAccumulator.zero(plan.targets)
            unit.trend_count = 1
            self.prefixes: List[TrendAccumulator] = [unit]
            self.prefixes.extend(
                TrendAccumulator.zero(plan.targets) for _ in variant
            )

        def process(self, event: Event) -> None:
            """Extend every prefix the event can complete, longest first."""
            # Iterating from the longest position downwards guarantees that
            # an event never participates twice in the same sequence.
            for position in range(len(self.variant) - 1, -1, -1):
                event_type, variable = self.variant[position]
                if event.event_type != event_type:
                    continue
                if not self.plan.passes_local(event, variable):
                    continue
                predecessor = self.prefixes[position]
                if predecessor.trend_count == 0:
                    continue
                self.prefixes[position + 1].merge(predecessor.extended(event, variable))

        def final(self) -> TrendAccumulator:
            """Accumulator of the complete sequences of this flattened query."""
            return self.prefixes[-1]

        @property
        def storage_units(self) -> int:
            return sum(prefix.storage_units for prefix in self.prefixes)
