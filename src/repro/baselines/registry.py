"""Registry of execution approaches and the expressive-power matrix (Table 9)."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.baselines.aseq import ASeqApproach
from repro.baselines.base import BaselineApproach
from repro.baselines.cogra import CograApproach
from repro.baselines.flink import FlinkStyleApproach
from repro.baselines.greta import GretaApproach
from repro.baselines.sase import SaseApproach
from repro.errors import InvalidQueryError

#: All approaches known to the harness, keyed by their registry name.
APPROACHES: Dict[str, Type[BaselineApproach]] = {
    CograApproach.name: CograApproach,
    SaseApproach.name: SaseApproach,
    FlinkStyleApproach.name: FlinkStyleApproach,
    GretaApproach.name: GretaApproach,
    ASeqApproach.name: ASeqApproach,
}

#: Order used by reports so the tables read like the paper's.
DISPLAY_ORDER = ["flink", "sase", "greta", "aseq", "cogra"]


def available_approaches() -> List[str]:
    """Names of all registered approaches, in report order."""
    return [name for name in DISPLAY_ORDER if name in APPROACHES]


def get_approach(name: str, **kwargs) -> BaselineApproach:
    """Instantiate an approach by name (``cogra``, ``sase``, ``flink``, ...)."""
    key = name.strip().lower()
    if key not in APPROACHES:
        raise InvalidQueryError(
            f"unknown approach {name!r}; available: {', '.join(sorted(APPROACHES))}"
        )
    return APPROACHES[key](**kwargs)


def capability_table() -> Dict[str, Dict[str, str]]:
    """Expressive power of every approach (Table 9 of the paper)."""
    return {
        name: APPROACHES[name].capabilities.as_row() for name in available_approaches()
    }
