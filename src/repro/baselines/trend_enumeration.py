"""Declarative trend enumeration: the correctness oracle of the test suite.

This module implements Definitions 2-4 of the paper as directly as
possible, with no concern for efficiency:

* event trends under skip-till-any-match are produced by a recursive
  structural match of the pattern against the sub-stream (Definition 2),
* predicates on adjacent events are checked between consecutive events of
  the constructed trend (Definition 7, condition 3),
* skip-till-next-match keeps the trends whose consecutive pairs are
  NEXT-adjacent: no earlier event could have extended the predecessor
  (Definition 7), and
* the contiguous semantics keeps the trends whose consecutive events are
  consecutive in the sub-stream (Definition 7).

The enumeration is exponential in the number of events and is only meant
for small streams; the property-based tests compare every COGRA aggregator
and every baseline against it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analyzer.plan import CograPlan, plan_query
from repro.baselines.base import contiguous_adjacent, next_match_adjacent
from repro.core.aggregate_state import TrendAccumulator
from repro.core.partitioner import filter_local_predicates, substreams, window_bounds
from repro.core.results import GroupResult
from repro.errors import UnsupportedQueryError
from repro.events.event import Event
from repro.query.ast import (
    Disjunction,
    EventTypePattern,
    KleenePlus,
    KleeneStar,
    Negation,
    OptionalPattern,
    Pattern,
    Sequence as SequencePattern,
)
from repro.query.query import Query
from repro.query.semantics import Semantics

#: A trend binding: ordered tuple of (event index in the sub-stream, variable).
Trend = Tuple[Tuple[int, str], ...]


def _structural_matches(
    pattern: Pattern, plan: CograPlan, events: Sequence[Event]
) -> List[Trend]:
    """All bindings of ``pattern`` against ``events`` (types and order only)."""
    if isinstance(pattern, EventTypePattern):
        variable = pattern.variable
        matches: List[Trend] = []
        for index, event in enumerate(events):
            if event.event_type != pattern.event_type:
                continue
            if not plan.passes_local(event, variable):
                continue
            matches.append(((index, variable),))
        return matches

    if isinstance(pattern, SequencePattern):
        partials: List[Trend] = [()]
        for part in pattern.parts:
            part_matches = _structural_matches(part, plan, events)
            extended: List[Trend] = []
            for prefix in partials:
                for match in part_matches:
                    if not match:
                        extended.append(prefix)
                        continue
                    if prefix and not _strictly_before(events, prefix[-1][0], match[0][0]):
                        continue
                    extended.append(prefix + match)
            partials = extended
        return partials

    if isinstance(pattern, (KleenePlus, KleeneStar)):
        single = _structural_matches(pattern.inner, plan, events)
        single = [match for match in single if match]
        results: List[Trend] = []
        frontier: List[Trend] = [match for match in single]
        while frontier:
            results.extend(frontier)
            next_frontier: List[Trend] = []
            for prefix in frontier:
                for match in single:
                    if _strictly_before(events, prefix[-1][0], match[0][0]):
                        next_frontier.append(prefix + match)
            frontier = next_frontier
        if isinstance(pattern, KleeneStar):
            results.append(())
        return results

    if isinstance(pattern, OptionalPattern):
        return _structural_matches(pattern.inner, plan, events) + [()]

    if isinstance(pattern, Negation):
        # The positive part of a negated sub-pattern matches nothing; the
        # negation condition itself is enforced by the extensions package.
        return [()]

    if isinstance(pattern, Disjunction):
        matches: List[Trend] = []
        for alternative in pattern.alternatives:
            matches.extend(_structural_matches(alternative, plan, events))
        return matches

    raise UnsupportedQueryError(
        f"the trend oracle does not understand pattern node {type(pattern).__name__}"
    )


def _strictly_before(events: Sequence[Event], left_index: int, right_index: int) -> bool:
    return events[left_index].order_key < events[right_index].order_key


def _satisfies_adjacent_predicates(plan: CograPlan, events: Sequence[Event], trend: Trend) -> bool:
    for (left_index, left_variable), (right_index, right_variable) in zip(trend, trend[1:]):
        if not plan.adjacency_satisfied(
            events[left_index], left_variable, events[right_index], right_variable
        ):
            return False
    return True


def _satisfies_semantics(
    plan: CograPlan, events: List[Event], trend: Trend, semantics: Semantics
) -> bool:
    if semantics is Semantics.SKIP_TILL_ANY_MATCH:
        return True
    for (left_index, left_variable), (right_index, right_variable) in zip(trend, trend[1:]):
        if semantics is Semantics.SKIP_TILL_NEXT_MATCH:
            if not next_match_adjacent(
                plan, events, left_index, left_variable, right_index, right_variable
            ):
                return False
        else:
            if not contiguous_adjacent(
                plan, events, left_index, left_variable, right_index, right_variable
            ):
                return False
    return True


def enumerate_trends(
    query: Query,
    events: Sequence[Event],
    plan: Optional[CograPlan] = None,
    semantics: Optional[Semantics] = None,
) -> List[Trend]:
    """Enumerate every trend of ``query`` within one already-partitioned sub-stream.

    The sub-stream must already be restricted to one window and one group;
    use :class:`TrendOracle` to evaluate a full query including windows,
    grouping and local-predicate filtering.
    """
    plan = plan or plan_query(query)
    semantics = semantics or query.semantics
    ordered = list(events)
    matches = _structural_matches(query.pattern, plan, ordered)
    unique: Dict[Trend, None] = {}
    for match in matches:
        if not match:
            continue
        if len(match) < query.min_trend_length:
            continue
        if not _satisfies_adjacent_predicates(plan, ordered, match):
            continue
        if not _satisfies_semantics(plan, ordered, match, semantics):
            continue
        unique.setdefault(match, None)
    return list(unique)


def aggregate_trends(
    plan: CograPlan, events: Sequence[Event], trends: Iterable[Trend]
) -> TrendAccumulator:
    """Aggregate explicitly enumerated trends (reference two-step aggregation)."""
    total = TrendAccumulator.zero(plan.targets)
    for trend in trends:
        accumulator: Optional[TrendAccumulator] = None
        for index, variable in trend:
            event = events[index]
            if accumulator is None:
                accumulator = TrendAccumulator.singleton(event, variable, plan.targets)
            else:
                accumulator = accumulator.extended(event, variable)
        if accumulator is not None:
            total.merge(accumulator)
    return total


class TrendOracle:
    """Reference implementation of a full query via explicit enumeration.

    The oracle mirrors the COGRA executor's treatment of windows, grouping
    and local predicates, but computes every aggregate from explicitly
    constructed trends.  It is deliberately slow and is used only by the
    tests and by the smallest benchmark configurations.
    """

    def __init__(self, query: Query):
        self.query = query
        self.plan = plan_query(query)

    def trends_per_substream(
        self, events: Iterable[Event]
    ) -> Dict[Tuple[int, Tuple], List[Trend]]:
        """Mapping from (window id, group key) to the trends of that sub-stream."""
        filtered = filter_local_predicates(self.query, events)
        result: Dict[Tuple[int, Tuple], List[Trend]] = {}
        for key, substream in substreams(self.query, filtered):
            trends = enumerate_trends(self.query, substream, plan=self.plan)
            result[key] = trends
        return result

    def total_trend_count(self, events: Iterable[Event]) -> int:
        """Total number of trends over all windows and groups."""
        return sum(len(trends) for trends in self.trends_per_substream(events).values())

    def run(self, events: Iterable[Event]) -> List[GroupResult]:
        """Evaluate the query and return results comparable to the executor's."""
        filtered = filter_local_predicates(self.query, events)
        results: List[GroupResult] = []
        for (window_id, key), substream in substreams(self.query, filtered):
            trends = enumerate_trends(self.query, substream, plan=self.plan)
            accumulator = aggregate_trends(self.plan, substream, trends)
            if accumulator.trend_count == 0:
                continue
            start, end = window_bounds(self.query.window, window_id)
            group = dict(zip(self.plan.partition_attributes, key))
            results.append(
                GroupResult(
                    window_id=window_id,
                    window_start=start,
                    window_end=end,
                    group=group,
                    values=accumulator.results(self.query.aggregates),
                    trend_count=accumulator.trend_count,
                )
            )
        return results
