"""COGRA wrapped in the common approach interface of the benchmark harness.

The wrapper delegates to the incremental executor of :mod:`repro.core` and
adds the memory sampling the harness needs to chart peak storage.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.analyzer.plan import CograPlan
from repro.baselines.base import ALL_SEMANTICS, ApproachCapabilities, BaselineApproach
from repro.core.aggregate_state import TrendAccumulator
from repro.core.executor import QueryExecutor
from repro.core.results import GroupResult
from repro.errors import ExecutionAbortedError
from repro.events.event import Event
from repro.query.query import Query


class CograApproach(BaselineApproach):
    """Coarse-grained online event trend aggregation (this paper)."""

    name = "cogra"
    capabilities = ApproachCapabilities(
        kleene_closure=True,
        semantics=ALL_SEMANTICS,
        adjacent_predicates=True,
        online_trend_aggregation=True,
    )

    def __init__(
        self,
        cost_budget: Optional[int] = None,
        memory_sample_stride: int = 256,
        granularity=None,
    ):
        super().__init__(cost_budget=cost_budget)
        #: how often (in events) the storage high-water mark is sampled
        self.memory_sample_stride = max(1, memory_sample_stride)
        #: optional granularity override (used by the ablation harness)
        self.granularity = granularity

    def run(self, query: Query, events: Iterable[Event]) -> List[GroupResult]:
        """Evaluate ``query`` incrementally with the COGRA executor."""
        self.check_supported(query)
        self.peak_storage_units = 0
        self.constructed_trends = 0
        from repro.analyzer.plan import plan_query

        executor = QueryExecutor(plan_query(query, forced_granularity=self.granularity))
        results: List[GroupResult] = []
        for index, event in enumerate(events):
            results.extend(executor.process(event))
            if index % self.memory_sample_stride == 0:
                self._account_storage(executor.storage_units())
            if self.cost_budget is not None and index > self.cost_budget:
                raise ExecutionAbortedError(
                    f"cogra exceeded its cost budget of {self.cost_budget} events",
                    events_processed=index,
                )
        self._account_storage(executor.storage_units())
        results.extend(executor.flush())
        return results

    def aggregate_substream(self, plan: CograPlan, events: List[Event]) -> TrendAccumulator:
        """Aggregate one sub-stream directly (used by a few micro-benchmarks)."""
        from repro.core.base import create_aggregator

        aggregator = create_aggregator(plan)
        for event in events:
            aggregator.process(event)
            self._account_storage(aggregator.storage_units())
        return aggregator.final_accumulator()
