"""Kleene-pattern flattening for systems without Kleene closure.

Industrial streaming systems (Flink, Esper, Oracle Stream Analytics) and
A-Seq support only fixed-length event sequences.  Following the paper's
experimental setup, a Kleene query is therefore rewritten into a *workload*
of fixed-length sequence queries that covers every possible trend length up
to the longest match.

A flattened variant is a list of positions; each position carries the event
type it matches and the *base variable* of the original pattern it stems
from (so that predicates and aggregates can still be resolved).  The same
shape is never produced twice, which keeps the union of the variants'
results equal to the Kleene query's results.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ExecutionAbortedError, UnsupportedQueryError
from repro.query.ast import (
    Disjunction,
    EventTypePattern,
    KleenePlus,
    KleeneStar,
    Negation,
    OptionalPattern,
    Pattern,
    Sequence as SequencePattern,
)

#: One position of a flattened sequence: (event type, base variable).
Position = Tuple[str, str]
#: One flattened fixed-length sequence query.
Variant = Tuple[Position, ...]


def flatten_pattern(
    pattern: Pattern, max_repetitions: int, max_variants: int = 100_000
) -> List[Variant]:
    """Expand ``pattern`` into fixed-length variants.

    Parameters
    ----------
    pattern:
        The (possibly Kleene) pattern to flatten.
    max_repetitions:
        Upper bound on the number of repetitions of each Kleene sub-pattern
        (the paper determines it from the longest possible match of the
        window).
    max_variants:
        Safety valve: exceeding it raises
        :class:`~repro.errors.ExecutionAbortedError`, which the benchmark
        harness reports as a "did not terminate" data point.
    """
    variants = _flatten(pattern, max_repetitions, max_variants)
    unique: dict = {}
    for variant in variants:
        if variant:
            unique.setdefault(variant, None)
    return list(unique)


def _flatten(pattern: Pattern, max_repetitions: int, max_variants: int) -> List[Variant]:
    if isinstance(pattern, EventTypePattern):
        return [((pattern.event_type, pattern.variable),)]

    if isinstance(pattern, SequencePattern):
        variants: List[Variant] = [()]
        for part in pattern.parts:
            part_variants = _flatten(part, max_repetitions, max_variants)
            combined: List[Variant] = []
            for prefix in variants:
                for suffix in part_variants:
                    combined.append(prefix + suffix)
                    _check_budget(combined, max_variants)
            variants = combined
        return variants

    if isinstance(pattern, (KleenePlus, KleeneStar)):
        inner = _flatten(pattern.inner, max_repetitions, max_variants)
        inner = [variant for variant in inner if variant]
        variants: List[Variant] = [()] if isinstance(pattern, KleeneStar) else []
        frontier: List[Variant] = [variant for variant in inner]
        repetitions = 1
        while frontier and repetitions <= max_repetitions:
            variants.extend(frontier)
            _check_budget(variants, max_variants)
            repetitions += 1
            if repetitions > max_repetitions:
                break
            next_frontier: List[Variant] = []
            for prefix in frontier:
                for suffix in inner:
                    next_frontier.append(prefix + suffix)
                    _check_budget(next_frontier, max_variants)
            frontier = next_frontier
        return variants

    if isinstance(pattern, OptionalPattern):
        return [()] + _flatten(pattern.inner, max_repetitions, max_variants)

    if isinstance(pattern, Negation):
        raise UnsupportedQueryError(
            "fixed-length flattening does not support negated sub-patterns"
        )

    if isinstance(pattern, Disjunction):
        variants: List[Variant] = []
        for alternative in pattern.alternatives:
            variants.extend(_flatten(alternative, max_repetitions, max_variants))
            _check_budget(variants, max_variants)
        return variants

    raise UnsupportedQueryError(f"cannot flatten pattern node {type(pattern).__name__}")


def _check_budget(variants: List[Variant], max_variants: int) -> None:
    if len(variants) > max_variants:
        raise ExecutionAbortedError(
            f"flattening produced more than {max_variants} fixed-length queries",
            events_processed=len(variants),
        )


def longest_possible_repetition(pattern: Pattern, events) -> int:
    """Number of repetitions needed to cover the longest possible match.

    The bound is the largest number of events in the sub-stream that can be
    bound to any single variable occurring under a Kleene operator -- a
    Kleene sub-pattern can never repeat more often than that.
    """
    kleene_variables = set()
    for node in pattern.walk():
        if isinstance(node, (KleenePlus, KleeneStar)):
            kleene_variables.update(leaf.variable for leaf in node.leaves())
    if not kleene_variables:
        return 1
    variable_types = pattern.variable_types()
    counts = {variable: 0 for variable in kleene_variables}
    for event in events:
        for variable in kleene_variables:
            if variable_types.get(variable) == event.event_type:
                counts[variable] += 1
    return max(1, max(counts.values(), default=1))
