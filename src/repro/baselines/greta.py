"""GRETA baseline: graph-based online event trend aggregation.

GRETA (Poppe, Lei, Rundensteiner, Maier, VLDB 2017) computes trend
aggregates online -- it never constructs trends -- but it maintains the
aggregates at the *finest* granularity: every matched event becomes a node
of the GRETA graph, keeps its own intermediate aggregate, and edges connect
an event to all of its predecessor events.  Consequently

* every matched event of the window is stored for the lifetime of the
  window (memory grows linearly with the number of matched events), and
* processing a new event touches every compatible previous event
  (quadratic time), even when the query has no predicates on adjacent
  events and a per-type aggregate would have sufficed.

Per Table 9, GRETA supports Kleene closure and predicates on adjacent
events but only the skip-till-any-match semantics.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analyzer.plan import CograPlan
from repro.baselines.base import ANY_ONLY, ApproachCapabilities, BaselineApproach
from repro.core.aggregate_state import TrendAccumulator
from repro.events.event import Event


class GretaApproach(BaselineApproach):
    """Event-grained online aggregation over the GRETA graph."""

    name = "greta"
    capabilities = ApproachCapabilities(
        kleene_closure=True,
        semantics=ANY_ONLY,
        adjacent_predicates=True,
        online_trend_aggregation=True,
    )

    def aggregate_substream(self, plan: CograPlan, events: List[Event]) -> TrendAccumulator:
        #: the GRETA graph: one node per matched event binding
        nodes: List[Tuple[Event, str, TrendAccumulator]] = []
        total = TrendAccumulator.zero(plan.targets)
        for event in events:
            bindings = plan.candidate_variables(event)
            if not bindings:
                continue
            new_nodes: List[Tuple[Event, str, TrendAccumulator]] = []
            for variable in bindings:
                predecessor_variables = plan.automaton.pred_types(variable)
                predecessor = TrendAccumulator.zero(plan.targets)
                for stored_event, stored_variable, stored_cell in nodes:
                    if stored_variable not in predecessor_variables:
                        continue
                    if plan.adjacency_satisfied(stored_event, stored_variable, event, variable):
                        predecessor.merge(stored_cell)
                cell = predecessor.extended(event, variable)
                if plan.is_start(variable):
                    cell.merge(TrendAccumulator.singleton(event, variable, plan.targets))
                new_nodes.append((event, variable, cell))
            nodes.extend(new_nodes)
            self._account_storage(
                sum(1 + cell.storage_units for _, _, cell in nodes)
            )
        for _, variable, cell in nodes:
            if plan.is_end(variable):
                total.merge(cell)
        return total
