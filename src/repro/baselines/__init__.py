"""State-of-the-art event aggregation approaches re-implemented as baselines.

The paper compares COGRA against four systems (Table 1 / Table 9):

* **SASE** -- a CEP engine with Kleene closure; two-step (constructs every
  trend before aggregating it).
* **Flink-style** streaming -- no Kleene closure; Kleene queries are
  flattened into a workload of fixed-length sequence queries; two-step.
* **GRETA** -- online trend aggregation over an event graph; only
  skip-till-any-match; aggregates at the finest (per-event) granularity.
* **A-Seq** -- online aggregation of fixed-length sequences with prefix
  counters; no Kleene closure, only skip-till-any-match, no predicates on
  adjacent events.

All baselines are built on the same event/query substrate as COGRA so that
benchmark comparisons measure algorithmic differences, not I/O paths.  The
:mod:`repro.baselines.trend_enumeration` module additionally provides the
declarative trend enumerator used as the correctness oracle by the tests.
"""

from repro.baselines.base import ApproachCapabilities, BaselineApproach
from repro.baselines.aseq import ASeqApproach
from repro.baselines.cogra import CograApproach
from repro.baselines.flink import FlinkStyleApproach
from repro.baselines.greta import GretaApproach
from repro.baselines.registry import (
    available_approaches,
    capability_table,
    get_approach,
)
from repro.baselines.sase import SaseApproach
from repro.baselines.trend_enumeration import TrendOracle, enumerate_trends

__all__ = [
    "ApproachCapabilities",
    "ASeqApproach",
    "BaselineApproach",
    "CograApproach",
    "FlinkStyleApproach",
    "GretaApproach",
    "SaseApproach",
    "TrendOracle",
    "available_approaches",
    "capability_table",
    "enumerate_trends",
    "get_approach",
]
