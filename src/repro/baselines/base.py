"""Common infrastructure of the execution approaches used in the evaluation.

Every approach -- COGRA itself and the four baselines -- implements the same
small interface so the benchmark harness can swap them freely:

* :meth:`BaselineApproach.run` evaluates a query over a finite stream and
  returns the same :class:`~repro.core.results.GroupResult` records the
  COGRA executor produces,
* :attr:`BaselineApproach.capabilities` reports the expressive power of the
  approach (Table 9 of the paper) and is used to refuse unsupported
  queries with :class:`~repro.errors.UnsupportedQueryError`, and
* :attr:`BaselineApproach.peak_storage_units` exposes a machine-independent
  memory metric (number of stored events, pointers and aggregate values).

Two-step baselines additionally honour a *cost budget*: when the number of
constructed trends (or stored sequences) exceeds the budget they raise
:class:`~repro.errors.ExecutionAbortedError`, which the harness reports as
the paper's "does not terminate" data points.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.analyzer.plan import CograPlan, plan_query
from repro.core.aggregate_state import TrendAccumulator
from repro.core.partitioner import filter_local_predicates, substreams, window_bounds
from repro.core.results import GroupResult
from repro.errors import ExecutionAbortedError, UnsupportedQueryError
from repro.events.event import Event
from repro.query.query import Query
from repro.query.semantics import Semantics


class ApproachCapabilities:
    """Expressive power of an approach (one row of Table 9)."""

    def __init__(
        self,
        kleene_closure: bool,
        semantics: FrozenSet[Semantics],
        adjacent_predicates: bool,
        online_trend_aggregation: bool,
    ):
        self.kleene_closure = kleene_closure
        self.semantics = frozenset(semantics)
        self.adjacent_predicates = adjacent_predicates
        self.online_trend_aggregation = online_trend_aggregation

    def as_row(self) -> Dict[str, str]:
        """Row of the expressive-power matrix with the paper's +/- notation."""
        def mark(flag: bool) -> str:
            return "+" if flag else "-"

        return {
            "Kleene closure": mark(self.kleene_closure),
            "ANY": mark(Semantics.SKIP_TILL_ANY_MATCH in self.semantics),
            "NEXT": mark(Semantics.SKIP_TILL_NEXT_MATCH in self.semantics),
            "CONT": mark(Semantics.CONTIGUOUS in self.semantics),
            "Adjacent predicates": mark(self.adjacent_predicates),
            "Online trend aggregation": mark(self.online_trend_aggregation),
        }


ALL_SEMANTICS = frozenset(Semantics)
ANY_ONLY = frozenset({Semantics.SKIP_TILL_ANY_MATCH})


class BaselineApproach:
    """Base class of every execution approach known to the harness."""

    #: Name used by the registry, the CLI and the benchmark reports.
    name: str = "abstract"
    #: Expressive power; concrete classes override this.
    capabilities = ApproachCapabilities(False, frozenset(), False, False)

    def __init__(self, cost_budget: Optional[int] = None):
        #: Upper bound on constructed trends / stored sequences; ``None`` = unbounded.
        self.cost_budget = cost_budget
        #: Machine-independent memory high-water mark of the last run.
        self.peak_storage_units = 0
        #: Number of trends constructed by the last run (two-step approaches).
        self.constructed_trends = 0

    # -- public API ------------------------------------------------------------------

    def run(self, query: Query, events: Iterable[Event]) -> List[GroupResult]:
        """Evaluate ``query`` over ``events`` and return per-group results."""
        self.check_supported(query)
        self.peak_storage_units = 0
        self.constructed_trends = 0
        plan = plan_query(query)
        filtered = filter_local_predicates(query, events)
        results: List[GroupResult] = []
        for (window_id, key), substream in substreams(query, filtered):
            accumulator = self.aggregate_substream(plan, substream)
            if accumulator.trend_count == 0:
                continue
            start, end = window_bounds(query.window, window_id)
            group = dict(zip(plan.partition_attributes, key))
            results.append(
                GroupResult(
                    window_id=window_id,
                    window_start=start,
                    window_end=end,
                    group=group,
                    values=accumulator.results(query.aggregates),
                    trend_count=accumulator.trend_count,
                )
            )
        return results

    def check_supported(self, query: Query) -> None:
        """Raise :class:`UnsupportedQueryError` when the approach cannot run ``query``.

        The checks reproduce the expressive-power limits of Table 9.
        """
        capabilities = self.capabilities
        if query.pattern.is_kleene and not capabilities.kleene_closure:
            # Approaches without Kleene closure evaluate a flattened workload
            # of fixed-length sequence queries instead of refusing outright;
            # subclasses that cannot even do that override this method.
            pass
        if query.semantics not in capabilities.semantics:
            raise UnsupportedQueryError(
                f"{self.name} does not support the {query.semantics.value} semantics"
            )
        if query.has_adjacent_predicates and not capabilities.adjacent_predicates:
            raise UnsupportedQueryError(
                f"{self.name} does not support predicates on adjacent events"
            )

    # -- extension point ---------------------------------------------------------------

    def aggregate_substream(self, plan: CograPlan, events: List[Event]) -> TrendAccumulator:
        """Aggregate the trends of one (window, group) sub-stream."""
        raise NotImplementedError

    # -- helpers for subclasses ----------------------------------------------------------

    def _account_storage(self, units: int) -> None:
        """Update the memory high-water mark."""
        if units > self.peak_storage_units:
            self.peak_storage_units = units

    def _charge_trend(self, count: int = 1) -> None:
        """Record constructed trends and enforce the cost budget."""
        self.constructed_trends += count
        if self.cost_budget is not None and self.constructed_trends > self.cost_budget:
            raise ExecutionAbortedError(
                f"{self.name} exceeded its cost budget of {self.cost_budget} constructed trends",
                events_processed=self.constructed_trends,
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def adjacency_allows(
    plan: CograPlan,
    predecessor: Event,
    predecessor_variable: str,
    event: Event,
    variable: str,
) -> bool:
    """Shared adjacency test used by the baselines (Definition 7, conditions 1-3)."""
    return plan.adjacency_satisfied(predecessor, predecessor_variable, event, variable)


def next_match_adjacent(
    plan: CograPlan,
    events: List[Event],
    predecessor_index: int,
    predecessor_variable: str,
    event_index: int,
    variable: str,
) -> bool:
    """Skip-till-next-match adjacency (Definition 7).

    The pair must be adjacent under skip-till-any-match and no event that
    arrives between the two may itself be adjacent (under any variable
    binding) to the predecessor.
    """
    predecessor = events[predecessor_index]
    event = events[event_index]
    if not plan.adjacency_satisfied(predecessor, predecessor_variable, event, variable):
        return False
    for blocker_index in range(predecessor_index + 1, event_index):
        blocker = events[blocker_index]
        for blocker_variable in plan.candidate_variables(blocker):
            if plan.adjacency_satisfied(
                predecessor, predecessor_variable, blocker, blocker_variable
            ):
                return False
    return True


def contiguous_adjacent(
    plan: CograPlan,
    events: List[Event],
    predecessor_index: int,
    predecessor_variable: str,
    event_index: int,
    variable: str,
) -> bool:
    """Contiguous adjacency (Definition 7): nothing at all arrives in between."""
    if event_index != predecessor_index + 1:
        return False
    return plan.adjacency_satisfied(
        events[predecessor_index], predecessor_variable, events[event_index], variable
    )


def trend_accumulator_from_trends(
    plan: CograPlan, trends: Iterable[Tuple[Tuple[int, str], ...]], events: List[Event]
) -> TrendAccumulator:
    """Fold explicitly constructed trends into a single accumulator.

    ``trends`` contains tuples of ``(event index, variable)`` bindings; this
    is the aggregation step of every two-step approach.
    """
    total = TrendAccumulator.zero(plan.targets)
    for trend in trends:
        accumulator: Optional[TrendAccumulator] = None
        for event_index, variable in trend:
            event = events[event_index]
            if accumulator is None:
                accumulator = TrendAccumulator.singleton(event, variable, plan.targets)
            else:
                accumulator = accumulator.extended(event, variable)
        if accumulator is not None:
            total.merge(accumulator)
    return total
