"""Primitive events and their schemas (Section 2.1 of the paper).

An :class:`Event` is an immutable record carrying

* ``time`` -- an application timestamp (a non-negative number; the paper
  models time as a linearly ordered subset of the rationals),
* ``event_type`` -- the name of the event type the event belongs to,
* ``attributes`` -- a mapping from attribute names to values, and
* ``sequence`` -- a monotonically increasing arrival index used to break
  timestamp ties deterministically.

Events are deliberately lightweight: the hot loops of every aggregator and
baseline touch millions of them, so the class uses ``__slots__`` and keeps
attribute access on the critical path to a single dictionary lookup.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional


class Event:
    """A single primitive event on a stream.

    Parameters
    ----------
    event_type:
        Name of the event type, e.g. ``"Stock"`` or ``"Measurement"``.
    time:
        Application timestamp assigned by the event source (seconds).
    attributes:
        Mapping of attribute names to values.  The mapping is copied so the
        event stays immutable even if the caller mutates its dictionary.
    sequence:
        Arrival index used to order events with equal timestamps.  When
        omitted it defaults to ``0``; :func:`repro.events.stream.sort_events`
        assigns consecutive indices.
    """

    __slots__ = ("event_type", "time", "attributes", "sequence")

    def __init__(
        self,
        event_type: str,
        time: float,
        attributes: Optional[Mapping[str, Any]] = None,
        sequence: int = 0,
    ):
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time!r}")
        object.__setattr__(self, "event_type", event_type)
        object.__setattr__(self, "time", float(time))
        object.__setattr__(self, "attributes", dict(attributes or {}))
        object.__setattr__(self, "sequence", int(sequence))

    @classmethod
    def from_wire(
        cls,
        event_type: str,
        time: float,
        attributes: dict,
        sequence: int,
    ) -> "Event":
        """Trusted fast-path constructor for already-validated wire data.

        Skips the validation and defensive copies of ``__init__``.  The
        caller guarantees ``time`` is a non-negative finite ``float``,
        ``attributes`` is a fresh ``dict`` the event may own, and
        ``sequence`` is an ``int`` -- exactly what the batched JSONL
        decoder and the sharded blob decoder produce.
        """
        event = object.__new__(cls)
        object.__setattr__(event, "event_type", event_type)
        object.__setattr__(event, "time", time)
        object.__setattr__(event, "attributes", attributes)
        object.__setattr__(event, "sequence", sequence)
        return event

    def __setattr__(self, name: str, value: Any):  # pragma: no cover - guard
        raise AttributeError("Event instances are immutable")

    def __reduce__(self):
        # the default slot-state unpickling would call __setattr__ and hit
        # the immutability guard; rebuild through the constructor instead
        # (the sharded runtime ships events to worker processes via queues)
        return (Event, (self.event_type, self.time, self.attributes, self.sequence))

    # -- attribute access -------------------------------------------------

    def __getitem__(self, attribute: str) -> Any:
        """Return the value of ``attribute``; raise ``KeyError`` if absent."""
        return self.attributes[attribute]

    def get(self, attribute: str, default: Any = None) -> Any:
        """Return the value of ``attribute`` or ``default`` if absent."""
        return self.attributes.get(attribute, default)

    def has(self, attribute: str) -> bool:
        """Return ``True`` when the event carries ``attribute``."""
        return attribute in self.attributes

    # -- ordering and identity --------------------------------------------

    @property
    def order_key(self) -> tuple:
        """Total order key: timestamp first, arrival index second."""
        return (self.time, self.sequence)

    def is_before(self, other: "Event") -> bool:
        """Return ``True`` when this event strictly precedes ``other``."""
        return self.order_key < other.order_key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.event_type == other.event_type
            and self.time == other.time
            and self.sequence == other.sequence
            and self.attributes == other.attributes
        )

    def __hash__(self) -> int:
        return hash((self.event_type, self.time, self.sequence))

    def __repr__(self) -> str:
        attrs = ", ".join(f"{k}={v!r}" for k, v in sorted(self.attributes.items()))
        return f"Event({self.event_type!r}, t={self.time:g}, {{{attrs}}})"

    # -- convenience -------------------------------------------------------

    def replace(self, **changes: Any) -> "Event":
        """Return a copy of the event with the given fields replaced.

        ``attributes`` given here are merged into (not substituted for) the
        existing attribute mapping.
        """
        attributes = dict(self.attributes)
        attributes.update(changes.pop("attributes", {}))
        return Event(
            event_type=changes.pop("event_type", self.event_type),
            time=changes.pop("time", self.time),
            attributes=attributes,
            sequence=changes.pop("sequence", self.sequence),
        )


class EventSchema:
    """Schema of an event type: its name and the attributes it carries.

    Schemas are optional -- the engine works on schemaless events -- but the
    data-set generators and the parser use them to validate queries early
    and to produce well-formed synthetic streams.
    """

    def __init__(self, event_type: str, attributes: Iterable[str]):
        self.event_type = event_type
        self.attributes = tuple(attributes)
        self._attribute_set = frozenset(self.attributes)

    def has_attribute(self, attribute: str) -> bool:
        """Return ``True`` when the schema declares ``attribute``."""
        return attribute in self._attribute_set

    def validate(self, event: Event) -> bool:
        """Return ``True`` when ``event`` matches this schema."""
        if event.event_type != self.event_type:
            return False
        return all(event.has(attribute) for attribute in self.attributes)

    def create(self, time: float, sequence: int = 0, **attributes: Any) -> Event:
        """Instantiate an event of this type, checking declared attributes."""
        unknown = set(attributes) - self._attribute_set
        if unknown:
            raise ValueError(
                f"attributes {sorted(unknown)} are not declared by schema "
                f"{self.event_type!r}"
            )
        return Event(self.event_type, time, attributes, sequence)

    def __repr__(self) -> str:
        return f"EventSchema({self.event_type!r}, {list(self.attributes)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventSchema):
            return NotImplemented
        return (
            self.event_type == other.event_type
            and self.attributes == other.attributes
        )

    def __hash__(self) -> int:
        return hash((self.event_type, self.attributes))


def attribute_names(events: Iterable[Event]) -> frozenset:
    """Return the union of attribute names appearing in ``events``."""
    names: set = set()
    for event in events:
        names.update(event.attributes)
    return frozenset(names)
