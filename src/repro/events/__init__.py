"""Event and stream model used by every component of the library.

The event model follows Section 2.1 of the paper: an event is an immutable
message with a numeric timestamp, an event type and a set of attributes.
Streams are timestamp-ordered sequences of events.
"""

from repro.events.event import Event, EventSchema, attribute_names
from repro.events.stream import (
    EventStream,
    merge_streams,
    sort_events,
    validate_order,
)

__all__ = [
    "Event",
    "EventSchema",
    "EventStream",
    "attribute_names",
    "merge_streams",
    "sort_events",
    "validate_order",
]
