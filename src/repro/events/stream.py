"""Event streams: ordered sequences of events plus helpers to build them.

A stream in this library is simply an iterable of :class:`Event` objects in
non-decreasing timestamp order.  :class:`EventStream` wraps a concrete list
with convenience accessors used by the data-set generators, the benchmark
harness and the tests; the execution engines accept any iterable.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.errors import StreamOrderError
from repro.events.event import Event


def _renumber(events: Iterable[Event]) -> List[Event]:
    """Assign consecutive ``sequence`` numbers to already-ordered events."""
    return [
        event if event.sequence == index else event.replace(sequence=index)
        for index, event in enumerate(events)
    ]


def sort_events(events: Iterable[Event]) -> List[Event]:
    """Return ``events`` sorted by time and re-numbered with arrival indices.

    Ties on the timestamp keep their original relative order (stable sort)
    and the resulting events receive consecutive ``sequence`` numbers so
    that the total order used throughout the library is unambiguous.
    """
    return _renumber(sorted(events, key=lambda e: (e.time, e.sequence)))


def validate_order(events: Iterable[Event]) -> None:
    """Raise :class:`StreamOrderError` if ``events`` is not time-ordered."""
    previous: Optional[Event] = None
    for index, event in enumerate(events):
        if previous is not None and event.order_key < previous.order_key:
            raise StreamOrderError(
                f"event #{index} at time {event.time} arrives after an event "
                f"at time {previous.time}"
            )
        previous = event


def merge_streams(*streams: Iterable[Event]) -> List[Event]:
    """Merge several time-ordered streams into one time-ordered list.

    ``heapq.merge`` already yields the events in ``(time, sequence)`` order
    when every input is time-ordered, so the merged list only needs a
    linear renumbering pass to assign consecutive arrival indices.  A
    disordered input would silently corrupt the merge (the fresh sequence
    numbers mask the disorder), so it raises :class:`StreamOrderError`.
    """
    merged: List[Event] = []
    previous_key: Optional[tuple] = None
    for event in heapq.merge(*streams, key=lambda e: (e.time, e.sequence)):
        # compare the full (time, sequence) key: equal-time events with
        # disordered sequences violate heapq.merge's precondition just as
        # time regressions do, and renumbering would mask either
        if previous_key is not None and event.order_key < previous_key:
            raise StreamOrderError(
                f"merge_streams requires (time, sequence)-ordered inputs: "
                f"event with key {event.order_key} follows {previous_key}"
            )
        previous_key = event.order_key
        merged.append(event)
    return _renumber(merged)


class EventStream:
    """A finite, materialised, time-ordered event stream.

    The constructor sorts its input, so callers may pass events in any
    order.  The class behaves like a read-only sequence of events and adds
    the small set of statistics the benchmark harness reports (event count,
    duration, types present, distinct values of a partition attribute).
    """

    def __init__(self, events: Iterable[Event], name: str = "stream"):
        self.name = name
        self._events: List[Event] = sort_events(events)

    # -- sequence protocol -------------------------------------------------

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, index):
        return self._events[index]

    def __repr__(self) -> str:
        return f"EventStream({self.name!r}, {len(self)} events)"

    # -- accessors ---------------------------------------------------------

    @property
    def events(self) -> Sequence[Event]:
        """The underlying ordered list of events."""
        return self._events

    @property
    def duration(self) -> float:
        """Time span covered by the stream in seconds (0 when empty)."""
        if not self._events:
            return 0.0
        return self._events[-1].time - self._events[0].time

    def event_types(self) -> frozenset:
        """Set of event type names that occur in the stream."""
        return frozenset(event.event_type for event in self._events)

    def distinct_values(self, attribute: str) -> frozenset:
        """Distinct values of ``attribute`` over events that carry it."""
        return frozenset(
            event.get(attribute)
            for event in self._events
            if event.has(attribute)
        )

    # -- transformations ---------------------------------------------------

    def filter(self, predicate: Callable[[Event], bool], name: Optional[str] = None) -> "EventStream":
        """Return a new stream with the events satisfying ``predicate``."""
        return EventStream(
            (event for event in self._events if predicate(event)),
            name=name or f"{self.name}|filtered",
        )

    def of_types(self, *event_types: str) -> "EventStream":
        """Return a new stream restricted to the given event types."""
        allowed = frozenset(event_types)
        return self.filter(lambda e: e.event_type in allowed, name=f"{self.name}|{sorted(allowed)}")

    def take(self, count: int) -> "EventStream":
        """Return a new stream with the first ``count`` events."""
        return EventStream(self._events[:count], name=f"{self.name}|take({count})")

    def within(self, start_time: float, end_time: float) -> "EventStream":
        """Return events with ``start_time <= time < end_time``."""
        return self.filter(
            lambda e: start_time <= e.time < end_time,
            name=f"{self.name}|[{start_time},{end_time})",
        )
