"""Synthetic public transportation stream (the paper's third data set).

The paper's stream generator "creates trips for 30 passengers using public
transportation services in a city with 100 stations.  Each event carries a
time stamp in seconds, passenger identifier, station identifier, and
waiting time in seconds.  Waiting durations are generated uniformly at
random."  This generator follows that description and structures each trip
as::

    Enter, (Wait, Board)+, Exit

so that a q2-style Kleene query (a trip with any number of transfers) can
be evaluated under the skip-till-next-match semantics, mirroring how the
paper uses this data set in Figures 6 and 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.datasets.generators import StreamConfig, seeded_rng
from repro.events.event import Event
from repro.events.stream import EventStream, sort_events


@dataclass
class TransportationConfig(StreamConfig):
    """Knobs of the public transportation generator."""

    #: number of passengers (trend groups); the paper uses 30
    passengers: int = 30
    #: number of stations in the city; the paper uses 100
    stations: int = 100
    #: maximal number of (Wait, Board) transfers per trip
    max_transfers: int = 4
    #: bounds of the uniformly random waiting time in seconds
    min_waiting: float = 10.0
    max_waiting: float = 600.0
    #: probability that a generated event is an unrelated disturbance
    #: (e.g. a delay notification) that does not belong to any trip
    noise_probability: float = 0.05


def generate_transportation_stream(
    config: TransportationConfig = TransportationConfig(),
) -> EventStream:
    """Generate a time-ordered stream of trip events for all passengers."""
    rng = seeded_rng(config.seed)
    events: List[Event] = []
    step = 1.0 / config.events_per_second if config.events_per_second > 0 else 1.0
    #: per-passenger simulation clock, staggered so trips interleave
    clocks = {
        passenger: rng.uniform(0.0, step * config.passengers)
        for passenger in range(config.passengers)
    }

    def emit(event_type: str, passenger: int, **attributes) -> None:
        time = clocks[passenger]
        attributes.setdefault("station", rng.randrange(config.stations))
        attributes.setdefault("waiting", round(rng.uniform(config.min_waiting, config.max_waiting), 1))
        attributes["passenger"] = passenger
        events.append(Event(event_type, time, attributes))
        clocks[passenger] = time + step * config.passengers * rng.uniform(0.5, 1.5)

    while len(events) < config.event_count:
        passenger = rng.randrange(config.passengers)
        if rng.random() < config.noise_probability:
            emit("Delay", passenger)
            continue
        emit("Enter", passenger)
        for _ in range(rng.randint(1, config.max_transfers)):
            if len(events) >= config.event_count:
                break
            emit("Wait", passenger)
            emit("Board", passenger)
        emit("Exit", passenger)

    ordered = sort_events(events[: config.event_count])
    return EventStream(ordered, name="transportation")
