"""Synthetic stock transaction stream (EODData substitute).

The paper's second real data set contains 225k transactions of 19 companies
in 10 sectors.  The generator reproduces the schema (time stamp, company,
sector, transaction type, volume, price) and the properties the evaluation
depends on: the number of companies/sectors (trend groups) and the
probability that a price decreases from one transaction to the next, which
is exactly the selectivity of q3's ``A.price > NEXT(A).price`` predicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.datasets.generators import StreamConfig, seeded_rng, spread_timestamps
from repro.events.event import Event
from repro.events.stream import EventStream


@dataclass
class StockConfig(StreamConfig):
    """Knobs of the stock transaction generator."""

    #: number of companies (the paper's data set has 19)
    companies: int = 19
    #: number of industrial sectors (the paper's data set has 10)
    sectors: int = 10
    #: probability that a company's price decreases between transactions;
    #: this is the selectivity of the "price falls" adjacent predicate
    decrease_probability: float = 0.5
    #: price random-walk parameters: a multiplicative walk keeps prices
    #: strictly positive and keeps every step a strict increase or decrease,
    #: so ``decrease_probability`` translates directly into the selectivity
    #: of the ``A.price > NEXT(A).price`` predicate
    price_start: float = 100.0
    price_volatility: float = 0.02
    #: maximum transaction volume
    max_volume: int = 1000


def generate_stock_stream(config: StockConfig = StockConfig()) -> EventStream:
    """Generate a time-ordered stream of ``Stock`` transaction events."""
    rng = seeded_rng(config.seed)
    sector_of: Dict[int, int] = {
        company: company % config.sectors for company in range(config.companies)
    }
    prices: Dict[int, float] = {
        company: config.price_start + rng.uniform(-20, 20)
        for company in range(config.companies)
    }
    events: List[Event] = []
    for sequence, time in enumerate(spread_timestamps(config)):
        company = rng.randrange(config.companies)
        step = rng.uniform(0.1, 1.0) * config.price_volatility
        if rng.random() < config.decrease_probability:
            price = prices[company] * (1.0 - step)
        else:
            price = prices[company] * (1.0 + step)
        prices[company] = price
        events.append(
            Event(
                "Stock",
                time,
                {
                    "company": company,
                    "sector": sector_of[company],
                    "price": round(price, 6),
                    "volume": rng.randrange(1, config.max_volume),
                    "transaction": rng.choice(("buy", "sell")),
                },
                sequence=sequence,
            )
        )
    return EventStream(events, name="stock")
