"""Reading and writing event streams as files.

The paper evaluates COGRA on two real data sets -- PAMAP2 physical activity
monitoring reports and EODData stock transactions -- which cannot be
redistributed with this reproduction.  This module provides the file-format
plumbing a user needs to run the engine on the *real* files if they have
them, and to persist the synthetic substitutes in the same shape:

* a generic CSV representation of any event stream
  (:func:`write_stream_csv` / :func:`read_stream_csv`),
* the PAMAP2 protocol format (space-separated sensor rows; one file per
  subject) mapped to ``Measurement`` events
  (:func:`read_pamap2_file` / :func:`write_pamap2_file`),
* the EODData end-of-day CSV format mapped to ``Stock`` events
  (:func:`read_eoddata_csv` / :func:`write_eoddata_csv`), and
* :func:`replicate_stream`, which appends shifted copies of a stream -- the
  paper replicates its stock data set ten times to reach the stream rates
  of Section 9.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.errors import InvalidQueryError
from repro.events.event import Event
from repro.events.stream import EventStream, sort_events

#: Columns that describe the event itself rather than its attributes.
RESERVED_COLUMNS = ("event_type", "time", "sequence")

#: PAMAP2 activity identifiers regarded as passive (lying, sitting, standing,
#: watching TV, computer work) -- the paper's q1 restricts itself to passive
#: physical activities.
PAMAP2_PASSIVE_ACTIVITIES = frozenset({1, 2, 3, 9, 10})

#: Number of data columns of one PAMAP2 protocol row (timestamp, activity id,
#: heart rate plus 51 IMU readings).
PAMAP2_COLUMNS = 54


# ---------------------------------------------------------------------------
# generic CSV representation
# ---------------------------------------------------------------------------


def _parse_value(text: str):
    """Parse a CSV cell into int, float, or string (empty cells become None)."""
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def write_stream_csv(
    events: Iterable[Event],
    path,
    attributes: Optional[Sequence[str]] = None,
) -> int:
    """Write ``events`` to ``path`` as CSV and return the number of rows.

    The header is ``event_type, time, sequence`` followed by the attribute
    columns (the union of attribute names when ``attributes`` is omitted).
    """
    events = list(events)
    if attributes is None:
        names = set()
        for event in events:
            names.update(event.attributes)
        attributes = sorted(names)
    else:
        attributes = list(attributes)

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(RESERVED_COLUMNS) + attributes)
        for event in events:
            row = [event.event_type, repr(event.time), event.sequence]
            row.extend(
                "" if event.get(name) is None else event.get(name) for name in attributes
            )
            writer.writerow(row)
    return len(events)


def read_stream_csv(path, name: Optional[str] = None) -> EventStream:
    """Read a CSV file produced by :func:`write_stream_csv`."""
    path = Path(path)
    events: List[Event] = []
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or "event_type" not in reader.fieldnames:
            raise InvalidQueryError(f"{path} is not an event stream CSV (missing header)")
        for row in reader:
            attributes = {
                column: _parse_value(value)
                for column, value in row.items()
                if column not in RESERVED_COLUMNS and value != ""
            }
            events.append(
                Event(
                    row["event_type"],
                    float(row["time"]),
                    attributes,
                    sequence=int(row.get("sequence") or 0),
                )
            )
    return EventStream(events, name=name or path.stem)


# ---------------------------------------------------------------------------
# PAMAP2 physical activity monitoring format
# ---------------------------------------------------------------------------


def read_pamap2_file(
    path,
    patient: int,
    passive_activities: frozenset = PAMAP2_PASSIVE_ACTIVITIES,
) -> EventStream:
    """Read one PAMAP2 protocol file into ``Measurement`` events.

    Each line carries a timestamp in seconds, an activity identifier and a
    heart rate followed by IMU readings; rows without a heart rate (``NaN``)
    are dropped, mirroring the preprocessing the paper's q1 requires.  The
    subject identifier is not part of the file, so the caller passes it.
    """
    path = Path(path)
    events: List[Event] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle):
            fields = line.split()
            if len(fields) < 3:
                continue
            time = float(fields[0])
            activity = int(float(fields[1]))
            rate = float(fields[2])
            if math.isnan(rate) or activity == 0:
                # activity 0 is the "transient" marker of the data set
                continue
            events.append(
                Event(
                    "Measurement",
                    time,
                    {
                        "patient": patient,
                        "activity": activity,
                        "activity_class": (
                            "passive" if activity in passive_activities else "active"
                        ),
                        "rate": rate,
                    },
                    sequence=line_number,
                )
            )
    return EventStream(events, name=f"pamap2-subject{patient}")


#: Active PAMAP2 activity identifiers used when a symbolic activity name has
#: to be mapped onto the numeric protocol format.
_PAMAP2_ACTIVE_IDS = (4, 5, 6, 7, 11, 12, 13, 16, 17, 18, 19, 20, 24)


def write_pamap2_file(events: Iterable[Event], path) -> int:
    """Write ``Measurement`` events in the PAMAP2 protocol row format.

    The inverse of :func:`read_pamap2_file` for the columns the engine uses;
    the 51 IMU columns are written as ``NaN`` placeholders so the row width
    matches the original format.  Symbolic activity names (as produced by
    the synthetic generator) are mapped onto numeric protocol identifiers,
    passive activities onto the passive identifier range.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    padding = ["NaN"] * (PAMAP2_COLUMNS - 3)
    passive_ids = sorted(PAMAP2_PASSIVE_ACTIVITIES)
    activity_ids: dict = {}
    written = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            if event.event_type != "Measurement":
                continue
            activity = event.get("activity", 0)
            if not isinstance(activity, int):
                if activity not in activity_ids:
                    passive = event.get("activity_class") == "passive"
                    pool = passive_ids if passive else _PAMAP2_ACTIVE_IDS
                    used = sum(1 for known in activity_ids.values() if known in pool)
                    activity_ids[activity] = pool[used % len(pool)]
                activity = activity_ids[activity]
            row = [
                f"{event.time:.2f}",
                str(activity),
                f"{event.get('rate', float('nan'))}",
            ] + padding
            handle.write(" ".join(row) + "\n")
            written += 1
    return written


# ---------------------------------------------------------------------------
# EODData stock transaction format
# ---------------------------------------------------------------------------

#: Header of an EODData-style end-of-day CSV export.
EODDATA_HEADER = ("Symbol", "Sector", "Timestamp", "Price", "Volume", "Type")


def read_eoddata_csv(path, name: Optional[str] = None) -> EventStream:
    """Read an EODData-style CSV into ``Stock`` events.

    Columns: symbol (company), sector, timestamp in seconds, price, volume
    and transaction type.  Companies and sectors may be symbolic; they are
    kept verbatim so GROUP-BY works on them directly.
    """
    path = Path(path)
    events: List[Event] = []
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(EODDATA_HEADER) - set(reader.fieldnames or ())
        if missing:
            raise InvalidQueryError(
                f"{path} is not an EODData-style CSV; missing columns {sorted(missing)}"
            )
        for index, row in enumerate(reader):
            events.append(
                Event(
                    "Stock",
                    float(row["Timestamp"]),
                    {
                        "company": _parse_value(row["Symbol"]),
                        "sector": _parse_value(row["Sector"]),
                        "price": float(row["Price"]),
                        "volume": int(float(row["Volume"])),
                        "transaction": row["Type"],
                    },
                    sequence=index,
                )
            )
    return EventStream(events, name=name or path.stem)


def write_eoddata_csv(events: Iterable[Event], path) -> int:
    """Write ``Stock`` events in the EODData-style CSV format."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    written = 0
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(EODDATA_HEADER)
        for event in events:
            if event.event_type != "Stock":
                continue
            writer.writerow(
                [
                    event.get("company"),
                    event.get("sector"),
                    repr(event.time),
                    event.get("price"),
                    event.get("volume", 0),
                    event.get("transaction", "buy"),
                ]
            )
            written += 1
    return written


# ---------------------------------------------------------------------------
# stream replication
# ---------------------------------------------------------------------------


def replicate_stream(
    events: Iterable[Event],
    copies: int,
    gap_seconds: float = 1.0,
    name: Optional[str] = None,
) -> EventStream:
    """Concatenate ``copies`` time-shifted copies of a stream.

    The paper replicates its 225k-record stock data set ten times to reach
    the event rates of the evaluation; each copy is shifted so the result
    stays time-ordered, with ``gap_seconds`` between consecutive copies.
    """
    if copies < 1:
        raise InvalidQueryError(f"the number of copies must be at least 1, got {copies}")
    base = sort_events(events)
    if not base:
        return EventStream([], name=name or "replicated")
    span = base[-1].time - base[0].time + gap_seconds
    replicated: List[Event] = []
    for copy_index in range(copies):
        offset = copy_index * span
        for event in base:
            replicated.append(event.replace(time=event.time + offset))
    return EventStream(replicated, name=name or f"replicated-x{copies}")
