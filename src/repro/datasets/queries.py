"""Ready-made queries mirroring the paper's examples q1-q3 and Figure 2.

The constructors return fully validated :class:`~repro.query.query.Query`
objects whose knobs (semantics, window, adjacent predicates) can be
overridden -- the benchmark harness uses them to reproduce the parameter
sweeps of Section 9, and the examples use them as-is.
"""

from __future__ import annotations

from typing import List, Optional

from repro.events.event import Event
from repro.query.aggregates import avg, count_star, max_of, min_of
from repro.query.builder import QueryBuilder
from repro.query.ast import KleenePlus, kleene_plus, sequence, atom
from repro.query.predicates import comparison
from repro.query.query import Query
from repro.query.windows import WindowSpec


def healthcare_query(
    semantics: str = "contiguous",
    window: Optional[WindowSpec] = WindowSpec(600.0, 30.0),
    with_rate_predicate: bool = True,
    passive_only: bool = True,
) -> Query:
    """Query q1: min/max heart rate of contiguously increasing measurements.

    ``RETURN patient, MIN(M.rate), MAX(M.rate)``
    ``PATTERN Measurement M+`` under the contiguous semantics, grouped by
    patient, within 10 minutes sliding every 30 seconds.
    """
    builder = (
        QueryBuilder("q1-healthcare")
        .pattern(kleene_plus("Measurement", "M"))
        .semantics(semantics)
        .aggregate(min_of("M", "rate"), max_of("M", "rate"))
        .group_by("patient")
        .window(window)
        .returning("patient")
    )
    if passive_only:
        builder.where_attribute_equals("M", "activity_class", "passive")
    if with_rate_predicate:
        builder.where_adjacent(comparison("M", "rate", "<", "M"))
    return builder.build()


def ridesharing_query(
    semantics: str = "skip-till-next-match",
    window: Optional[WindowSpec] = WindowSpec(600.0, 30.0),
) -> Query:
    """Query q2: number of completed pool trips with call/cancel episodes.

    ``PATTERN SEQ(Accept, (SEQ(Call, Cancel))+, Finish)`` under
    skip-till-next-match, partitioned by driver.
    """
    pattern = sequence(
        atom("Accept"),
        KleenePlus(sequence(atom("Call"), atom("Cancel"))),
        atom("Finish"),
    )
    return (
        QueryBuilder("q2-ridesharing")
        .pattern(pattern)
        .semantics(semantics)
        .aggregate(count_star())
        .group_by("driver")
        .window(window)
        .returning("driver")
        .build()
    )


def stock_query(
    semantics: str = "skip-till-any-match",
    window: Optional[WindowSpec] = WindowSpec(600.0, 10.0),
    with_price_predicate: bool = False,
    group_by_company: bool = False,
) -> Query:
    """Query q3 (simplified grouping): average price of trends following a down-trend.

    ``PATTERN SEQ(Stock A+, Stock B+)`` under skip-till-any-match with the
    ``A.price > NEXT(A).price`` adjacent predicate.  The paper groups by
    ``(sector, A.company, B.company)``; as documented in DESIGN.md the
    reproduction groups by the common ``sector`` attribute (or ``company``
    when ``group_by_company`` is set, matching the 19 trend groups the paper
    reports for the stock data set).
    """
    builder = (
        QueryBuilder("q3-stock")
        .pattern(sequence(kleene_plus("Stock", "A"), kleene_plus("Stock", "B")))
        .semantics(semantics)
        .aggregate(count_star(), avg("B", "price"))
        .window(window)
    )
    group_attribute = "company" if group_by_company else "sector"
    builder.group_by(group_attribute).returning(group_attribute)
    if with_price_predicate:
        builder.where_adjacent(comparison("A", "price", ">", "A"))
    return builder.build()


def stock_trend_query(
    semantics: str = "skip-till-any-match",
    window: Optional[WindowSpec] = WindowSpec(600.0, 10.0),
    with_price_predicate: bool = False,
    group_by_company: bool = True,
) -> Query:
    """Single-Kleene variation of q3 used by the evaluation sweeps.

    ``PATTERN Stock A+`` detects (down-)trends per company and aggregates
    their count and average price.  The paper evaluates "variations of
    queries q1-q3"; this is the variation the stock-data sweeps use because
    every baseline (including A-Seq) can evaluate it, which matches the
    approaches shown in Figures 7-9.
    """
    builder = (
        QueryBuilder("q3-stock-trends")
        .pattern(kleene_plus("Stock", "A"))
        .semantics(semantics)
        .aggregate(count_star(), avg("A", "price"))
        .window(window)
    )
    group_attribute = "company" if group_by_company else "sector"
    builder.group_by(group_attribute).returning(group_attribute)
    if with_price_predicate:
        builder.where_adjacent(comparison("A", "price", ">", "A"))
    return builder.build()


def transportation_query(
    semantics: str = "skip-till-next-match",
    window: Optional[WindowSpec] = WindowSpec(600.0, 30.0),
) -> Query:
    """Trip-counting query over the public transportation stream.

    ``PATTERN SEQ(Enter, (SEQ(Wait, Board))+, Exit)`` partitioned by
    passenger -- the q2-shaped query the paper evaluates on its synthetic
    transportation data set (Figures 6 and 10).
    """
    pattern = sequence(
        atom("Enter"),
        KleenePlus(sequence(atom("Wait"), atom("Board"))),
        atom("Exit"),
    )
    return (
        QueryBuilder("transportation-trips")
        .pattern(pattern)
        .semantics(semantics)
        .aggregate(count_star())
        .group_by("passenger")
        .window(window)
        .returning("passenger")
        .build()
    )


def running_example_query(
    semantics: str = "skip-till-any-match",
    window: Optional[WindowSpec] = None,
) -> Query:
    """The paper's running example: ``(SEQ(A+, B))+`` counting trends."""
    return (
        QueryBuilder("running-example")
        .pattern(KleenePlus(sequence(kleene_plus("A"), atom("B"))))
        .semantics(semantics)
        .aggregate(count_star())
        .window(window)
        .build()
    )


def running_example_stream() -> List[Event]:
    """The stream of Figure 2: a1 b2 a3 a4 c5 b6 a7 b8."""
    return [
        Event("A", 1.0),
        Event("B", 2.0),
        Event("A", 3.0),
        Event("A", 4.0),
        Event("C", 5.0),
        Event("B", 6.0),
        Event("A", 7.0),
        Event("B", 8.0),
    ]
