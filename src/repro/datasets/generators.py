"""Shared utilities of the synthetic stream generators.

All generators are deterministic given a seed, emit events in timestamp
order and expose their knobs through small config dataclasses so that the
benchmark harness can sweep the parameters the paper varies (events per
window, number of groups, predicate selectivity).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence


def seeded_rng(seed: Optional[int]) -> random.Random:
    """A private random generator; ``None`` seeds from the default source."""
    return random.Random(seed)


def random_walk(
    rng: random.Random,
    length: int,
    start: float,
    step: float,
    minimum: Optional[float] = None,
    maximum: Optional[float] = None,
    up_probability: float = 0.5,
) -> List[float]:
    """A bounded random walk used for heart rates and stock prices.

    ``up_probability`` controls the fraction of increasing steps and thereby
    the selectivity of "value increases/decreases" adjacent predicates.
    """
    values: List[float] = []
    current = start
    for _ in range(length):
        direction = 1.0 if rng.random() < up_probability else -1.0
        current += direction * rng.uniform(0.0, step)
        if minimum is not None and current < minimum:
            current = minimum
        if maximum is not None and current > maximum:
            current = maximum
        values.append(round(current, 3))
    return values


@dataclass
class StreamConfig:
    """Common knobs shared by every generator."""

    #: total number of events to generate
    event_count: int = 10_000
    #: average number of events per second of application time
    events_per_second: float = 100.0
    #: seed for deterministic generation
    seed: Optional[int] = 7

    @property
    def duration_seconds(self) -> float:
        """Application-time span covered by the generated stream."""
        if self.events_per_second <= 0:
            return float(self.event_count)
        return self.event_count / self.events_per_second


def spread_timestamps(config: StreamConfig) -> Iterator[float]:
    """Evenly spread integer-resolution timestamps over the stream duration."""
    if config.event_count <= 0:
        return
    step = 1.0 / config.events_per_second if config.events_per_second > 0 else 1.0
    time = 0.0
    for _ in range(config.event_count):
        yield round(time, 6)
        time += step


def round_robin(items: Sequence, index: int):
    """Cycle deterministically through ``items``."""
    return items[index % len(items)]
