"""Stream statistics used to characterise workloads.

The paper's evaluation varies three workload knobs: the number of events
per window, the selectivity of the predicates on adjacent events, and the
number of trend groups.  This module measures those knobs on an arbitrary
stream, so the benchmark harness can report what it actually fed to each
approach and the tests can verify that the synthetic generators deliver the
properties DESIGN.md claims (e.g. that ``StockConfig.decrease_probability``
really is the selectivity of ``A.price > NEXT(A).price``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.events.event import Event
from repro.query.predicates import OPERATORS


@dataclass
class AttributeSummary:
    """Minimum, maximum and mean of a numeric attribute."""

    attribute: str
    count: int = 0
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    mean: float = 0.0

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        self.count += 1
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)
        self.mean += (value - self.mean) / self.count


@dataclass
class StreamStatistics:
    """Workload-relevant statistics of one event stream."""

    name: str
    event_count: int
    duration_seconds: float
    events_per_second: float
    type_counts: Dict[str, int] = field(default_factory=dict)
    group_attribute: Optional[str] = None
    group_count: int = 0
    attribute_summaries: Dict[str, AttributeSummary] = field(default_factory=dict)

    def describe(self) -> str:
        """Readable multi-line rendering (used by the CLI and the reports)."""
        lines = [
            f"stream            : {self.name}",
            f"events            : {self.event_count:,}",
            f"duration (s)      : {self.duration_seconds:,.1f}",
            f"events per second : {self.events_per_second:,.1f}",
        ]
        if self.type_counts:
            mixture = ", ".join(
                f"{event_type}={count}" for event_type, count in sorted(self.type_counts.items())
            )
            lines.append(f"type mixture      : {mixture}")
        if self.group_attribute is not None:
            lines.append(f"trend groups      : {self.group_count} (by {self.group_attribute})")
        for summary in self.attribute_summaries.values():
            lines.append(
                f"{summary.attribute:<18}: min={summary.minimum} max={summary.maximum} "
                f"mean={summary.mean:.3f} ({summary.count} values)"
            )
        return "\n".join(lines)


def describe_stream(
    events: Iterable[Event],
    name: str = "stream",
    group_attribute: Optional[str] = None,
    numeric_attributes: Iterable[str] = (),
) -> StreamStatistics:
    """Compute :class:`StreamStatistics` over ``events`` in one pass."""
    numeric_attributes = tuple(numeric_attributes)
    type_counts: Dict[str, int] = {}
    summaries = {attribute: AttributeSummary(attribute) for attribute in numeric_attributes}
    groups = set()
    count = 0
    first_time: Optional[float] = None
    last_time: Optional[float] = None

    for event in events:
        count += 1
        first_time = event.time if first_time is None else first_time
        last_time = event.time
        type_counts[event.event_type] = type_counts.get(event.event_type, 0) + 1
        if group_attribute is not None and event.has(group_attribute):
            groups.add(event.get(group_attribute))
        for attribute in numeric_attributes:
            value = event.get(attribute)
            if isinstance(value, (int, float)):
                summaries[attribute].observe(float(value))

    duration = (last_time - first_time) if count and last_time is not None else 0.0
    rate = count / duration if duration > 0 else float(count)
    return StreamStatistics(
        name=name,
        event_count=count,
        duration_seconds=duration,
        events_per_second=rate,
        type_counts=type_counts,
        group_attribute=group_attribute,
        group_count=len(groups),
        attribute_summaries=summaries,
    )


def type_mixture(events: Iterable[Event]) -> Dict[str, float]:
    """Fraction of the stream contributed by each event type."""
    counts: Dict[str, int] = {}
    total = 0
    for event in events:
        counts[event.event_type] = counts.get(event.event_type, 0) + 1
        total += 1
    if total == 0:
        return {}
    return {event_type: count / total for event_type, count in counts.items()}


def adjacent_selectivity(
    events: Iterable[Event],
    attribute: str,
    op: str = ">",
    partition_attribute: Optional[str] = None,
    event_type: Optional[str] = None,
) -> float:
    """Fraction of consecutive event pairs satisfying ``left.attr op right.attr``.

    This is the empirical selectivity of an adjacent predicate such as
    ``A.price > NEXT(A).price`` (Figure 9 of the paper).  Pairs are formed
    between consecutive events of the same partition (e.g. the same
    company) when ``partition_attribute`` is given, and optionally
    restricted to one event type.  Returns 0.0 when no pair qualifies.
    """
    compare = OPERATORS[op]
    last_value: Dict[object, float] = {}
    satisfied = 0
    pairs = 0
    for event in events:
        if event_type is not None and event.event_type != event_type:
            continue
        value = event.get(attribute)
        if not isinstance(value, (int, float)):
            continue
        key = event.get(partition_attribute) if partition_attribute else None
        previous = last_value.get(key)
        if previous is not None:
            pairs += 1
            if compare(previous, value):
                satisfied += 1
        last_value[key] = value
    return satisfied / pairs if pairs else 0.0


def events_per_group(
    events: Iterable[Event], group_attribute: str
) -> Dict[object, int]:
    """Number of events carried by each value of ``group_attribute``."""
    counts: Dict[object, int] = {}
    for event in events:
        if event.has(group_attribute):
            key = event.get(group_attribute)
            counts[key] = counts.get(key, 0) + 1
    return counts


def load_imbalance(events: Iterable[Event], group_attribute: str) -> float:
    """Ratio of the largest to the average group size (1.0 = perfectly even).

    Used to sanity-check the parallel-execution benchmarks: a heavily skewed
    stream bounds the speed-up attainable by partition parallelism.
    """
    counts = events_per_group(events, group_attribute)
    if not counts:
        return 0.0
    average = sum(counts.values()) / len(counts)
    return max(counts.values()) / average if average else 0.0


def window_event_counts(
    events: Iterable[Event], window
) -> List[Tuple[int, int]]:
    """Number of events falling into every window of a window specification.

    Returns ``(window id, event count)`` pairs sorted by window id; useful
    to report the "events per window" axis the paper's figures sweep.
    """
    counts: Dict[int, int] = {}
    for event in events:
        for window_id in window.windows_of(event.time):
            counts[window_id] = counts.get(window_id, 0) + 1
    return sorted(counts.items())
