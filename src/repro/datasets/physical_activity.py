"""Synthetic physical-activity monitoring stream (PAMAP2 substitute).

The paper's first real data set contains heart-rate reports of 14 people
performing 18 activities.  The generator reproduces the schema and the
properties the evaluation depends on:

* one ``Measurement`` event per report with ``patient``, ``activity`` and
  ``rate`` attributes,
* a configurable number of patients (the trend groups of q1),
* heart rates following a per-patient random walk whose upward-step
  probability controls how long the contiguously increasing runs are (the
  trends detected by q1 under the contiguous semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.datasets.generators import StreamConfig, seeded_rng, spread_timestamps
from repro.events.event import Event
from repro.events.stream import EventStream

#: Activities considered "passive" by query q1.
PASSIVE_ACTIVITIES = ("lying", "sitting", "standing", "watching_tv", "reading")
#: Remaining activities of the PAMAP2 protocol (18 activities in total).
ACTIVE_ACTIVITIES = (
    "walking",
    "running",
    "cycling",
    "nordic_walking",
    "ascending_stairs",
    "descending_stairs",
    "vacuum_cleaning",
    "ironing",
    "rope_jumping",
    "playing_soccer",
    "car_driving",
    "folding_laundry",
    "house_cleaning",
)


@dataclass
class PhysicalActivityConfig(StreamConfig):
    """Knobs of the physical-activity generator."""

    #: number of monitored patients (trend groups); the paper uses 14
    patients: int = 14
    #: probability that a measurement belongs to a passive activity
    passive_probability: float = 0.7
    #: probability that the heart rate increases from one report to the next;
    #: controls the length of contiguously increasing runs
    increase_probability: float = 0.55
    #: bounds and step of the heart-rate random walk
    rate_start: float = 70.0
    rate_step: float = 3.0
    rate_minimum: float = 40.0
    rate_maximum: float = 200.0
    #: activities drawn for passive / active reports
    passive_activities: tuple = field(default=PASSIVE_ACTIVITIES)
    active_activities: tuple = field(default=ACTIVE_ACTIVITIES)


def generate_physical_activity_stream(
    config: PhysicalActivityConfig = PhysicalActivityConfig(),
) -> EventStream:
    """Generate a time-ordered stream of ``Measurement`` events."""
    rng = seeded_rng(config.seed)
    rates = {patient: config.rate_start + rng.uniform(-10, 10) for patient in range(config.patients)}
    events: List[Event] = []
    for sequence, time in enumerate(spread_timestamps(config)):
        patient = rng.randrange(config.patients)
        passive = rng.random() < config.passive_probability
        activity = (
            rng.choice(config.passive_activities)
            if passive
            else rng.choice(config.active_activities)
        )
        direction = 1.0 if rng.random() < config.increase_probability else -1.0
        rate = rates[patient] + direction * rng.uniform(0.0, config.rate_step)
        rate = min(max(rate, config.rate_minimum), config.rate_maximum)
        rates[patient] = rate
        events.append(
            Event(
                "Measurement",
                time,
                {
                    "patient": patient,
                    "activity": activity,
                    "activity_class": "passive" if passive else "active",
                    "rate": round(rate, 2),
                },
                sequence=sequence,
            )
        )
    return EventStream(events, name="physical_activity")
