"""Synthetic data-set generators mirroring the paper's workloads.

The paper evaluates COGRA on two real data sets (PAMAP2 physical-activity
monitoring and EODData stock transactions) and one synthetic public
transportation data set.  The real data sets are not redistributable, so
this package generates synthetic streams with the same schemas and the same
workload-relevant properties (number of groups, event type mixture,
attribute monotonicity and selectivity); DESIGN.md documents why these
substitutions preserve the behaviour the evaluation measures.
"""

from repro.datasets.generators import StreamConfig, random_walk, seeded_rng
from repro.datasets.io import (
    read_eoddata_csv,
    read_pamap2_file,
    read_stream_csv,
    replicate_stream,
    write_eoddata_csv,
    write_pamap2_file,
    write_stream_csv,
)
from repro.datasets.statistics import (
    StreamStatistics,
    adjacent_selectivity,
    describe_stream,
    events_per_group,
    load_imbalance,
    type_mixture,
    window_event_counts,
)
from repro.datasets.physical_activity import (
    PhysicalActivityConfig,
    generate_physical_activity_stream,
)
from repro.datasets.stock import StockConfig, generate_stock_stream
from repro.datasets.transportation import (
    TransportationConfig,
    generate_transportation_stream,
)
from repro.datasets.ridesharing import RidesharingConfig, generate_ridesharing_stream
from repro.datasets.queries import (
    healthcare_query,
    ridesharing_query,
    running_example_query,
    running_example_stream,
    stock_query,
    stock_trend_query,
    transportation_query,
)

__all__ = [
    "PhysicalActivityConfig",
    "RidesharingConfig",
    "StockConfig",
    "StreamConfig",
    "StreamStatistics",
    "TransportationConfig",
    "adjacent_selectivity",
    "describe_stream",
    "events_per_group",
    "generate_physical_activity_stream",
    "generate_ridesharing_stream",
    "generate_stock_stream",
    "generate_transportation_stream",
    "healthcare_query",
    "load_imbalance",
    "random_walk",
    "read_eoddata_csv",
    "read_pamap2_file",
    "read_stream_csv",
    "replicate_stream",
    "ridesharing_query",
    "running_example_query",
    "running_example_stream",
    "seeded_rng",
    "stock_query",
    "stock_trend_query",
    "transportation_query",
    "type_mixture",
    "window_event_counts",
    "write_eoddata_csv",
    "write_pamap2_file",
    "write_stream_csv",
]
