"""Synthetic ridesharing (Uber-style) trip stream for query q2.

Query q2 of the paper counts the Uber pool trips a driver completes when
some riders cancel after contacting the driver::

    SEQ(Accept, (SEQ(Call, Cancel))+, Finish)

The ridesharing use case is a motivating example rather than an evaluation
data set, so this generator only needs to produce plausible trip sessions:
each driver repeatedly accepts a trip, receives a number of call/cancel
pairs (interleaved with irrelevant in-transit events that
skip-till-next-match is allowed to skip) and finishes the trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.datasets.generators import StreamConfig, seeded_rng
from repro.events.event import Event
from repro.events.stream import EventStream, sort_events


@dataclass
class RidesharingConfig(StreamConfig):
    """Knobs of the ridesharing generator."""

    #: number of drivers (the grouping attribute of q2)
    drivers: int = 25
    #: minimal number of call/cancel pairs per trip (0 allows clean trips,
    #: which the negation example counts)
    min_cancellations: int = 1
    #: maximal number of call/cancel pairs per trip
    max_cancellations: int = 3
    #: probability of an irrelevant in-transit event between trip events
    in_transit_probability: float = 0.3


def generate_ridesharing_stream(config: RidesharingConfig = RidesharingConfig()) -> EventStream:
    """Generate a time-ordered stream of ridesharing session events."""
    rng = seeded_rng(config.seed)
    events: List[Event] = []
    step = 1.0 / config.events_per_second if config.events_per_second > 0 else 1.0
    clocks = {driver: rng.uniform(0.0, step * config.drivers) for driver in range(config.drivers)}
    session_counter = 0

    def emit(event_type: str, driver: int, session: int) -> None:
        time = clocks[driver]
        events.append(
            Event(
                event_type,
                time,
                {"driver": driver, "session": session, "rider": rng.randrange(10_000)},
            )
        )
        clocks[driver] = time + step * config.drivers * rng.uniform(0.5, 1.5)

    while len(events) < config.event_count:
        driver = rng.randrange(config.drivers)
        session_counter += 1
        emit("Accept", driver, session_counter)
        for _ in range(rng.randint(config.min_cancellations, config.max_cancellations)):
            if rng.random() < config.in_transit_probability:
                emit("InTransit", driver, session_counter)
            emit("Call", driver, session_counter)
            emit("Cancel", driver, session_counter)
        if rng.random() < config.in_transit_probability:
            emit("DropOff", driver, session_counter)
        emit("Finish", driver, session_counter)

    ordered = sort_events(events[: config.event_count])
    return EventStream(ordered, name="ridesharing")
