"""The event trend aggregation query (Definition 6 of the paper).

A :class:`Query` bundles the six clauses of the language:

* RETURN    -- grouping attributes to echo plus aggregate specifications,
* PATTERN   -- a (Kleene) pattern,
* SEMANTICS -- one of the three event matching semantics,
* WHERE     -- optional local / equivalence / adjacent predicates,
* GROUP-BY  -- optional grouping attributes,
* WITHIN / SLIDE -- the sliding window.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import InvalidQueryError
from repro.query.aggregates import AggregateSpec
from repro.query.ast import Pattern
from repro.query.predicates import (
    AdjacentPredicate,
    EquivalencePredicate,
    LocalPredicate,
    Predicate,
)
from repro.query.semantics import Semantics
from repro.query.windows import WindowSpec


class Query:
    """An event trend aggregation query.

    Parameters
    ----------
    pattern:
        The PATTERN clause.
    semantics:
        The SEMANTICS clause.
    aggregates:
        Aggregate columns of the RETURN clause.
    predicates:
        WHERE-clause predicates (any mix of local, equivalence and
        adjacent predicates).
    group_by:
        GROUP-BY attribute names.  Grouping attributes must be carried by
        every event that participates in a trend (see DESIGN.md for the
        treatment of variable-scoped grouping).
    window:
        The WITHIN/SLIDE clause.  ``None`` means a single unbounded window
        covering the whole stream, which is convenient for tests and for
        the paper's running example.
    return_attributes:
        Non-aggregate columns of the RETURN clause (normally the grouping
        attributes, e.g. ``patient`` in q1).
    min_trend_length:
        Optional minimal trend length constraint (Section 8).
    name:
        Optional identifier used in logs and benchmark reports.
    """

    def __init__(
        self,
        pattern: Pattern,
        semantics: Semantics,
        aggregates: Sequence[AggregateSpec],
        predicates: Sequence[Predicate] = (),
        group_by: Sequence[str] = (),
        window: Optional[WindowSpec] = None,
        return_attributes: Sequence[str] = (),
        min_trend_length: int = 1,
        name: str = "",
    ):
        self.pattern = pattern
        self.semantics = semantics
        self.aggregates: Tuple[AggregateSpec, ...] = tuple(aggregates)
        self.predicates: Tuple[Predicate, ...] = tuple(predicates)
        self.group_by: Tuple[str, ...] = tuple(group_by)
        self.window = window
        self.return_attributes: Tuple[str, ...] = tuple(return_attributes)
        self.min_trend_length = int(min_trend_length)
        self.name = name or "query"
        self.validate()

    # -- predicate views -----------------------------------------------------

    @property
    def local_predicates(self) -> List[LocalPredicate]:
        """Predicates on single events (filter the stream)."""
        return [p for p in self.predicates if isinstance(p, LocalPredicate)]

    @property
    def equivalence_predicates(self) -> List[EquivalencePredicate]:
        """``[attr]`` predicates (partition the stream)."""
        return [p for p in self.predicates if isinstance(p, EquivalencePredicate)]

    @property
    def adjacent_predicates(self) -> List[AdjacentPredicate]:
        """Predicates on adjacent events (drive granularity selection)."""
        return [p for p in self.predicates if isinstance(p, AdjacentPredicate)]

    @property
    def has_adjacent_predicates(self) -> bool:
        """True when the query restricts the adjacency relation."""
        return bool(self.adjacent_predicates) or any(
            not p.is_stream_partitioning for p in self.equivalence_predicates
        )

    @property
    def partition_attributes(self) -> Tuple[str, ...]:
        """Attributes that partition the stream: GROUP-BY plus ``[attr]``.

        Duplicates are removed while the original order is preserved.
        """
        attributes: List[str] = []
        for attribute in self.group_by:
            if attribute not in attributes:
                attributes.append(attribute)
        for predicate in self.equivalence_predicates:
            if predicate.is_stream_partitioning and predicate.attribute not in attributes:
                attributes.append(predicate.attribute)
        return tuple(attributes)

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`InvalidQueryError` for inconsistent queries."""
        self.pattern.validate()
        variables = set(self.pattern.variables())
        for spec in self.aggregates:
            if spec.variable is not None and spec.variable not in variables:
                raise InvalidQueryError(
                    f"aggregate {spec.name} refers to variable {spec.variable!r} "
                    f"which is not bound by the pattern {self.pattern!r}"
                )
        for predicate in self.predicates:
            if isinstance(predicate, AdjacentPredicate):
                for variable in (
                    predicate.predecessor_variable,
                    predicate.successor_variable,
                ):
                    if variable not in variables:
                        raise InvalidQueryError(
                            f"adjacent predicate {predicate.describe()} refers to "
                            f"unknown variable {variable!r}"
                        )
            elif isinstance(predicate, LocalPredicate):
                if predicate.variable is not None and predicate.variable not in variables:
                    raise InvalidQueryError(
                        f"local predicate {predicate.describe()} refers to unknown "
                        f"variable {predicate.variable!r}"
                    )
            elif isinstance(predicate, EquivalencePredicate):
                if predicate.variable is not None and predicate.variable not in variables:
                    raise InvalidQueryError(
                        f"equivalence predicate {predicate.describe()} refers to "
                        f"unknown variable {predicate.variable!r}"
                    )
        if not self.aggregates:
            raise InvalidQueryError("a query must request at least one aggregate")
        if self.min_trend_length < 1:
            raise InvalidQueryError("the minimal trend length must be at least 1")

    # -- misc --------------------------------------------------------------------

    def describe(self) -> str:
        """Multi-line textual rendering of the query (for logs and plans)."""
        lines = [
            f"RETURN    {', '.join(list(self.return_attributes) + [a.name for a in self.aggregates])}",
            f"PATTERN   {self.pattern!r}",
            f"SEMANTICS {self.semantics.value}",
        ]
        if self.predicates:
            lines.append(
                "WHERE     " + " AND ".join(p.describe() for p in self.predicates)
            )
        if self.group_by:
            lines.append(f"GROUP-BY  {', '.join(self.group_by)}")
        if self.window is not None:
            if self.window.is_count_based:
                lines.append(f"WITHIN    {self.window.count} events")
            else:
                lines.append(
                    f"WITHIN    {self.window.size:g} seconds SLIDE {self.window.slide:g} seconds"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Query({self.name!r}, {self.pattern!r}, {self.semantics.short_name})"
