"""Fluent builder for event trend aggregation queries.

The builder is the recommended programmatic entry point::

    query = (
        QueryBuilder()
        .pattern(kleene_plus("Measurement", "M"))
        .semantics("contiguous")
        .aggregate(min_of("M", "rate"))
        .aggregate(max_of("M", "rate"))
        .where_local("M", lambda e: e["activity"] == "passive",
                     "M.activity = passive")
        .where_adjacent(comparison("M", "rate", "<", "M"))
        .group_by("patient")
        .within(minutes=10, slide_seconds=30)
        .build()
    )
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Union

from repro.errors import InvalidQueryError
from repro.events.event import Event
from repro.query.aggregates import AggregateSpec, count_star
from repro.query.ast import Pattern
from repro.query.predicates import (
    AdjacentPredicate,
    EquivalencePredicate,
    LocalPredicate,
    Predicate,
)
from repro.query.query import Query
from repro.query.semantics import Semantics
from repro.query.windows import WindowSpec


class QueryBuilder:
    """Incrementally assemble a :class:`~repro.query.query.Query`."""

    def __init__(self, name: str = ""):
        self._name = name
        self._pattern: Optional[Pattern] = None
        self._semantics: Semantics = Semantics.SKIP_TILL_ANY_MATCH
        self._aggregates: List[AggregateSpec] = []
        self._predicates: List[Predicate] = []
        self._group_by: List[str] = []
        self._return_attributes: List[str] = []
        self._window: Optional[WindowSpec] = None
        self._min_trend_length = 1

    # -- clauses ---------------------------------------------------------------

    def named(self, name: str) -> "QueryBuilder":
        """Set the query name used in logs and benchmark reports."""
        self._name = name
        return self

    def pattern(self, pattern: Pattern) -> "QueryBuilder":
        """Set the PATTERN clause."""
        self._pattern = pattern
        return self

    def semantics(self, semantics: Union[Semantics, str]) -> "QueryBuilder":
        """Set the SEMANTICS clause (accepts a :class:`Semantics` or a name)."""
        if isinstance(semantics, str):
            semantics = Semantics.parse(semantics)
        self._semantics = semantics
        return self

    def aggregate(self, *specs: AggregateSpec) -> "QueryBuilder":
        """Append aggregate columns to the RETURN clause."""
        self._aggregates.extend(specs)
        return self

    def returning(self, *attributes: str) -> "QueryBuilder":
        """Append plain (non-aggregate) columns to the RETURN clause."""
        self._return_attributes.extend(attributes)
        return self

    def where(self, predicate: Predicate) -> "QueryBuilder":
        """Append an arbitrary predicate to the WHERE clause."""
        self._predicates.append(predicate)
        return self

    def where_local(
        self,
        variable: Optional[str],
        condition: Callable[[Event], bool],
        description: str = "",
    ) -> "QueryBuilder":
        """Append a predicate on a single event."""
        self._predicates.append(LocalPredicate(variable, condition, description))
        return self

    def where_attribute_equals(
        self, variable: Optional[str], attribute: str, value: Any
    ) -> "QueryBuilder":
        """Append ``Var.attribute = constant``."""
        self._predicates.append(LocalPredicate.attribute_equals(variable, attribute, value))
        return self

    def where_attribute_compare(
        self, variable: Optional[str], attribute: str, op: str, value: Any
    ) -> "QueryBuilder":
        """Append ``Var.attribute <op> constant`` (op in <, <=, >, >=, =, !=)."""
        self._predicates.append(
            LocalPredicate.attribute_compare(variable, attribute, op, value)
        )
        return self

    def where_equivalence(self, attribute: str, variable: Optional[str] = None) -> "QueryBuilder":
        """Append an equivalence predicate ``[attr]`` / ``[Var.attr]``."""
        self._predicates.append(EquivalencePredicate(attribute, variable))
        return self

    def where_adjacent(self, predicate: AdjacentPredicate) -> "QueryBuilder":
        """Append a predicate on adjacent events."""
        self._predicates.append(predicate)
        return self

    def group_by(self, *attributes: str) -> "QueryBuilder":
        """Set / extend the GROUP-BY clause."""
        self._group_by.extend(attributes)
        return self

    def within(
        self,
        seconds: float = 0.0,
        minutes: float = 0.0,
        hours: float = 0.0,
        slide_seconds: float = 0.0,
        slide_minutes: float = 0.0,
    ) -> "QueryBuilder":
        """Set the WITHIN/SLIDE clause from second/minute/hour amounts."""
        size = seconds + 60.0 * minutes + 3600.0 * hours
        slide = slide_seconds + 60.0 * slide_minutes
        self._window = WindowSpec(size, slide or size)
        return self

    def window(self, window: Optional[WindowSpec]) -> "QueryBuilder":
        """Set the WITHIN/SLIDE clause from an explicit :class:`WindowSpec`."""
        self._window = window
        return self

    def min_trend_length(self, length: int) -> "QueryBuilder":
        """Constrain the minimal trend length (Section 8 extension)."""
        self._min_trend_length = length
        return self

    # -- build ------------------------------------------------------------------

    def build(self) -> Query:
        """Validate the collected clauses and return the query."""
        if self._pattern is None:
            raise InvalidQueryError("a query requires a PATTERN clause")
        aggregates = self._aggregates or [count_star()]
        return Query(
            pattern=self._pattern,
            semantics=self._semantics,
            aggregates=aggregates,
            predicates=self._predicates,
            group_by=self._group_by,
            window=self._window,
            return_attributes=self._return_attributes or list(self._group_by),
            min_trend_length=self._min_trend_length,
            name=self._name,
        )
