"""Event matching semantics (Section 2.2 of the paper).

Three semantics constrain how contiguous the events of a trend must be:

* ``SKIP_TILL_ANY_MATCH`` (ANY) -- the most flexible semantics; any event
  may be skipped, so every subset of relevant events that respects the
  pattern structure forms a trend.
* ``SKIP_TILL_NEXT_MATCH`` (NEXT) -- relevant events must be matched,
  irrelevant events may be skipped.
* ``CONTIGUOUS`` (CONT) -- no event at all may occur between two adjacent
  events of a trend.

The containment relation is ``CONT ⊆ NEXT ⊆ ANY`` (Figure 2).
"""

from __future__ import annotations

import enum


class Semantics(enum.Enum):
    """The three event matching semantics supported by COGRA."""

    SKIP_TILL_ANY_MATCH = "skip-till-any-match"
    SKIP_TILL_NEXT_MATCH = "skip-till-next-match"
    CONTIGUOUS = "contiguous"

    # -- aliases used throughout the paper ---------------------------------

    @property
    def short_name(self) -> str:
        """Short label used in the paper's tables (ANY / NEXT / CONT)."""
        return _SHORT_NAMES[self]

    @property
    def is_any(self) -> bool:
        """True for skip-till-any-match."""
        return self is Semantics.SKIP_TILL_ANY_MATCH

    @property
    def is_next(self) -> bool:
        """True for skip-till-next-match."""
        return self is Semantics.SKIP_TILL_NEXT_MATCH

    @property
    def is_contiguous(self) -> bool:
        """True for the contiguous semantics."""
        return self is Semantics.CONTIGUOUS

    def is_at_most_as_flexible_as(self, other: "Semantics") -> bool:
        """Return True when every trend under ``self`` is a trend under ``other``.

        This encodes the containment relation of Figure 2:
        ``CONT <= NEXT <= ANY``.
        """
        return _FLEXIBILITY[self] <= _FLEXIBILITY[other]

    @classmethod
    def parse(cls, text: str) -> "Semantics":
        """Parse a semantics name as written in the SEMANTICS clause.

        Accepts the full names (``skip-till-any-match``), the short names
        (``any``, ``next``, ``cont``/``contiguous``), case-insensitively,
        with ``-``, ``_`` or spaces as separators.
        """
        normalized = text.strip().lower().replace("_", "-").replace(" ", "-")
        for member in cls:
            if normalized == member.value:
                return member
        aliases = {
            "any": cls.SKIP_TILL_ANY_MATCH,
            "skip-till-any": cls.SKIP_TILL_ANY_MATCH,
            "stam": cls.SKIP_TILL_ANY_MATCH,
            "next": cls.SKIP_TILL_NEXT_MATCH,
            "skip-till-next": cls.SKIP_TILL_NEXT_MATCH,
            "stnm": cls.SKIP_TILL_NEXT_MATCH,
            "cont": cls.CONTIGUOUS,
            "contiguous": cls.CONTIGUOUS,
        }
        if normalized in aliases:
            return aliases[normalized]
        raise ValueError(f"unknown event matching semantics: {text!r}")

    def __str__(self) -> str:
        return self.value


_SHORT_NAMES = {
    Semantics.SKIP_TILL_ANY_MATCH: "ANY",
    Semantics.SKIP_TILL_NEXT_MATCH: "NEXT",
    Semantics.CONTIGUOUS: "CONT",
}

#: Flexibility rank used for the containment relation (higher = more trends).
_FLEXIBILITY = {
    Semantics.CONTIGUOUS: 0,
    Semantics.SKIP_TILL_NEXT_MATCH: 1,
    Semantics.SKIP_TILL_ANY_MATCH: 2,
}

#: Semantics evaluated with a single-predecessor (pattern-grained) strategy.
SINGLE_PREDECESSOR_SEMANTICS = frozenset(
    {Semantics.SKIP_TILL_NEXT_MATCH, Semantics.CONTIGUOUS}
)
