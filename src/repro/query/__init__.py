"""Query model: patterns, semantics, predicates, aggregates, windows.

This package implements Definition 6 of the paper (the event trend
aggregation query) together with a fluent builder and a parser for the
SASE-style textual syntax used by the example queries q1-q3.
"""

from repro.query.aggregates import (
    AggregateFunction,
    AggregateSpec,
    avg,
    count_star,
    count_type,
    max_of,
    min_of,
    sum_of,
)
from repro.query.ast import (
    EventTypePattern,
    Kleene,
    KleenePlus,
    KleeneStar,
    Negation,
    OptionalPattern,
    Disjunction,
    Pattern,
    Sequence,
    atom,
    kleene_plus,
    sequence,
)
from repro.query.builder import QueryBuilder
from repro.query.parser import parse_query
from repro.query.predicates import (
    AdjacentPredicate,
    EquivalencePredicate,
    LocalPredicate,
    Predicate,
    comparison,
)
from repro.query.query import Query
from repro.query.semantics import Semantics
from repro.query.windows import CountWindowSpec, WindowSpec

__all__ = [
    "AggregateFunction",
    "AggregateSpec",
    "AdjacentPredicate",
    "CountWindowSpec",
    "Disjunction",
    "EquivalencePredicate",
    "EventTypePattern",
    "Kleene",
    "KleenePlus",
    "KleeneStar",
    "LocalPredicate",
    "Negation",
    "OptionalPattern",
    "Pattern",
    "Predicate",
    "Query",
    "QueryBuilder",
    "Semantics",
    "Sequence",
    "WindowSpec",
    "atom",
    "avg",
    "comparison",
    "count_star",
    "count_type",
    "kleene_plus",
    "max_of",
    "min_of",
    "parse_query",
    "sequence",
    "sum_of",
]
