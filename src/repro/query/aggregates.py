"""Aggregation functions of the RETURN clause (Section 2.3 of the paper).

COGRA supports the distributive aggregation functions COUNT, MIN, MAX and
SUM as well as the algebraic function AVG, all of which can be maintained
incrementally (Gray et al., Data Cube).  An :class:`AggregateSpec` names
one output column of the query: the function, the pattern variable it
ranges over and, except for COUNT, the attribute it aggregates.

Semantics over a group of matched trends:

* ``COUNT(*)``      -- number of trends.
* ``COUNT(E)``      -- total number of events bound to variable ``E`` over
  all trends (an event contributes once per trend that contains it).
* ``MIN(E.attr)`` / ``MAX(E.attr)`` -- extremum of ``attr`` over events
  bound to ``E`` in any trend of the group.
* ``SUM(E.attr)``   -- sum of ``attr`` over events bound to ``E``, counted
  once per trend containing the event.
* ``AVG(E.attr)``   -- ``SUM(E.attr) / COUNT(E)``.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import InvalidQueryError


class AggregateFunction(enum.Enum):
    """The aggregation functions supported by the query language."""

    COUNT = "COUNT"
    MIN = "MIN"
    MAX = "MAX"
    SUM = "SUM"
    AVG = "AVG"

    @property
    def needs_attribute(self) -> bool:
        """True for functions that aggregate an attribute value."""
        return self in (
            AggregateFunction.MIN,
            AggregateFunction.MAX,
            AggregateFunction.SUM,
            AggregateFunction.AVG,
        )

    @property
    def is_distributive(self) -> bool:
        """True for COUNT/MIN/MAX/SUM (AVG is algebraic)."""
        return self is not AggregateFunction.AVG


class AggregateSpec:
    """One aggregate column of the RETURN clause.

    Parameters
    ----------
    function:
        The aggregation function.
    variable:
        Pattern variable the aggregate ranges over, or ``None`` for
        ``COUNT(*)``.
    attribute:
        Attribute aggregated by MIN/MAX/SUM/AVG; ``None`` for COUNT.
    """

    def __init__(
        self,
        function: AggregateFunction,
        variable: Optional[str] = None,
        attribute: Optional[str] = None,
    ):
        if function.needs_attribute and (variable is None or attribute is None):
            raise InvalidQueryError(
                f"{function.value} requires both a variable and an attribute, "
                f"got variable={variable!r} attribute={attribute!r}"
            )
        if function is AggregateFunction.COUNT and attribute is not None:
            raise InvalidQueryError("COUNT takes either '*' or a variable, not an attribute")
        self.function = function
        self.variable = variable
        self.attribute = attribute

    # -- classification -----------------------------------------------------

    @property
    def is_count_star(self) -> bool:
        """True for ``COUNT(*)``."""
        return self.function is AggregateFunction.COUNT and self.variable is None

    @property
    def target(self) -> Optional[tuple]:
        """``(variable, attribute)`` target of the aggregate, if any.

        ``COUNT(*)`` has no target; ``COUNT(E)`` has target ``(E, None)``.
        """
        if self.is_count_star:
            return None
        return (self.variable, self.attribute)

    @property
    def name(self) -> str:
        """Column name used in result rows, e.g. ``MIN(M.rate)``."""
        if self.is_count_star:
            return "COUNT(*)"
        if self.attribute is None:
            return f"{self.function.value}({self.variable})"
        return f"{self.function.value}({self.variable}.{self.attribute})"

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AggregateSpec):
            return NotImplemented
        return (
            self.function is other.function
            and self.variable == other.variable
            and self.attribute == other.attribute
        )

    def __hash__(self) -> int:
        return hash((self.function, self.variable, self.attribute))


# -- convenience constructors -------------------------------------------------


def count_star() -> AggregateSpec:
    """``COUNT(*)`` -- the number of matched trends per group."""
    return AggregateSpec(AggregateFunction.COUNT)


def count_type(variable: str) -> AggregateSpec:
    """``COUNT(E)`` -- total occurrences of variable ``E`` over all trends."""
    return AggregateSpec(AggregateFunction.COUNT, variable)


def min_of(variable: str, attribute: str) -> AggregateSpec:
    """``MIN(E.attr)``."""
    return AggregateSpec(AggregateFunction.MIN, variable, attribute)


def max_of(variable: str, attribute: str) -> AggregateSpec:
    """``MAX(E.attr)``."""
    return AggregateSpec(AggregateFunction.MAX, variable, attribute)


def sum_of(variable: str, attribute: str) -> AggregateSpec:
    """``SUM(E.attr)``."""
    return AggregateSpec(AggregateFunction.SUM, variable, attribute)


def avg(variable: str, attribute: str) -> AggregateSpec:
    """``AVG(E.attr)`` = ``SUM(E.attr) / COUNT(E)``."""
    return AggregateSpec(AggregateFunction.AVG, variable, attribute)
