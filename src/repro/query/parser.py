"""Parser for the SASE-style textual query language used in the paper.

The syntax follows the example queries q1-q3 of the paper::

    RETURN driver, COUNT(*)
    PATTERN SEQ(Accept, (SEQ(Call, Cancel))+, Finish)
    SEMANTICS skip-till-next-match
    WHERE [driver]
    GROUP-BY driver
    WITHIN 10 minutes SLIDE 30 seconds

Clauses may appear on one line or many, in any order, and only RETURN and
PATTERN are mandatory.  The WHERE clause understands

* equivalence predicates   ``[attr]`` and ``[Var.attr]``,
* local predicates         ``Var.attr <op> constant``,
* adjacent predicates      ``Var.attr <op> NEXT(Var).attr`` and
  ``Var1.attr <op> Var2.attr`` (the left side refers to the predecessor
  event of the adjacent pair).

Constants may be numbers, single-quoted strings or bare identifiers (which
are treated as strings, so ``M.activity = passive`` compares against the
string ``"passive"``).
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Tuple

from repro.errors import QueryParseError
from repro.query.aggregates import (
    AggregateFunction,
    AggregateSpec,
)
from repro.query.ast import (
    Disjunction,
    EventTypePattern,
    KleenePlus,
    KleeneStar,
    Negation,
    OptionalPattern,
    Pattern,
    Sequence,
)
from repro.query.predicates import (
    EquivalencePredicate,
    LocalPredicate,
    OPERATORS,
    comparison,
)
from repro.query.query import Query
from repro.query.semantics import Semantics
from repro.query.windows import CountWindowSpec, WindowSpec, duration_to_seconds

_CLAUSE_KEYWORDS = ("RETURN", "PATTERN", "SEMANTICS", "WHERE", "GROUP-BY", "WITHIN")

_CLAUSE_RE = re.compile(
    r"\b(RETURN|PATTERN|SEMANTICS|WHERE|GROUP-BY|GROUP\s+BY|WITHIN)\b",
    re.IGNORECASE,
)


def parse_query(text: str, name: str = "") -> Query:
    """Parse a textual query into a :class:`~repro.query.query.Query`."""
    clauses = _split_clauses(text)
    if "PATTERN" not in clauses:
        raise QueryParseError("the query has no PATTERN clause")

    pattern = parse_pattern(clauses["PATTERN"])
    variables = set(pattern.variables()) | set(
        leaf.variable for leaf in pattern.leaves()
    )

    semantics = Semantics.SKIP_TILL_ANY_MATCH
    if "SEMANTICS" in clauses:
        try:
            semantics = Semantics.parse(clauses["SEMANTICS"])
        except ValueError as exc:
            raise QueryParseError(str(exc)) from exc

    return_attributes: List[str] = []
    aggregates: List[AggregateSpec] = []
    if "RETURN" in clauses:
        return_attributes, aggregates = _parse_return(clauses["RETURN"], variables)

    predicates = []
    if "WHERE" in clauses:
        predicates = _parse_where(clauses["WHERE"], variables)

    group_by: List[str] = []
    if "GROUP-BY" in clauses:
        group_by = _parse_group_by(clauses["GROUP-BY"], variables)

    window = None
    if "WITHIN" in clauses:
        window = _parse_window(clauses["WITHIN"])

    return Query(
        pattern=pattern,
        semantics=semantics,
        aggregates=aggregates,
        predicates=predicates,
        group_by=group_by,
        window=window,
        return_attributes=return_attributes,
        name=name,
    )


# ---------------------------------------------------------------------------
# clause splitting
# ---------------------------------------------------------------------------


def _split_clauses(text: str) -> dict:
    """Split the query text into clause-name -> clause-body."""
    matches = list(_CLAUSE_RE.finditer(text))
    if not matches:
        raise QueryParseError("no query clauses found")
    clauses: dict = {}
    for index, match in enumerate(matches):
        keyword = re.sub(r"\s+", "-", match.group(1).upper())
        start = match.end()
        end = matches[index + 1].start() if index + 1 < len(matches) else len(text)
        body = text[start:end].strip()
        if keyword in clauses:
            raise QueryParseError(f"duplicate {keyword} clause")
        clauses[keyword] = body
    return clauses


# ---------------------------------------------------------------------------
# PATTERN clause
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(SEQ\b|NOT\b|[A-Za-z_][A-Za-z_0-9]*|\(|\)|,|\+|\*|\?|\|)",
    re.IGNORECASE,
)


def _tokenize_pattern(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(text):
        if text[position].isspace():
            position += 1
            continue
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QueryParseError(
                f"unexpected character {text[position]!r} in pattern", position
            )
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _PatternParser:
    """Recursive-descent parser for the PATTERN clause."""

    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.position = 0

    def peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise QueryParseError("unexpected end of pattern")
        self.position += 1
        return token

    def expect(self, token: str) -> None:
        actual = self.next()
        if actual != token:
            raise QueryParseError(f"expected {token!r} but found {actual!r} in pattern")

    # grammar: disjunct := postfix ('|' postfix)*
    def parse(self) -> Pattern:
        pattern = self.parse_disjunct()
        if self.peek() is not None:
            raise QueryParseError(f"trailing token {self.peek()!r} in pattern")
        return pattern

    def parse_disjunct(self) -> Pattern:
        alternatives = [self.parse_postfix()]
        while self.peek() == "|":
            self.next()
            alternatives.append(self.parse_postfix())
        if len(alternatives) == 1:
            return alternatives[0]
        return Disjunction(alternatives)

    def parse_postfix(self) -> Pattern:
        pattern = self.parse_primary()
        while self.peek() in ("+", "*", "?"):
            token = self.next()
            if token == "+":
                pattern = KleenePlus(pattern)
            elif token == "*":
                pattern = KleeneStar(pattern)
            else:
                pattern = OptionalPattern(pattern)
        return pattern

    def parse_primary(self) -> Pattern:
        token = self.peek()
        if token is None:
            raise QueryParseError("unexpected end of pattern")
        upper = token.upper()
        if upper == "SEQ":
            self.next()
            self.expect("(")
            parts = [self.parse_disjunct()]
            while self.peek() == ",":
                self.next()
                parts.append(self.parse_disjunct())
            self.expect(")")
            return Sequence(parts)
        if upper == "NOT":
            self.next()
            if self.peek() == "(":
                self.next()
                inner = self.parse_disjunct()
                self.expect(")")
            else:
                # bare form "NOT C" negating a single event type atom
                inner = self.parse_postfix()
            return Negation(inner)
        if token == "(":
            self.next()
            inner = self.parse_disjunct()
            self.expect(")")
            return inner
        # event type atom, optionally followed by an alias identifier
        event_type = self.next()
        alias = None
        nxt = self.peek()
        if nxt is not None and re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", nxt) and nxt.upper() not in ("SEQ", "NOT"):
            alias = self.next()
        return EventTypePattern(event_type, alias)


def parse_pattern(text: str) -> Pattern:
    """Parse the body of a PATTERN clause."""
    tokens = _tokenize_pattern(text)
    if not tokens:
        raise QueryParseError("empty PATTERN clause")
    return _PatternParser(tokens).parse()


# ---------------------------------------------------------------------------
# RETURN clause
# ---------------------------------------------------------------------------

_AGGREGATE_RE = re.compile(
    r"^(COUNT|MIN|MAX|SUM|AVG)\s*\(\s*([^)]*)\s*\)$", re.IGNORECASE
)


def _parse_return(text: str, variables: set) -> Tuple[List[str], List[AggregateSpec]]:
    attributes: List[str] = []
    aggregates: List[AggregateSpec] = []
    for item in _split_commas(text):
        item = item.strip()
        if not item:
            continue
        match = _AGGREGATE_RE.match(item)
        if match:
            aggregates.append(_parse_aggregate(match, variables))
        else:
            attributes.append(_strip_variable_prefix(item, variables))
    if not aggregates:
        raise QueryParseError("the RETURN clause must contain at least one aggregate")
    return attributes, aggregates


def _parse_aggregate(match: "re.Match", variables: set) -> AggregateSpec:
    function = AggregateFunction[match.group(1).upper()]
    argument = match.group(2).strip()
    if function is AggregateFunction.COUNT:
        if argument in ("*", ""):
            return AggregateSpec(function)
        if "." in argument:
            raise QueryParseError(
                f"COUNT takes '*' or a variable, got {argument!r}"
            )
        _require_variable(argument, variables)
        return AggregateSpec(function, argument)
    if "." not in argument:
        raise QueryParseError(
            f"{function.value} requires an argument of the form Var.attribute, got {argument!r}"
        )
    variable, attribute = argument.split(".", 1)
    variable = variable.strip()
    attribute = attribute.strip()
    _require_variable(variable, variables)
    return AggregateSpec(function, variable, attribute)


def _require_variable(variable: str, variables: set) -> None:
    if variable not in variables:
        raise QueryParseError(
            f"{variable!r} is not a variable of the pattern (known: {sorted(variables)})"
        )


def _strip_variable_prefix(item: str, variables: set) -> str:
    """``A.company`` -> ``company`` when ``A`` is a pattern variable."""
    if "." in item:
        prefix, rest = item.split(".", 1)
        if prefix.strip() in variables:
            return rest.strip()
    return item


# ---------------------------------------------------------------------------
# WHERE clause
# ---------------------------------------------------------------------------

_EQUIVALENCE_RE = re.compile(r"^\[\s*([A-Za-z_][\w]*)(?:\.([A-Za-z_][\w]*))?\s*\]$")
_OPERAND_RE = re.compile(
    r"^(?:(NEXT)\s*\(\s*([A-Za-z_][\w]*)\s*\)|([A-Za-z_][\w]*))\s*\.\s*([A-Za-z_][\w]*)$",
    re.IGNORECASE,
)
_COMPARISON_RE = re.compile(r"\s*(<=|>=|!=|<>|==|=|<|>)\s*")


def _parse_where(text: str, variables: set) -> List:
    predicates = []
    for term in re.split(r"\bAND\b", text, flags=re.IGNORECASE):
        term = term.strip()
        if not term:
            continue
        predicates.append(_parse_predicate(term, variables))
    return predicates


def _parse_predicate(term: str, variables: set):
    equivalence = _EQUIVALENCE_RE.match(term)
    if equivalence:
        first, second = equivalence.group(1), equivalence.group(2)
        if second is None:
            return EquivalencePredicate(first)
        if first not in variables:
            raise QueryParseError(
                f"equivalence predicate {term!r} refers to unknown variable {first!r}"
            )
        return EquivalencePredicate(second, first)

    parts = _COMPARISON_RE.split(term)
    if len(parts) != 3:
        raise QueryParseError(f"cannot parse WHERE term {term!r}")
    left_text, op, right_text = (part.strip() for part in parts)
    if op not in OPERATORS:
        raise QueryParseError(f"unknown comparison operator {op!r} in {term!r}")

    left = _parse_operand(left_text, variables)
    right = _parse_operand(right_text, variables)

    if left is None and right is None:
        raise QueryParseError(f"WHERE term {term!r} does not reference any event")

    # constant on one side -> local predicate
    if left is not None and right is None:
        value = _parse_constant(right_text)
        return LocalPredicate.attribute_compare(left[1], left[2], op, value)
    if left is None and right is not None:
        value = _parse_constant(left_text)
        flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
        return LocalPredicate.attribute_compare(right[1], right[2], flipped, value)

    # both sides reference events -> adjacent predicate
    left_is_next, left_var, left_attr = left
    right_is_next, right_var, right_attr = right
    if left_is_next and right_is_next:
        raise QueryParseError(f"both sides of {term!r} use NEXT(); at most one may")
    if left_is_next:
        # NEXT(X).attr OP Y.attr : the NEXT() side is the successor event.
        flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
        return comparison(right_var, right_attr, flipped, left_var, left_attr)
    # X.attr OP NEXT(Y).attr  or  X.attr OP Y.attr: left side is the predecessor.
    return comparison(left_var, left_attr, op, right_var, right_attr)


def _parse_operand(text: str, variables: set):
    """Return ``(is_next, variable, attribute)`` or ``None`` for constants."""
    match = _OPERAND_RE.match(text)
    if not match:
        return None
    is_next = match.group(1) is not None
    variable = match.group(2) if is_next else match.group(3)
    attribute = match.group(4)
    if variable not in variables:
        # A dotted name whose prefix is not a variable is treated as a constant
        # (this should not normally happen in well-formed queries).
        return None
    return (is_next, variable, attribute)


def _parse_constant(text: str) -> Any:
    """Parse a constant: number, quoted string or bare identifier."""
    text = text.strip()
    if text.startswith("'") and text.endswith("'") and len(text) >= 2:
        return text[1:-1]
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    return text


# ---------------------------------------------------------------------------
# GROUP-BY and WITHIN clauses
# ---------------------------------------------------------------------------


def _parse_group_by(text: str, variables: set) -> List[str]:
    attributes = []
    for item in _split_commas(text):
        item = item.strip()
        if item:
            attributes.append(_strip_variable_prefix(item, variables))
    return attributes


# the number accepts scientific notation: describe() renders sub-0.1ms
# windows (legal since the ms units) as e.g. "5e-05 seconds"
_WINDOW_NUMBER = r"[\d.]+(?:[eE][+-]?\d+)?"
_WINDOW_RE = re.compile(
    r"^\s*(" + _WINDOW_NUMBER + r")\s*([A-Za-z]+)\s*"
    r"(?:SLIDE\s+(" + _WINDOW_NUMBER + r")\s*([A-Za-z]+))?\s*$",
    re.IGNORECASE,
)

# count-based tumbling windows: "WITHIN 100 events"; anything after the unit
# is captured so a SLIDE clause can be rejected with a pointed message
_COUNT_WINDOW_RE = re.compile(
    r"^\s*(\d+)\s*events?\s*(\S.*)?$", re.IGNORECASE
)


def _parse_window(text: str) -> WindowSpec:
    count_match = _COUNT_WINDOW_RE.match(text)
    if count_match:
        if count_match.group(2) is not None:
            raise QueryParseError(
                "count-based windows are tumbling; SLIDE is not supported "
                f"in WITHIN clause {text!r}"
            )
        return CountWindowSpec(int(count_match.group(1)))
    match = _WINDOW_RE.match(text)
    if not match:
        raise QueryParseError(f"cannot parse WITHIN clause {text!r}")
    size = duration_to_seconds(float(match.group(1)), match.group(2))
    if match.group(3) is not None:
        slide = duration_to_seconds(float(match.group(3)), match.group(4))
    else:
        slide = size
    return WindowSpec(size, slide)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _split_commas(text: str) -> List[str]:
    """Split on commas that are not nested inside parentheses."""
    items: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            items.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        items.append("".join(current))
    return items
