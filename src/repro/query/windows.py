"""Sliding window specification (WITHIN / SLIDE clause, Definition 6).

A window of size ``size`` seconds slides every ``slide`` seconds.  Window
``k`` (a non-negative integer identifier, the ``wid`` of Section 7) covers
the half-open time interval ``[k * slide + origin, k * slide + origin + size)``.
An event whose timestamp falls into several overlapping windows contributes
to each of them.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Tuple

from repro.errors import InvalidQueryError

#: Convenient second counts for the textual WITHIN/SLIDE units.
_UNIT_SECONDS = {
    "millisecond": 0.001,
    "milliseconds": 0.001,
    "ms": 0.001,
    "second": 1.0,
    "seconds": 1.0,
    "sec": 1.0,
    "s": 1.0,
    "minute": 60.0,
    "minutes": 60.0,
    "min": 60.0,
    "hour": 3600.0,
    "hours": 3600.0,
    "h": 3600.0,
    "day": 86400.0,
    "days": 86400.0,
}


def duration_to_seconds(amount: float, unit: str) -> float:
    """Convert ``amount unit`` (e.g. ``10, "minutes"``) to seconds."""
    try:
        return float(amount) * _UNIT_SECONDS[unit.strip().lower()]
    except KeyError:
        raise InvalidQueryError(f"unknown time unit {unit!r}") from None


class WindowSpec:
    """A sliding window: ``WITHIN size SLIDE slide`` (both in seconds).

    A ``slide`` equal to ``size`` yields tumbling windows.  ``origin`` lets
    callers anchor window boundaries at a specific timestamp (defaults to
    time zero).
    """

    #: time-based windows place events by timestamp; the count-based kind
    #: (:class:`CountWindowSpec`) overrides this so executors can branch
    #: without isinstance checks
    is_count_based = False

    def __init__(self, size: float, slide: float = 0.0, origin: float = 0.0):
        if size <= 0:
            raise InvalidQueryError(f"window size must be positive, got {size!r}")
        slide = slide or size
        if slide <= 0:
            raise InvalidQueryError(f"window slide must be positive, got {slide!r}")
        if slide > size:
            # Windows with gaps are legal but events in the gaps are dropped;
            # we allow them because some streaming systems do.
            pass
        self.size = float(size)
        self.slide = float(slide)
        self.origin = float(origin)

    # -- window arithmetic ---------------------------------------------------

    def window_start(self, window_id: int) -> float:
        """Start time (inclusive) of window ``window_id``."""
        return self.origin + window_id * self.slide

    def window_end(self, window_id: int) -> float:
        """End time (exclusive) of window ``window_id``."""
        return self.window_start(window_id) + self.size

    def window_interval(self, window_id: int) -> Tuple[float, float]:
        """``(start, end)`` of window ``window_id``."""
        return self.window_start(window_id), self.window_end(window_id)

    def windows_of(self, time: float) -> List[int]:
        """Identifiers of all windows containing timestamp ``time``.

        The result is the (possibly empty) ascending list of integers ``k``
        with ``window_start(k) <= time < window_end(k)`` and ``k >= 0``.
        """
        if time < self.origin:
            return []
        relative = time - self.origin
        last = math.floor(relative / self.slide)
        first = math.floor((relative - self.size) / self.slide) + 1
        first = max(first, 0)
        return [k for k in range(first, last + 1) if relative < k * self.slide + self.size]

    def iter_windows(self, start_time: float, end_time: float) -> Iterator[int]:
        """All window identifiers whose interval intersects ``[start_time, end_time)``."""
        if end_time <= start_time:
            return
        first_candidates = self.windows_of(start_time)
        first = first_candidates[0] if first_candidates else max(
            0, math.floor((start_time - self.origin) / self.slide)
        )
        k = first
        while self.window_start(k) < end_time:
            if self.window_end(k) > start_time:
                yield k
            k += 1

    @property
    def is_tumbling(self) -> bool:
        """True when consecutive windows do not overlap."""
        return self.slide >= self.size

    @property
    def windows_per_event(self) -> int:
        """Maximum number of windows a single event belongs to."""
        return int(math.ceil(self.size / self.slide))

    # -- misc -----------------------------------------------------------------

    @classmethod
    def of(cls, size_amount: float, size_unit: str, slide_amount: float, slide_unit: str) -> "WindowSpec":
        """Build a window spec from ``WITHIN 10 minutes SLIDE 30 seconds``-style units."""
        return cls(
            duration_to_seconds(size_amount, size_unit),
            duration_to_seconds(slide_amount, slide_unit),
        )

    def __repr__(self) -> str:
        return f"WindowSpec(size={self.size:g}s, slide={self.slide:g}s)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WindowSpec):
            return NotImplemented
        if other.is_count_based:
            return False
        return (self.size, self.slide, self.origin) == (other.size, other.slide, other.origin)

    def __hash__(self) -> int:
        return hash((self.size, self.slide, self.origin))


class CountWindowSpec(WindowSpec):
    """A count-based tumbling window: ``WITHIN count events``.

    Window ``k`` covers the half-open *ordinal* interval
    ``[k * count, (k + 1) * count)`` over the executor's event arrival
    ordinals (every processed event advances the ordinal by one, whether or
    not a local predicate later filters it).  Count windows are always
    tumbling -- every event belongs to exactly one window -- and they close
    on event arrival, never on watermarks: a window emits when the first
    event of the next window arrives, or at flush.

    ``window_start``/``window_end``/``window_interval`` report ordinals, not
    timestamps, so downstream consumers (``EmissionRecord``, sinks) see the
    event-count bounds of each window.
    """

    is_count_based = True

    def __init__(self, count: int):
        if count != int(count) or int(count) <= 0:
            raise InvalidQueryError(
                f"count window size must be a positive integer, got {count!r}"
            )
        self.count = int(count)
        # mirror the time-based attributes in ordinal units so generic code
        # that only reads size/slide (cost models, repr) keeps working
        self.size = float(self.count)
        self.slide = float(self.count)
        self.origin = 0.0

    def window_start(self, window_id: int) -> float:
        """First event ordinal (inclusive) of window ``window_id``."""
        return float(window_id * self.count)

    def window_end(self, window_id: int) -> float:
        """Past-the-end event ordinal of window ``window_id``."""
        return float((window_id + 1) * self.count)

    def windows_of(self, time: float) -> List[int]:
        """Count windows cannot be located by timestamp."""
        raise InvalidQueryError(
            "count-based windows place events by arrival ordinal, not by "
            "timestamp; use window_of_ordinal"
        )

    def window_of_ordinal(self, ordinal: int) -> int:
        """The single window containing the ``ordinal``-th event (0-based)."""
        return ordinal // self.count

    def iter_windows(self, start_time: float, end_time: float) -> Iterator[int]:
        raise InvalidQueryError(
            "count-based windows place events by arrival ordinal, not by "
            "timestamp"
        )

    @property
    def is_tumbling(self) -> bool:
        return True

    @property
    def windows_per_event(self) -> int:
        return 1

    def __repr__(self) -> str:
        return f"CountWindowSpec(count={self.count})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CountWindowSpec):
            return NotImplemented
        return self.count == other.count

    def __hash__(self) -> int:
        return hash(("count", self.count))
