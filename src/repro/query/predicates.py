"""Predicates of the WHERE clause (Sections 2.3 and 3.2 of the paper).

The predicate classifier distinguishes three predicate kinds because they
determine the granularity at which COGRA maintains aggregates:

* :class:`LocalPredicate` -- restricts attribute values of a single event
  (``M.activity = passive``).  Local predicates filter the stream.
* :class:`EquivalencePredicate` -- ``[attr]`` requires every event of a
  trend to carry the same value of ``attr``.  Equivalence predicates
  partition the stream into independent sub-streams.
* :class:`AdjacentPredicate` -- restricts the adjacency relation between a
  predecessor event and the event that follows it in a trend
  (``M.rate < NEXT(M).rate``).  These predicates force event-grained
  aggregates for the predecessor side (mixed granularity, Section 5).
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Optional

from repro.events.event import Event

#: Comparison operators accepted by the textual query language.
OPERATORS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
}


class Predicate:
    """Base class for all WHERE-clause predicates."""

    def describe(self) -> str:
        """Human readable rendering used in query plans and reprs."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


class LocalPredicate(Predicate):
    """A predicate over the attributes of a single event.

    Parameters
    ----------
    variable:
        Pattern variable the predicate applies to, or ``None`` to apply to
        every event that carries the referenced attribute.
    condition:
        Callable mapping an :class:`Event` to a boolean.
    description:
        Human readable text, e.g. ``"M.activity = passive"``.
    """

    def __init__(
        self,
        variable: Optional[str],
        condition: Callable[[Event], bool],
        description: str = "",
    ):
        self.variable = variable
        self.condition = condition
        self.description = description or f"local predicate on {variable or '*'}"

    def evaluate(self, event: Event) -> bool:
        """Return True when ``event`` satisfies the predicate."""
        return bool(self.condition(event))

    def describe(self) -> str:
        return self.description

    @classmethod
    def attribute_equals(cls, variable: Optional[str], attribute: str, value: Any) -> "LocalPredicate":
        """``Var.attribute = value`` convenience constructor."""
        return cls(
            variable,
            lambda event: event.get(attribute) == value,
            description=f"{variable or '*'}.{attribute} = {value!r}",
        )

    @classmethod
    def attribute_compare(
        cls, variable: Optional[str], attribute: str, op: str, value: Any
    ) -> "LocalPredicate":
        """``Var.attribute <op> constant`` convenience constructor."""
        compare = OPERATORS[op]
        return cls(
            variable,
            lambda event: event.has(attribute) and compare(event.get(attribute), value),
            description=f"{variable or '*'}.{attribute} {op} {value!r}",
        )


class EquivalencePredicate(Predicate):
    """``[attr]`` / ``[Var.attr]``: events must share an attribute value.

    With ``variable=None`` the predicate requires *all* events of a trend to
    carry the same value of ``attribute``; the executor implements it by
    partitioning the stream on that attribute (Section 7).  With a variable
    it constrains only the events bound to that variable; the planner turns
    it into an adjacency constraint between consecutive occurrences of the
    variable.
    """

    def __init__(self, attribute: str, variable: Optional[str] = None):
        self.attribute = attribute
        self.variable = variable

    @property
    def is_stream_partitioning(self) -> bool:
        """True when the predicate partitions the whole stream."""
        return self.variable is None

    def describe(self) -> str:
        if self.variable is None:
            return f"[{self.attribute}]"
        return f"[{self.variable}.{self.attribute}]"

    def key(self, event: Event) -> Any:
        """Partition key contributed by this predicate for ``event``."""
        return event.get(self.attribute)


class AdjacentPredicate(Predicate):
    """A predicate between a predecessor event and its successor in a trend.

    The constructor follows the paper's ``NEXT()`` notation: in
    ``M.rate < NEXT(M).rate`` the left side refers to the *predecessor*
    event and the right side to the *successor* (more recent) event.

    Parameters
    ----------
    predecessor_variable:
        Variable of the earlier event of the adjacent pair.
    successor_variable:
        Variable of the later event of the adjacent pair.
    condition:
        Callable ``(predecessor, successor) -> bool``.
    description:
        Human readable text for plans and error messages.
    """

    def __init__(
        self,
        predecessor_variable: str,
        successor_variable: str,
        condition: Callable[[Event, Event], bool],
        description: str = "",
    ):
        self.predecessor_variable = predecessor_variable
        self.successor_variable = successor_variable
        self.condition = condition
        self.description = description or (
            f"adjacent predicate {predecessor_variable} -> {successor_variable}"
        )

    def evaluate(self, predecessor: Event, successor: Event) -> bool:
        """Return True when the pair satisfies the predicate."""
        return bool(self.condition(predecessor, successor))

    def applies_to(self, predecessor_variable: str, successor_variable: str) -> bool:
        """True when the predicate constrains the given variable pair."""
        return (
            self.predecessor_variable == predecessor_variable
            and self.successor_variable == successor_variable
        )

    def describe(self) -> str:
        return self.description


def comparison(
    predecessor_variable: str,
    predecessor_attribute: str,
    op: str,
    successor_variable: str,
    successor_attribute: Optional[str] = None,
) -> AdjacentPredicate:
    """Build an adjacent predicate comparing attributes of an adjacent pair.

    ``comparison("M", "rate", "<", "M")`` encodes the paper's
    ``M.rate < NEXT(M).rate``.  When ``successor_attribute`` is omitted it
    defaults to the predecessor attribute.
    """
    successor_attribute = successor_attribute or predecessor_attribute
    compare = OPERATORS[op]

    def condition(predecessor: Event, successor: Event) -> bool:
        left = predecessor.get(predecessor_attribute)
        right = successor.get(successor_attribute)
        if left is None or right is None:
            return False
        return compare(left, right)

    description = (
        f"{predecessor_variable}.{predecessor_attribute} {op} "
        f"NEXT({successor_variable}).{successor_attribute}"
    )
    return AdjacentPredicate(
        predecessor_variable, successor_variable, condition, description
    )
