"""Pattern abstract syntax tree (Definition 1 of the paper).

A pattern is built from

* event type atoms ``E`` (optionally bound to a variable, e.g. ``Stock A``),
* Kleene plus ``P+``,
* event sequences ``SEQ(P1, P2, ...)``,

plus the extension operators sketched in Section 8 of the paper: Kleene
star, optional sub-patterns, negation and disjunction.  The core COGRA
aggregators operate on the plus/sequence fragment; the extension operators
are rewritten or planned around by :mod:`repro.extensions`.

Variables
---------
The paper assumes that an event type occurs at most once in a pattern and
identifies automaton states with event types.  Real queries (q3 of the
paper: ``SEQ(Stock A+, Stock B+)``) reuse a type under different aliases.
We therefore distinguish the *event type* (what arrives on the stream) from
the *variable* (the name of the pattern position).  When no alias is given
the variable defaults to the type name, which recovers the paper's setting.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence as Seq, Tuple

from repro.errors import InvalidPatternError


class Pattern:
    """Base class of all pattern AST nodes."""

    #: True for nodes that can match the empty trend (star / optional).
    matches_empty: bool = False

    # -- structural queries -------------------------------------------------

    def children(self) -> Tuple["Pattern", ...]:
        """Immediate sub-patterns of this node."""
        return ()

    def walk(self) -> Iterator["Pattern"]:
        """Yield this node and all descendants in pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def leaves(self) -> List["EventTypePattern"]:
        """All event type atoms, left to right."""
        return [node for node in self.walk() if isinstance(node, EventTypePattern)]

    def variables(self) -> List[str]:
        """Variable names bound by the pattern, left to right."""
        return [leaf.variable for leaf in self.leaves() if not leaf.negated_context]

    def event_types(self) -> List[str]:
        """Event type names referenced by the pattern, left to right."""
        return [leaf.event_type for leaf in self.leaves()]

    @property
    def length(self) -> int:
        """Number of event type occurrences in the pattern (Definition 1)."""
        return len(self.leaves())

    @property
    def is_kleene(self) -> bool:
        """True when the pattern contains a Kleene plus or star operator."""
        return any(isinstance(node, Kleene) for node in self.walk())

    @property
    def has_negation(self) -> bool:
        """True when the pattern contains a negated sub-pattern."""
        return any(isinstance(node, Negation) for node in self.walk())

    @property
    def has_disjunction(self) -> bool:
        """True when the pattern contains a disjunction."""
        return any(isinstance(node, Disjunction) for node in self.walk())

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`InvalidPatternError` for structurally broken patterns.

        A variable may not occur twice in positions that can appear in the
        same trend (e.g. ``SEQ(A, A)``); different alternatives of a
        disjunction may reuse a variable, which arises naturally when Kleene
        star / optional sub-patterns are desugared (Section 8).  A reused
        variable must always match the same event type.
        """
        _check_variable_occurrences(self)
        types_of_variable: Dict[str, str] = {}
        for leaf in self.leaves():
            known = types_of_variable.setdefault(leaf.variable, leaf.event_type)
            if known != leaf.event_type:
                raise InvalidPatternError(
                    f"variable {leaf.variable!r} is bound to both event types "
                    f"{known!r} and {leaf.event_type!r}"
                )
        if self.length == 0:
            raise InvalidPatternError("a pattern must contain at least one event type")

    def variable_types(self) -> Dict[str, str]:
        """Mapping from variable name to the event type it matches."""
        return {leaf.variable: leaf.event_type for leaf in self.leaves()}

    # -- misc ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        raise NotImplementedError


class EventTypePattern(Pattern):
    """A single event type occurrence, optionally bound to a variable.

    ``EventTypePattern("Stock", "A")`` matches one event of type ``Stock``
    and binds it to the variable ``A``.
    """

    def __init__(self, event_type: str, variable: Optional[str] = None):
        if not event_type:
            raise InvalidPatternError("event type name must be non-empty")
        self.event_type = event_type
        self.variable = variable or event_type
        #: set by Negation.__init__ for leaves under a negated sub-pattern
        self.negated_context = False

    def _key(self) -> tuple:
        return (self.event_type, self.variable)

    def __repr__(self) -> str:
        if self.variable != self.event_type:
            return f"{self.event_type} {self.variable}"
        return self.event_type


class Sequence(Pattern):
    """``SEQ(P1, ..., Pk)``: sub-patterns matched in temporal order."""

    def __init__(self, parts: Seq[Pattern]):
        parts = tuple(parts)
        if len(parts) < 1:
            raise InvalidPatternError("SEQ requires at least one sub-pattern")
        self.parts = parts

    def children(self) -> Tuple[Pattern, ...]:
        return self.parts

    @property
    def matches_empty(self) -> bool:  # type: ignore[override]
        return all(part.matches_empty for part in self.parts)

    def _key(self) -> tuple:
        return tuple(self.parts)

    def __repr__(self) -> str:
        inner = ", ".join(repr(part) for part in self.parts)
        return f"SEQ({inner})"


class Kleene(Pattern):
    """Common base class of Kleene plus and Kleene star."""

    def __init__(self, inner: Pattern):
        self.inner = inner

    def children(self) -> Tuple[Pattern, ...]:
        return (self.inner,)

    def _key(self) -> tuple:
        return (self.inner,)


class KleenePlus(Kleene):
    """``P+``: one or more matches of ``P`` in temporal order."""

    def __repr__(self) -> str:
        if isinstance(self.inner, EventTypePattern):
            return f"{self.inner!r}+"
        return f"({self.inner!r})+"


class KleeneStar(Kleene):
    """``P*``: zero or more matches of ``P`` (syntactic sugar, Section 8)."""

    matches_empty = True

    def __repr__(self) -> str:
        if isinstance(self.inner, EventTypePattern):
            return f"{self.inner!r}*"
        return f"({self.inner!r})*"


class OptionalPattern(Pattern):
    """``P?``: zero or one match of ``P`` (syntactic sugar, Section 8)."""

    matches_empty = True

    def __init__(self, inner: Pattern):
        self.inner = inner

    def children(self) -> Tuple[Pattern, ...]:
        return (self.inner,)

    def _key(self) -> tuple:
        return (self.inner,)

    def __repr__(self) -> str:
        if isinstance(self.inner, EventTypePattern):
            return f"{self.inner!r}?"
        return f"({self.inner!r})?"


class Negation(Pattern):
    """``NOT P``: the sub-pattern must not match between its neighbours.

    Negation is an extension operator (Section 8 of the paper).  The leaves
    below a negation are flagged so that they do not contribute variables
    to the positive part of the query.
    """

    matches_empty = True

    def __init__(self, inner: Pattern):
        self.inner = inner
        for leaf in inner.leaves():
            leaf.negated_context = True

    def children(self) -> Tuple[Pattern, ...]:
        return (self.inner,)

    def _key(self) -> tuple:
        return (self.inner,)

    def __repr__(self) -> str:
        return f"NOT({self.inner!r})"


class Disjunction(Pattern):
    """``P1 | P2 | ...``: any one alternative matches (Section 8)."""

    def __init__(self, alternatives: Seq[Pattern]):
        alternatives = tuple(alternatives)
        if len(alternatives) < 2:
            raise InvalidPatternError("a disjunction requires at least two alternatives")
        self.alternatives = alternatives

    def children(self) -> Tuple[Pattern, ...]:
        return self.alternatives

    @property
    def matches_empty(self) -> bool:  # type: ignore[override]
        return any(alt.matches_empty for alt in self.alternatives)

    def _key(self) -> tuple:
        return tuple(self.alternatives)

    def __repr__(self) -> str:
        return " | ".join(repr(alt) for alt in self.alternatives)


def _check_variable_occurrences(pattern: Pattern) -> frozenset:
    """Return the variables of ``pattern``; reject co-occurring duplicates.

    Two occurrences of the same variable are co-occurring when they are not
    separated by a disjunction, i.e. they could both bind events of one
    trend.
    """
    if isinstance(pattern, EventTypePattern):
        return frozenset({pattern.variable})
    if isinstance(pattern, Disjunction):
        collected: set = set()
        for alternative in pattern.alternatives:
            collected |= _check_variable_occurrences(alternative)
        return frozenset(collected)
    collected: set = set()
    for child in pattern.children():
        child_variables = _check_variable_occurrences(child)
        overlap = collected & child_variables
        if overlap:
            raise InvalidPatternError(
                f"variables {sorted(overlap)} occur more than once in positions "
                "that can appear in the same trend; alias repeated occurrences, "
                "e.g. SEQ(A1+, B, A2)"
            )
        collected |= child_variables
    return frozenset(collected)


# -- convenience constructors ------------------------------------------------


def atom(event_type: str, variable: Optional[str] = None) -> EventTypePattern:
    """Shorthand for :class:`EventTypePattern`."""
    return EventTypePattern(event_type, variable)


def kleene_plus(pattern_or_type, variable: Optional[str] = None) -> KleenePlus:
    """``kleene_plus("A")`` == ``A+``; also accepts a sub-pattern."""
    if isinstance(pattern_or_type, Pattern):
        return KleenePlus(pattern_or_type)
    return KleenePlus(EventTypePattern(pattern_or_type, variable))


def sequence(*parts) -> Sequence:
    """``sequence(a, b, c)`` == ``SEQ(a, b, c)``; strings become atoms."""
    resolved = [
        part if isinstance(part, Pattern) else EventTypePattern(part)
        for part in parts
    ]
    return Sequence(resolved)
