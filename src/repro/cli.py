"""Command line interface of the COGRA reproduction.

The CLI exposes the pieces a user typically wants without writing code:

``cogra explain``
    Parse a textual query and print the COGRA configuration chosen by the
    static analyzer (granularity, predecessor types, predicate classes).

``cogra run``
    Evaluate a textual query over one of the synthetic data sets and print
    the per-group aggregation results.

``cogra figures``
    Re-run the paper's evaluation sweeps (Figures 5-10) and print the
    latency / memory / throughput tables.

``cogra capabilities``
    Print the expressive-power matrix of all approaches (Table 9).

``cogra cost``
    Print the static cost model report for a query (Table 3 growth class,
    complexity of the selected granularity, storage estimates).

``cogra ablation``
    Run the granularity ablation (type/mixed vs. event granularity on the
    same executor) and print the latency / storage tables.

``cogra experiments``
    Run the full experiment suite (every figure and table of Section 9)
    and optionally write the EXPERIMENTS.md report.

``cogra stream``
    Run one or more queries as a streaming job over JSONL events read from
    stdin or a file, with bounded out-of-order ingestion, watermark-driven
    incremental emission, and metrics reporting.

``cogra generate``
    Generate one of the synthetic data sets and write it to a CSV file.

``cogra stats``
    Print workload statistics (event rate, type mixture, trend groups,
    adjacent-predicate selectivity) of a generated or loaded stream.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.analyzer.cost import compare_granularities, estimate_cost
from repro.analyzer.plan import plan_query
from repro.baselines.registry import available_approaches
from repro.bench.ablation import (
    mixed_vs_event_workload,
    run_ablation_sweep,
    type_vs_event_workload,
)
from repro.bench.experiments import (
    EXPERIMENTS,
    render_experiments_markdown,
    run_experiments,
)
from repro.bench.harness import sweep
from repro.bench.reporting import format_capability_table, format_series_table
from repro.bench import workloads as figure_workloads
from repro.core.engine import CograEngine
from repro.datasets.io import read_stream_csv, write_eoddata_csv, write_stream_csv
from repro.datasets.physical_activity import (
    PhysicalActivityConfig,
    generate_physical_activity_stream,
)
from repro.datasets.ridesharing import RidesharingConfig, generate_ridesharing_stream
from repro.datasets.statistics import adjacent_selectivity, describe_stream
from repro.datasets.stock import StockConfig, generate_stock_stream
from repro.datasets.transportation import (
    TransportationConfig,
    generate_transportation_stream,
)
from repro.errors import (
    CheckpointError,
    ConfigError,
    InvalidEventError,
    LateEventError,
    SourceError,
    WorkerCrashError,
)
from repro.query.parser import parse_query
from repro.streaming.config import (
    JobConfig,
    merge_config_layers,
    read_config_file,
    resume_job,
)
from repro.streaming.ingest import LatePolicy
from repro.streaming.jsonl import record_to_json_line, write_jsonl_events
from repro.streaming.observability import PrometheusTextServer
from repro.streaming.sharded import ShardedRuntime
from repro.streaming.sources import CallbackSink

#: dataset name -> (config class, generator)
DATASETS = {
    "physical_activity": (PhysicalActivityConfig, generate_physical_activity_stream),
    "stock": (StockConfig, generate_stock_stream),
    "transportation": (TransportationConfig, generate_transportation_stream),
    "ridesharing": (RidesharingConfig, generate_ridesharing_stream),
}

#: figure name -> workload builder
FIGURES = {
    "figure5": figure_workloads.figure5_contiguous_workload,
    "figure6": figure_workloads.figure6_next_match_workload,
    "figure7": figure_workloads.figure7_any_all_workload,
    "figure8": figure_workloads.figure8_any_online_workload,
    "figure9": figure_workloads.figure9_selectivity_workload,
    "figure10": figure_workloads.figure10_grouping_workload,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="cogra",
        description="COGRA: coarse-grained online event trend aggregation (SIGMOD 2019 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    explain = commands.add_parser("explain", help="print the plan of a textual query")
    explain.add_argument("query", help="query text or path to a file containing it")

    run = commands.add_parser(
        "run", help="run a textual query over a synthetic data set"
    )
    run.add_argument("query", help="query text or path to a file containing it")
    run.add_argument("--dataset", choices=sorted(DATASETS), default="stock")
    run.add_argument(
        "--events", type=int, default=5000, help="number of events to generate"
    )
    run.add_argument("--seed", type=int, default=7)
    run.add_argument(
        "--limit", type=int, default=20, help="maximum result rows to print"
    )
    run.add_argument(
        "--input",
        default=None,
        help="read the stream from this CSV file instead of generating it",
    )
    run.add_argument(
        "--granularity",
        choices=["pattern", "type", "mixed", "event"],
        default=None,
        help="force a finer (still correct) aggregate granularity",
    )

    figures = commands.add_parser(
        "figures", help="reproduce the paper's evaluation sweeps"
    )
    figures.add_argument(
        "names",
        nargs="*",
        default=sorted(FIGURES),
        help="figures to run (default: all), e.g. figure7 figure9",
    )
    figures.add_argument(
        "--budget",
        type=int,
        default=200_000,
        help="cost budget for the two-step baselines (constructed trends)",
    )
    figures.add_argument(
        "--approaches",
        nargs="*",
        default=None,
        help="subset of approaches to run (default: all registered)",
    )

    commands.add_parser(
        "capabilities", help="print the expressive power matrix (Table 9)"
    )

    cost = commands.add_parser(
        "cost", help="print the static cost model report for a query"
    )
    cost.add_argument("query", help="query text or path to a file containing it")
    cost.add_argument(
        "--events", type=int, default=10_000, help="assumed events per window"
    )
    cost.add_argument(
        "--compare",
        action="store_true",
        help="also estimate every finer granularity that is still correct",
    )

    ablation = commands.add_parser(
        "ablation",
        help="run the granularity ablation (same executor, forced granularities)",
    )
    ablation.add_argument(
        "--events",
        nargs="*",
        type=int,
        default=[500, 1000, 2000],
        help="events per window of the sweep points",
    )

    experiments = commands.add_parser(
        "experiments",
        help="run every table/figure experiment and render EXPERIMENTS.md",
    )
    experiments.add_argument(
        "names",
        nargs="*",
        default=list(EXPERIMENTS),
        help="experiments to run (default: all, in paper order), e.g. figure7 tables567",
    )
    experiments.add_argument("--scale", choices=["quick", "full"], default="quick")
    experiments.add_argument("--budget", type=int, default=50_000)
    experiments.add_argument(
        "--out", default=None, help="write the markdown report to this path"
    )

    stream = commands.add_parser(
        "stream", help="run queries as a streaming job over JSONL events"
    )
    # value flags default to None (= "not given") so the effective job spec
    # can be layered: built-in defaults < --config file < explicit flags
    stream.add_argument(
        "queries",
        nargs="*",
        help="one or more query texts (or paths to files containing them); "
        "optional when --config provides the queries",
    )
    stream.add_argument(
        "--config",
        default=None,
        help="load the job from a declarative JobConfig file (JSON, or TOML "
        "on Python 3.11+); explicit flags override the file's settings",
    )
    stream.add_argument(
        "--dry-run",
        action="store_true",
        help="print the fully-resolved JobConfig as JSON (reusable via "
        "--config) and the per-query granularity plan, then exit without "
        "ingesting anything",
    )
    stream.add_argument(
        "--input",
        default=None,
        help="JSONL event file, or '-' to read from stdin (the default); "
        "shorthand for the file/stdin forms of --source",
    )
    stream.add_argument(
        "--source",
        default=None,
        help="event source specification: '-' (stdin), a JSONL file path, "
        "'tail:PATH' (follow a growing JSONL file), 'log:DIR' (a "
        "partitioned append-only log directory with committed consumer "
        "offsets), or 'tcp://HOST:PORT' (connect to a JSONL socket); "
        "overrides --input",
    )
    stream.add_argument(
        "--sink",
        default=None,
        help="write result records to this JSONL file instead of stdout "
        "(same as the sink.spec config key)",
    )
    stream.add_argument(
        "--exactly-once",
        action="store_true",
        help="with --sink FILE: deliver each result exactly once -- "
        "duplicates are suppressed and on --recover the sink file is "
        "rolled back to the offset committed inside the checkpoint, so "
        "a crash between emit and checkpoint never double-delivers",
    )
    stream.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="bound on records in flight between ingestion and delivery "
        "(default 64): sharded runs cap unacknowledged worker batches, "
        "and a sink reporting not-ready pauses ingestion (the waits are "
        "surfaced as backpressure_waits in --metrics)",
    )
    stream.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory of the incremental checkpoint store; with "
        "--checkpoint-interval the job checkpoints periodically, with "
        "--recover it resumes from the newest checkpoint",
    )
    stream.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        help="checkpoint every N ingested events into --checkpoint-dir "
        "(incremental deltas, periodically compacted)",
    )
    stream.add_argument(
        "--recover",
        action="store_true",
        help="resume from the newest checkpoint in --checkpoint-dir (start "
        "fresh when the store is empty): re-run the same command with the "
        "same input -- for file and tail: sources the already-ingested "
        "prefix of the replayed stream is skipped automatically; combined "
        "with --checkpoint-interval and --workers >1 it also restarts "
        "crashed shard workers from checkpoints instead of aborting",
    )
    stream.add_argument(
        "--lateness",
        type=float,
        default=None,
        help="bounded-disorder tolerance in seconds (watermark delay; "
        "default 0)",
    )
    stream.add_argument(
        "--late-policy",
        choices=[policy.value for policy in LatePolicy],
        default=None,
        help="what to do with events arriving behind the watermark "
        "(default: drop -- the operational choice; the library default "
        "is raise)",
    )
    stream.add_argument(
        "--punctuation-type",
        default=None,
        help="use punctuation watermarks carried by events of this type "
        "instead of the bounded-delay strategy",
    )
    stream.add_argument(
        "--late-output",
        default=None,
        help="with --late-policy side-channel: write this run's late events "
        "to this JSONL file (truncated first) for out-of-band reprocessing",
    )
    stream.add_argument(
        "--emit-empty-groups",
        action="store_true",
        help="also emit groups that matched no trend",
    )
    stream.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default 1); >1 shards the stream by "
        "partition key (queries without partition attributes fall back "
        "to one shard)",
    )
    stream.add_argument(
        "--ship-interval",
        type=int,
        default=None,
        help="with --workers >1: events coalesced per worker batch "
        "(default 64); 1 matches single-process emission timing and "
        "watermark stamps (line order may still differ), larger values "
        "trade emission latency for throughput",
    )
    stream.add_argument(
        "--decode-batch-size",
        type=int,
        default=None,
        metavar="N",
        help="events decoded and pushed through the runtime per slice "
        "(default 256); larger slices amortise per-event overhead, "
        "smaller ones reduce emission latency",
    )
    stream.add_argument(
        "--no-ship-serialized",
        action="store_true",
        help="with --workers >1: ship worker batches as plain event lists "
        "instead of pre-pickled blobs (slower; useful when debugging the "
        "worker protocol -- results are identical either way)",
    )
    stream.add_argument(
        "--rebalance",
        action="store_true",
        help="with --workers >1: adaptively migrate hot partition-key "
        "ranges (and their live aggregator state) between workers when "
        "the routing load skews; tune via the shards.rebalance.* keys of "
        "a --config file",
    )
    stream.add_argument(
        "--replan",
        action="store_true",
        help="adaptively re-plan each query's aggregation granularity from "
        "the observed stream statistics (live migration, results "
        "unchanged); tune via the replan.* keys of a --config file",
    )
    stream.add_argument(
        "--metrics",
        action="store_true",
        help="print throughput / latency / watermark-lag metrics to stderr",
    )
    stream.add_argument(
        "--metrics-export",
        default=None,
        metavar="PATH",
        help="append periodic metrics-registry snapshots to this JSONL file "
        "(one labeled sample per --metrics-interval, plus a final one at "
        "end of stream); for sharded runs the samples are the merged "
        "parent view across all workers",
    )
    stream.add_argument(
        "--metrics-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds between --metrics-export samples (default 10)",
    )
    stream.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write sampled lifecycle span trees (ingest -> route -> "
        "execute -> emit, plus checkpoint/recovery/rebalance operations) "
        "to this JSONL file; requires --trace-sample-rate",
    )
    stream.add_argument(
        "--trace-sample-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="fraction of events whose lifecycle is traced into --trace "
        "(0 < RATE <= 1; the sampling decision is made once per event at "
        "the trace root, so sampled trees are always complete)",
    )
    stream.add_argument(
        "--prometheus-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the latest metrics snapshot in the Prometheus text "
        "format on 127.0.0.1:PORT (0 binds an ephemeral port, printed to "
        "stderr at startup)",
    )

    generate = commands.add_parser(
        "generate", help="generate a synthetic data set as CSV"
    )
    generate.add_argument("--dataset", choices=sorted(DATASETS), default="stock")
    generate.add_argument("--events", type=int, default=10_000)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", required=True, help="output CSV path")
    generate.add_argument(
        "--format",
        choices=["csv", "eoddata"],
        default="csv",
        help="generic stream CSV or the EODData-style stock format",
    )

    stats = commands.add_parser("stats", help="print workload statistics of a stream")
    stats.add_argument("--dataset", choices=sorted(DATASETS), default="stock")
    stats.add_argument("--events", type=int, default=10_000)
    stats.add_argument("--seed", type=int, default=7)
    stats.add_argument(
        "--input", default=None, help="read the stream from this CSV file"
    )
    stats.add_argument(
        "--group", default=None, help="grouping attribute to count trend groups"
    )
    stats.add_argument(
        "--selectivity",
        default=None,
        help="attribute whose falling-value selectivity is reported (e.g. price)",
    )

    serve = commands.add_parser(
        "serve",
        help="run the multi-tenant job server on a local socket",
    )
    serve.add_argument(
        "--config",
        default=None,
        help="server config file (JSON or TOML): endpoint, tenants, quotas",
    )
    serve.add_argument("--host", default=None, help="bind host (default 127.0.0.1)")
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="bind port (0 binds an ephemeral port, printed to stderr)",
    )
    serve.add_argument(
        "--dir",
        default=None,
        help="server working directory (per-job checkpoint dirs live under it)",
    )

    submit = commands.add_parser(
        "submit",
        help="submit a job config to a running job server",
    )
    submit.add_argument(
        "--server",
        required=True,
        metavar="HOST:PORT",
        help="address of a running `cogra serve`",
    )
    submit.add_argument(
        "--config", required=True, help="job config file (JSON or TOML)"
    )
    submit.add_argument(
        "--tenant", default="default", help="tenant the job is billed to"
    )
    submit.add_argument(
        "--events",
        default=None,
        help="override the job's source with this JSONL events file",
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id and return without waiting for completion",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="seconds to wait for the job to finish (with waiting)",
    )
    return parser


def _close_store_quietly(store) -> None:
    """Stop a checkpoint store on an error path (its writer thread included)."""
    try:
        store.close()
    except CheckpointError:
        pass  # the path is already reporting a more primary error


def _load_query_text(argument: str) -> str:
    try:
        with open(argument, "r", encoding="utf-8") as handle:
            return handle.read()
    except OSError:
        return argument


def _command_explain(args) -> int:
    query = parse_query(_load_query_text(args.query))
    plan = plan_query(query)
    print(query.describe())
    print()
    print(plan.describe())
    return 0


def _generate_or_load(args):
    """Build the input stream for run/stats: a CSV file or a generator."""
    if getattr(args, "input", None):
        return read_stream_csv(args.input)
    config_class, generator = DATASETS[args.dataset]
    config = config_class(event_count=args.events, seed=args.seed)
    return generator(config)


def _command_run(args) -> int:
    query = parse_query(_load_query_text(args.query))
    stream = _generate_or_load(args)
    engine = CograEngine(query, granularity=args.granularity)
    results = engine.run(stream)
    print(f"# {len(results)} result rows (granularity: {engine.granularity})")
    for result in results[: args.limit]:
        print(result.as_dict())
    if len(results) > args.limit:
        print(f"... {len(results) - args.limit} more rows")
    return 0


def _command_figures(args) -> int:
    approaches = args.approaches or available_approaches()
    for name in args.names:
        if name not in FIGURES:
            print(f"unknown figure {name!r}; available: {', '.join(sorted(FIGURES))}")
            return 2
        points = FIGURES[name]()
        results = sweep(approaches, points, cost_budget=args.budget)
        for metric in ("latency (ms)", "peak memory (bytes)", "throughput (events/s)"):
            print(format_series_table(f"{name} — {metric}", results, metric=metric))
            print()
    return 0


def _command_capabilities(_args) -> int:
    print(format_capability_table())
    return 0


def _command_cost(args) -> int:
    query = parse_query(_load_query_text(args.query))
    print(estimate_cost(query, events_per_window=args.events).describe())
    if args.compare:
        print()
        for granularity, estimate in compare_granularities(query, args.events).items():
            print(f"--- forced granularity: {granularity} ---")
            print(estimate.describe())
            print()
    return 0


def _command_ablation(args) -> int:
    event_counts = tuple(args.events)
    sweeps = {
        "type-eligible query (q3 trend query, no adjacent predicates)": run_ablation_sweep(
            type_vs_event_workload(event_counts=event_counts)
        ),
        "mixed-eligible query (q3 with the price predicate)": run_ablation_sweep(
            mixed_vs_event_workload(event_counts=event_counts)
        ),
    }
    for title, results in sweeps.items():
        for metric in ("latency (ms)", "stored units"):
            print(
                format_series_table(
                    f"Ablation — {title} — {metric}", results, metric=metric
                )
            )
            print()
    return 0


def _command_experiments(args) -> int:
    unknown = [name for name in args.names if name not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiments {unknown}; "
            f"available: {', '.join(sorted(EXPERIMENTS))}"
        )
        return 2
    outcomes = run_experiments(args.names, scale=args.scale, budget=args.budget)
    markdown = render_experiments_markdown(outcomes, scale=args.scale)
    if args.out:
        Path(args.out).write_text(markdown)
        print(f"wrote {args.out} ({len(markdown.splitlines())} lines)")
    else:
        print(markdown)
    return 0


#: the CLI's own defaults where they deviate from the library's: dropping
#: late events is the operational choice for a long-running pipe (and the
#: subcommand's historical behaviour), while the library default raises
_STREAM_CLI_DEFAULTS = {"late": {"policy": LatePolicy.DROP.value}}


def _stream_flag_overrides(args) -> dict:
    """The raw-config layer contributed by explicitly given flags."""
    overrides: dict = {}

    def put(section: str, key: str, value) -> None:
        overrides.setdefault(section, {})[key] = value

    if args.queries:
        overrides["queries"] = [
            {"text": _load_query_text(text)} for text in args.queries
        ]
    if args.source is not None:
        put("source", "spec", args.source)
    elif args.input is not None:
        put("source", "spec", args.input)
    if args.lateness is not None:
        put("watermark", "lateness", args.lateness)
    if args.punctuation_type is not None:
        put("watermark", "kind", "punctuation")
        put("watermark", "punctuation_type", args.punctuation_type)
        if args.lateness is None:
            # switching the watermark kind moots a config file's lateness;
            # only an explicitly passed --lateness should still conflict
            put("watermark", "lateness", 0.0)
    if args.late_policy is not None:
        put("late", "policy", args.late_policy)
    if args.sink is not None:
        put("sink", "spec", args.sink)
    if args.exactly_once:
        put("sink", "exactly_once", True)
    if args.max_inflight is not None:
        put("backpressure", "max_inflight", args.max_inflight)
    if args.late_output is not None:
        put("late", "side_channel_path", args.late_output)
    if args.emit_empty_groups:
        overrides["emit_empty_groups"] = True
    if args.workers is not None:
        put("shards", "workers", args.workers)
    if args.ship_interval is not None:
        put("shards", "ship_interval", args.ship_interval)
    if args.decode_batch_size is not None:
        put("batch", "decode_batch_size", args.decode_batch_size)
    if args.no_ship_serialized:
        put("batch", "ship_serialized", False)
    if args.rebalance:
        # a nested layer: deep-merging preserves any shards.rebalance.*
        # tuning keys a --config file provides alongside the flag
        put("shards", "rebalance", {"enabled": True})
    if args.replan:
        # same deep-merge story for a config file's replan.* tuning keys
        put("replan", "enabled", True)
    if args.checkpoint_dir is not None:
        put("checkpoint", "dir", args.checkpoint_dir)
    if args.checkpoint_interval is not None:
        put("checkpoint", "interval", args.checkpoint_interval)
    if args.recover:
        put("checkpoint", "recover", True)
    if args.metrics_export is not None:
        put("observability", "metrics_export_path", args.metrics_export)
    if args.metrics_interval is not None:
        put("observability", "metrics_interval_seconds", args.metrics_interval)
    if args.trace is not None:
        put("observability", "trace_path", args.trace)
    if args.trace_sample_rate is not None:
        put("observability", "trace_sample_rate", args.trace_sample_rate)
    if args.prometheus_port is not None:
        put("observability", "prometheus_port", args.prometheus_port)
    return overrides


def _dig(data: dict, path: str, default=None):
    """Read a dotted path out of a raw (possibly partial) config dict."""
    for key in path.split("."):
        if not isinstance(data, dict) or key not in data:
            return default
        data = data[key]
    return data


def _check_stream_flags(merged: dict) -> Optional[str]:
    """The flag-phrased cross-field checks, on the merged effective values.

    These mirror :meth:`JobConfig.validate` (which remains authoritative
    for library users) but speak in ``--flag`` terms, because that is what
    the operator typed.  Returns the error message, or ``None``.
    """
    if not merged.get("queries"):
        return (
            "at least one query is required (positional QUERY arguments, "
            "or queries in --config)"
        )
    late_policy = _dig(merged, "late.policy")
    late_output = _dig(merged, "late.side_channel_path")
    reprocess = _dig(merged, "late.reprocess", False)
    side_channel = late_policy == LatePolicy.SIDE_CHANNEL.value
    if late_output and not side_channel:
        return (
            "--late-output requires --late-policy side-channel "
            f"(got {late_policy!r})"
        )
    if side_channel and not late_output and not reprocess:
        # without a sink the side channel would grow without bound and be
        # discarded at exit, which is just --late-policy drop in disguise
        return (
            "--late-policy side-channel requires --late-output FILE "
            "(where the late events are persisted for reprocessing)"
        )
    lateness = _dig(merged, "watermark.lateness", 0.0)
    if _dig(merged, "watermark.kind") == "punctuation" and lateness:
        return (
            "--lateness has no effect with --punctuation-type (the watermark "
            "is carried by punctuation events); pass one or the other"
        )
    if isinstance(lateness, (int, float)) and lateness < 0:
        return f"--lateness must be non-negative, got {lateness:g}"
    decode_batch_size = _dig(merged, "batch.decode_batch_size")
    if decode_batch_size is not None and (
        not isinstance(decode_batch_size, int)
        or isinstance(decode_batch_size, bool)
        or decode_batch_size < 1
    ):
        return (
            f"--decode-batch-size must be a positive integer, "
            f"got {decode_batch_size!r}"
        )
    exactly_once = _dig(merged, "sink.exactly_once", False)
    sink_spec = _dig(merged, "sink.spec")
    if exactly_once and (sink_spec is None or sink_spec in ("-", "stdout")):
        return (
            "--exactly-once requires --sink FILE (the committed byte offset "
            "of a file is what makes delivery transactional; stdout cannot "
            "be rolled back)"
        )
    max_inflight = _dig(merged, "backpressure.max_inflight", 64)
    if isinstance(max_inflight, int) and max_inflight < 1:
        return f"--max-inflight must be at least 1, got {max_inflight}"
    workers = _dig(merged, "shards.workers", 1)
    if isinstance(workers, int) and workers < 1:
        return f"--workers must be at least 1, got {workers}"
    ship_interval = _dig(merged, "shards.ship_interval", 64)
    if isinstance(ship_interval, int) and ship_interval < 1:
        return f"--ship-interval must be at least 1, got {ship_interval}"
    interval = _dig(merged, "checkpoint.interval")
    directory = _dig(merged, "checkpoint.dir")
    recover = _dig(merged, "checkpoint.recover", False)
    if isinstance(interval, int) and interval < 1:
        return f"--checkpoint-interval must be at least 1, got {interval}"
    if interval is not None and not directory:
        return (
            "--checkpoint-interval requires --checkpoint-dir DIR "
            "(where the incremental checkpoints are stored)"
        )
    if recover and not directory:
        return "--recover requires --checkpoint-dir DIR (the store to resume from)"
    if directory and interval is None and not recover:
        return (
            "--checkpoint-dir does nothing by itself; add --checkpoint-interval N "
            "to write periodic checkpoints and/or --recover to resume from the "
            "store"
        )
    metrics_interval = _dig(merged, "observability.metrics_interval_seconds")
    if (
        isinstance(metrics_interval, (int, float))
        and not isinstance(metrics_interval, bool)
        and metrics_interval <= 0
    ):
        return f"--metrics-interval must be positive, got {metrics_interval:g}"
    trace_path = _dig(merged, "observability.trace_path")
    trace_rate = _dig(merged, "observability.trace_sample_rate", 0.0)
    if (
        isinstance(trace_rate, (int, float))
        and not isinstance(trace_rate, bool)
        and not 0.0 <= trace_rate <= 1.0
    ):
        return f"--trace-sample-rate must be between 0 and 1, got {trace_rate:g}"
    if trace_path and not trace_rate:
        return (
            "--trace requires --trace-sample-rate RATE > 0 "
            "(no span is ever sampled at rate 0)"
        )
    if trace_rate and not trace_path:
        return (
            "--trace-sample-rate requires --trace FILE "
            "(where the sampled spans are written)"
        )
    return None


def _resolve_stream_config(args) -> JobConfig:
    """Layer defaults < ``--config`` file < flags into one validated spec.

    Raises :class:`~repro.errors.ConfigError` (flag-phrased where a flag
    owns the concept) for anything invalid.
    """
    file_layer = read_config_file(args.config) if args.config else {}
    merged = merge_config_layers(
        _STREAM_CLI_DEFAULTS, file_layer, _stream_flag_overrides(args)
    )
    message = _check_stream_flags(merged)
    if message is not None:
        raise ConfigError(message)
    config = JobConfig.from_dict(merged)
    config.validate()
    if (
        config.checkpoint.recover
        and config.checkpoint.interval
        and config.shards.workers > 1
        and config.shards.max_restarts == 0
    ):
        # --recover with periodic checkpoints also means "survive worker
        # crashes": restart shards from the latest checkpoint instead of
        # aborting.  Without an interval the replay buffers would never be
        # trimmed (nothing calls checkpoint()) and the parent would retain
        # every shipped event, so restarts stay disabled then.
        config = dataclasses.replace(
            config, shards=dataclasses.replace(config.shards, max_restarts=3)
        )
    return config


def _command_stream(args) -> int:
    try:
        config = _resolve_stream_config(args)
    except ConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.dry_run:
        # stdout gets the resolved spec as valid JSON -- reusable verbatim
        # as a --config file -- and stderr the human-readable plan
        print(json.dumps(config.to_dict(), indent=2))
        for name, granularity in config.granularity_plan().items():
            print(f"# {name}: granularity={granularity}", file=sys.stderr)
        return 0

    runtime = config.build_runtime()

    if args.source:
        spec_flag = "--source"
    elif args.input:
        spec_flag = "--input"
    else:
        spec_flag = "--config source"  # the spec came from the config file
    try:
        source = config.source.build()
    except SourceError as exc:
        runtime.close()
        print(f"error: cannot open {spec_flag}: {exc}", file=sys.stderr)
        return 1

    # a sink spec in the config routes records there instead of stdout; it
    # is built BEFORE recovery so resume_job can roll an exactly-once sink
    # back to the checkpoint's committed offset (recover=True preserves the
    # existing file until restore decides how much of it is committed)
    try:
        config_sink = config.sink.build(recover=config.checkpoint.recover)
    except (SourceError, CheckpointError) as exc:
        source.close()
        runtime.close()
        print(f"error: cannot open sink: {exc}", file=sys.stderr)
        return 1

    store = None
    if config.checkpoint.dir:
        try:
            store = config.checkpoint.build_store(
                registry=runtime.observability.registry
            )
            if config.checkpoint.recover:
                # restore the newest checkpoint; a replayable source then
                # skips the already-ingested prefix, and a restorable sink
                # rolls back to its committed offset (resume_job decides)
                info = resume_job(runtime, store, source, sink=config_sink)
                source = info.source
                for note in info.notes:
                    print(f"# {note}", file=sys.stderr)
        except (CheckpointError, WorkerCrashError) as exc:
            source.close()
            runtime.close()
            if config_sink is not None:
                config_sink.close()
            if store is not None:
                _close_store_quietly(store)
            print(f"error: {exc}", file=sys.stderr)
            return 1

    late_sink = None
    if config.late.side_channel_path:
        try:
            # truncate: the file holds THIS run's late events -- appending
            # across runs would silently replay stale events on reprocessing
            late_sink = open(config.late.side_channel_path, "w", encoding="utf-8")
        except OSError as exc:
            source.close()
            runtime.close()
            if config_sink is not None:
                config_sink.close()
            if store is not None:
                _close_store_quietly(store)
            print(f"error: cannot open --late-output: {exc}", file=sys.stderr)
            return 1

    def persist_late_events(late_events) -> None:
        """Persist side-channelled late events so they never pile up."""
        write_jsonl_events(late_events, late_sink)
        late_sink.flush()

    def emit(record) -> None:
        # flush per line: incremental emission must reach a piped consumer
        # immediately, not sit in the block buffer until end of stream
        print(record_to_json_line(record), flush=True)

    sink = config_sink if config_sink is not None else CallbackSink(emit)

    exporter = config.observability.build_exporter()
    prometheus = None
    if config.observability.prometheus_port is not None:
        try:
            prometheus = PrometheusTextServer(
                lambda: exporter.latest,
                port=config.observability.prometheus_port,
            ).start()
        except OSError as exc:
            source.close()
            runtime.close()
            if late_sink is not None:
                late_sink.close()
            if config_sink is not None:
                config_sink.close()
            if store is not None:
                _close_store_quietly(store)
            exporter.close()
            print(f"error: cannot bind --prometheus-port: {exc}", file=sys.stderr)
            return 1
        host, port = prometheus.address
        print(f"# serving Prometheus metrics on http://{host}:{port}/", file=sys.stderr)

    store_failed = False
    try:
        runtime.run(
            source,
            sink,
            checkpoint_store=store if config.checkpoint.interval else None,
            checkpoint_interval=config.checkpoint.interval,
            on_late=persist_late_events if late_sink is not None else None,
            metrics_exporter=exporter,
            backpressure=config.backpressure,
            decode_batch_size=config.batch.decode_batch_size,
        )
        if config.late.reprocess:
            # replay the side channel into is_correction=True records
            for record in runtime.reprocess_late():
                sink.emit(record)
    except BrokenPipeError:
        # the consumer (e.g. ``| head``) went away: stop emitting to stdout
        # but still persist pending late events and fall through to the
        # stderr reporting below (stderr is still open)
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        os.close(devnull)
        if late_sink is not None and runtime.late_events:
            persist_late_events(runtime.take_late_events())
    except (
        InvalidEventError,
        LateEventError,
        WorkerCrashError,
        SourceError,
        CheckpointError,
    ) as exc:
        # the subcommand's documented failure modes (malformed wire input,
        # --late-policy raise, a crashed shard worker, a dropped source
        # connection, an unusable checkpoint store) get a one-line message,
        # not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if prometheus is not None:
            prometheus.close()  # stop serving before the registry goes away
        runtime.close()  # stops sharded workers; no-op for the single runtime
        if exporter is not None:
            exporter.close()
        if late_sink is not None:
            late_sink.close()
        if config_sink is not None:
            config_sink.close()
        if store is not None:
            try:
                store.close()  # waits for queued background writes
            except CheckpointError as exc:
                # the run's results are already out, but its checkpoints are
                # not durable -- that must fail the command (see below; a
                # return here would be swallowed by the finally block)
                print(f"error: {exc}", file=sys.stderr)
                store_failed = True
    if store_failed:
        return 1

    metrics = runtime.metrics
    if metrics.late_events:
        note = f"# {metrics.late_events} late events (policy: {config.late.policy})"
        if config.late.side_channel_path:
            note += f", written to {config.late.side_channel_path}"
        print(note, file=sys.stderr)
    if args.metrics:
        print(metrics.describe(), file=sys.stderr)
        if isinstance(runtime, ShardedRuntime):
            print(runtime.shard_report(), file=sys.stderr)
    return 0


def _command_generate(args) -> int:
    config_class, generator = DATASETS[args.dataset]
    stream = generator(config_class(event_count=args.events, seed=args.seed))
    if args.format == "eoddata":
        written = write_eoddata_csv(stream, args.out)
    else:
        written = write_stream_csv(stream, args.out)
    print(f"wrote {written} events to {args.out}")
    return 0


def _command_stats(args) -> int:
    stream = list(_generate_or_load(args))
    group = args.group
    if group is None and stream:
        # sensible defaults per data set schema
        for candidate in ("company", "patient", "passenger", "driver"):
            if stream[0].has(candidate):
                group = candidate
                break
    numeric = (args.selectivity,) if args.selectivity else ()
    stats = describe_stream(
        stream,
        name=args.input or args.dataset,
        group_attribute=group,
        numeric_attributes=numeric,
    )
    print(stats.describe())
    if args.selectivity:
        selectivity = adjacent_selectivity(
            stream, args.selectivity, ">", partition_attribute=group
        )
        print(f"falling-{args.selectivity} selectivity: {selectivity:.2%}")
    return 0


def _command_serve(args) -> int:
    """Run the multi-tenant job server until its protocol says shutdown."""
    from repro.streaming.config import ServerConfig
    from repro.streaming.server import JobServer

    try:
        data = read_config_file(args.config) if args.config else {}
        config = ServerConfig.from_dict(data)
        overrides = {}
        if args.host is not None:
            overrides["host"] = args.host
        if args.port is not None:
            overrides["port"] = args.port
        if args.dir is not None:
            overrides["dir"] = args.dir
        if overrides:
            config = dataclasses.replace(config, **overrides)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    import time as _time

    server = JobServer(config).start()
    host, port = server.address
    print(f"cogra job server listening on {host}:{port}", file=sys.stderr)
    print(f"server directory: {server.directory}", file=sys.stderr)
    try:
        while not server._stop.is_set():
            _time.sleep(0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _command_submit(args) -> int:
    """Submit a job config over the socket protocol; print its records."""
    from repro.errors import QuotaError
    from repro.streaming.server import JobServerClient
    from repro.streaming.server.server import job_config_replacing_source

    host, separator, port_text = args.server.rpartition(":")
    if not separator or not port_text.isdigit():
        print(
            f"error: --server must be HOST:PORT, got {args.server!r}",
            file=sys.stderr,
        )
        return 2
    try:
        config = JobConfig.load(args.config)
        if args.events is not None:
            config = job_config_replacing_source(config, args.events)
        config.validate()
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        with JobServerClient(host, int(port_text)) as client:
            try:
                job_id = client.submit(config.to_dict(), tenant=args.tenant)
            except (QuotaError, ConfigError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 3
            print(f"submitted {job_id} (tenant {args.tenant})", file=sys.stderr)
            if args.no_wait:
                print(job_id)
                return 0
            status = client.wait(job_id, timeout=args.timeout)
            if status["state"] != "done":
                print(
                    f"job {job_id} {status['state']}: "
                    f"{status.get('error', 'cancelled')}",
                    file=sys.stderr,
                )
                return 1
            for record in client.results(job_id)["records"]:
                print(json.dumps(record, sort_keys=True))
            return 0
    except (SourceError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``cogra`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "explain": _command_explain,
        "run": _command_run,
        "figures": _command_figures,
        "capabilities": _command_capabilities,
        "cost": _command_cost,
        "ablation": _command_ablation,
        "experiments": _command_experiments,
        "stream": _command_stream,
        "generate": _command_generate,
        "stats": _command_stats,
        "serve": _command_serve,
        "submit": _command_submit,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
