"""COGRA: coarse-grained online event trend aggregation.

A from-scratch Python reproduction of *"Event Trend Aggregation Under Rich
Event Matching Semantics"* (Poppe, Lei, Rundensteiner, Maier).  The package
exposes

* the event and query model (:mod:`repro.events`, :mod:`repro.query`),
* the static query analyzer (:mod:`repro.analyzer`),
* the COGRA runtime (:mod:`repro.core`) with its public facade
  :class:`~repro.core.engine.CograEngine`,
* re-implementations of the state-of-the-art baselines used in the paper's
  evaluation (:mod:`repro.baselines`),
* synthetic data-set generators mirroring the paper's workloads
  (:mod:`repro.datasets`), and
* the benchmark harness that regenerates every figure of the evaluation
  (:mod:`repro.bench`).
"""

from repro.analyzer.granularity import Granularity
from repro.core.engine import CograEngine
from repro.core.parallel import ParallelExecutor
from repro.core.results import GroupResult
from repro.events.event import Event, EventSchema
from repro.events.stream import EventStream
from repro.query.aggregates import (
    avg,
    count_star,
    count_type,
    max_of,
    min_of,
    sum_of,
)
from repro.query.ast import (
    EventTypePattern,
    KleenePlus,
    KleeneStar,
    Negation,
    OptionalPattern,
    Sequence,
    atom,
    kleene_plus,
    sequence,
)
from repro.query.builder import QueryBuilder
from repro.query.parser import parse_query
from repro.query.predicates import (
    AdjacentPredicate,
    EquivalencePredicate,
    LocalPredicate,
    comparison,
)
from repro.query.query import Query
from repro.query.semantics import Semantics
from repro.query.windows import WindowSpec
from repro.streaming.checkpoint import CheckpointStore
from repro.streaming.emission import EmissionRecord
from repro.streaming.ingest import (
    BoundedDelayWatermark,
    LatePolicy,
    PunctuationWatermark,
)
from repro.streaming.metrics import StreamingMetrics
from repro.streaming.runtime import StreamingRuntime, group_results
from repro.streaming.sharded import ShardedRuntime
from repro.streaming.sources import (
    CallbackSink,
    EventSource,
    IterableSource,
    JsonlFileSink,
    JsonlFileSource,
    JsonlFileTailSource,
    MemorySink,
    Sink,
    SocketJsonlSource,
)

__version__ = "1.0.0"

__all__ = [
    "AdjacentPredicate",
    "BoundedDelayWatermark",
    "CallbackSink",
    "CheckpointStore",
    "CograEngine",
    "EmissionRecord",
    "EquivalencePredicate",
    "Event",
    "EventSchema",
    "EventSource",
    "EventStream",
    "EventTypePattern",
    "Granularity",
    "GroupResult",
    "IterableSource",
    "JsonlFileSink",
    "JsonlFileSource",
    "JsonlFileTailSource",
    "KleenePlus",
    "KleeneStar",
    "LatePolicy",
    "LocalPredicate",
    "MemorySink",
    "Negation",
    "OptionalPattern",
    "ParallelExecutor",
    "PunctuationWatermark",
    "Query",
    "QueryBuilder",
    "Semantics",
    "Sequence",
    "ShardedRuntime",
    "Sink",
    "SocketJsonlSource",
    "StreamingMetrics",
    "StreamingRuntime",
    "WindowSpec",
    "__version__",
    "atom",
    "avg",
    "comparison",
    "count_star",
    "count_type",
    "group_results",
    "kleene_plus",
    "max_of",
    "min_of",
    "parse_query",
    "sequence",
    "sum_of",
]
