"""COGRA: coarse-grained online event trend aggregation.

A from-scratch Python reproduction of *"Event Trend Aggregation Under Rich
Event Matching Semantics"* (Poppe, Lei, Rundensteiner, Maier).  The package
exposes

* the event and query model (:mod:`repro.events`, :mod:`repro.query`),
* the static query analyzer (:mod:`repro.analyzer`),
* the COGRA runtime (:mod:`repro.core`) with its public facade
  :class:`~repro.core.engine.CograEngine`,
* re-implementations of the state-of-the-art baselines used in the paper's
  evaluation (:mod:`repro.baselines`),
* synthetic data-set generators mirroring the paper's workloads
  (:mod:`repro.datasets`),
* the benchmark harness that regenerates every figure of the evaluation
  (:mod:`repro.bench`), and
* the streaming runtime (:mod:`repro.streaming`) with its declarative job
  API: :class:`~repro.streaming.config.JobConfig` and :func:`repro.job`.
"""

from repro.analyzer.granularity import Granularity
from repro.core.engine import CograEngine
from repro.errors import ConfigError
from repro.core.parallel import ParallelExecutor
from repro.core.results import GroupResult
from repro.events.event import Event, EventSchema
from repro.events.stream import EventStream
from repro.query.aggregates import (
    avg,
    count_star,
    count_type,
    max_of,
    min_of,
    sum_of,
)
from repro.query.ast import (
    EventTypePattern,
    KleenePlus,
    KleeneStar,
    Negation,
    OptionalPattern,
    Sequence,
    atom,
    kleene_plus,
    sequence,
)
from repro.query.builder import QueryBuilder
from repro.query.parser import parse_query
from repro.query.predicates import (
    AdjacentPredicate,
    EquivalencePredicate,
    LocalPredicate,
    comparison,
)
from repro.query.query import Query
from repro.query.semantics import Semantics
from repro.query.windows import CountWindowSpec, WindowSpec
from repro.streaming.checkpoint import CheckpointStore
from repro.streaming.config import (
    CheckpointConfig,
    Job,
    JobConfig,
    LatenessConfig,
    ObsConfig,
    QueryConfig,
    RebalanceConfig,
    ReplanConfig,
    ShardConfig,
    SinkConfig,
    SourceConfig,
    WatermarkConfig,
    job,
)
from repro.streaming.emission import EmissionRecord
from repro.streaming.ingest import (
    BoundedDelayWatermark,
    LatePolicy,
    PunctuationWatermark,
)
from repro.streaming.metrics import StreamingMetrics
from repro.streaming.observability import (
    MetricsRegistry,
    Observability,
    render_prometheus,
    snapshot_quantile,
    snapshot_value,
)
from repro.streaming.replan import QueryObservation, ReplanPolicy
from repro.streaming.runtime import StreamingRuntime, group_results
from repro.streaming.sharded import RebalancePolicy, ShardedRuntime, ShardRouter
from repro.streaming.sources import (
    CallbackSink,
    EventSource,
    IterableSource,
    JsonlFileSink,
    JsonlFileSource,
    JsonlFileTailSource,
    MemorySink,
    Sink,
    SocketJsonlSource,
)

__version__ = "1.0.0"

__all__ = [
    "AdjacentPredicate",
    "BoundedDelayWatermark",
    "CallbackSink",
    "CheckpointConfig",
    "CheckpointStore",
    "CograEngine",
    "ConfigError",
    "CountWindowSpec",
    "EmissionRecord",
    "EquivalencePredicate",
    "Event",
    "EventSchema",
    "EventSource",
    "EventStream",
    "EventTypePattern",
    "Granularity",
    "GroupResult",
    "IterableSource",
    "Job",
    "JobConfig",
    "JsonlFileSink",
    "JsonlFileSource",
    "JsonlFileTailSource",
    "KleenePlus",
    "KleeneStar",
    "LatePolicy",
    "LatenessConfig",
    "LocalPredicate",
    "MemorySink",
    "MetricsRegistry",
    "Negation",
    "ObsConfig",
    "Observability",
    "OptionalPattern",
    "ParallelExecutor",
    "PunctuationWatermark",
    "Query",
    "QueryBuilder",
    "QueryConfig",
    "QueryObservation",
    "RebalanceConfig",
    "RebalancePolicy",
    "ReplanConfig",
    "ReplanPolicy",
    "Semantics",
    "Sequence",
    "ShardConfig",
    "ShardRouter",
    "ShardedRuntime",
    "Sink",
    "SinkConfig",
    "SocketJsonlSource",
    "SourceConfig",
    "StreamingMetrics",
    "StreamingRuntime",
    "WatermarkConfig",
    "WindowSpec",
    "__version__",
    "atom",
    "avg",
    "comparison",
    "count_star",
    "count_type",
    "group_results",
    "job",
    "kleene_plus",
    "max_of",
    "min_of",
    "parse_query",
    "render_prometheus",
    "sequence",
    "snapshot_quantile",
    "snapshot_value",
    "sum_of",
]
