"""CI throughput-regression gate over the ``BENCH_streaming.json`` trajectory.

Every benchmark run appends one record per bench to the repository's
``BENCH_streaming.json`` (see :mod:`helpers_results`).  This gate compares
the records THIS run appended -- everything in the working file beyond the
committed prefix -- against the last committed record of the same bench,
and fails when throughput dropped more than ``THRESHOLD`` (15%).

Escape hatch: a ``[bench-reset]`` marker anywhere in the HEAD commit
message downgrades the gate to report-only for that commit -- the
intentional way to land a known slowdown (new instrumentation, a
correctness fix with a cost) and re-baseline the trajectory.

Standard library only; run from the repository root::

    python benchmarks/check_regression.py
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_streaming.json"

#: throughput may drop by at most this fraction against the committed record
THRESHOLD = 0.15

#: observability instrumentation may cost at most this fraction of
#: throughput (the bound the overhead bench itself promises)
OVERHEAD_LIMIT = 0.10


def parse_records(text: str) -> List[dict]:
    """The record list of one BENCH_streaming.json document (or ``[]``)."""
    try:
        document = json.loads(text)
    except (ValueError, TypeError):
        return []
    if not isinstance(document, dict):
        return []
    records = document.get("records")
    if not isinstance(records, list):
        return []
    return [record for record in records if isinstance(record, dict)]


def latest_per_bench(records: List[dict]) -> Dict[str, dict]:
    """The newest record of each bench (records are appended in run order)."""
    latest: Dict[str, dict] = {}
    for record in records:
        bench = record.get("bench")
        if isinstance(bench, str) and "throughput_events_per_s" in record:
            latest[bench] = record
    return latest


def find_regressions(
    baseline: List[dict], current: List[dict], threshold: float = THRESHOLD
) -> Tuple[List[dict], List[str]]:
    """Compare this run's records against the committed trajectory.

    Returns ``(failures, report_lines)``: one comparison line per bench
    measured this run, and a failure entry for every bench whose
    throughput dropped by more than ``threshold``.  Benches without a
    committed baseline (first measurement) pass with a note.
    """
    committed = latest_per_bench(baseline)
    measured = latest_per_bench(current)
    failures: List[dict] = []
    lines: List[str] = []
    for bench in sorted(measured):
        new = float(measured[bench]["throughput_events_per_s"])
        old_record = committed.get(bench)
        if old_record is None:
            lines.append(f"  {bench}: {new:,.1f} ev/s (no committed baseline)")
            continue
        old = float(old_record["throughput_events_per_s"])
        if old <= 0:
            lines.append(f"  {bench}: committed baseline is {old:g}; skipped")
            continue
        change = (new - old) / old
        verdict = "ok"
        if change < -threshold:
            verdict = f"REGRESSION (>{threshold:.0%} drop)"
            failures.append(
                {"bench": bench, "old": old, "new": new, "change": change}
            )
        lines.append(
            f"  {bench}: {old:,.1f} -> {new:,.1f} ev/s "
            f"({change:+.1%}) {verdict}"
        )
    return failures, lines


def find_overhead_violations(
    current: List[dict], limit: float = OVERHEAD_LIMIT
) -> Tuple[List[dict], List[str]]:
    """Gate the ``overhead_fraction`` field of this run's records.

    The ``observability_overhead`` bench persists the measured
    instrumented-vs-disabled throughput gap; any record of this run whose
    ``overhead_fraction`` exceeds ``limit`` fails the gate.
    """
    failures: List[dict] = []
    lines: List[str] = []
    for record in current:
        fraction = record.get("overhead_fraction")
        if not isinstance(fraction, (int, float)) or isinstance(fraction, bool):
            continue
        bench = record.get("bench", "?")
        verdict = "ok"
        if fraction > limit:
            verdict = f"OVERHEAD (> {limit:.0%} bound)"
            failures.append({"bench": bench, "overhead": float(fraction)})
        lines.append(f"  {bench}: overhead_fraction={fraction:+.1%} {verdict}")
    return failures, lines


def _git(*arguments: str) -> Optional[str]:
    try:
        return subprocess.run(
            ["git", *arguments],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return None


def committed_baseline() -> Optional[str]:
    """The HEAD-committed BENCH_streaming.json, or ``None`` if absent."""
    return _git("show", "HEAD:" + BENCH_FILE.name)


def reset_requested() -> bool:
    """True when the HEAD commit message carries ``[bench-reset]``."""
    message = _git("log", "-1", "--format=%B")
    return message is not None and "[bench-reset]" in message


def this_runs_records(
    working: List[dict], baseline: List[dict]
) -> List[dict]:
    """The records appended since the commit: the suffix past the baseline."""
    return working[len(baseline):]


def main() -> int:
    if not BENCH_FILE.exists():
        print("check_regression: no BENCH_streaming.json in the worktree; "
              "nothing to gate")
        return 0
    baseline_text = committed_baseline()
    if baseline_text is None:
        print("check_regression: no committed BENCH_streaming.json baseline "
              "(new file or no git); nothing to compare against")
        return 0
    baseline = parse_records(baseline_text)
    working = parse_records(BENCH_FILE.read_text())
    current = this_runs_records(working, baseline)
    if not current:
        print("check_regression: this run appended no bench records; "
              "run the bench smokes first")
        return 0
    failures, lines = find_regressions(baseline, current)
    print(f"check_regression: {len(current)} record(s) from this run vs "
          f"the committed trajectory (threshold {THRESHOLD:.0%}):")
    for line in lines:
        print(line)
    overhead_failures, overhead_lines = find_overhead_violations(current)
    if overhead_lines:
        print(f"check_regression: observability overhead bound "
              f"({OVERHEAD_LIMIT:.0%}):")
        for line in overhead_lines:
            print(line)
    failures = failures + overhead_failures
    if failures and reset_requested():
        print("check_regression: [bench-reset] in the HEAD commit message -- "
              "reporting only, not failing")
        return 0
    if failures:
        print(f"check_regression: {len(failures)} throughput regression(s); "
              "optimise, or land with [bench-reset] in the commit message "
              "if the slowdown is intentional")
        return 1
    print("check_regression: throughput within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
