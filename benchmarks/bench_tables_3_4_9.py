"""Tables 3, 4 and 9: trend-count growth, granularity selection, expressive power.

* Table 3 -- the number of trends matched by an event sequence pattern vs a
  Kleene pattern under each semantics (linear / polynomial / exponential in
  the number of events).  The bench enumerates trends on growing streams
  and checks the growth class.
* Table 4 -- the granularity chosen by the static analyzer for every
  (semantics, adjacent-predicates) combination.
* Table 9 -- the expressive-power matrix of all five approaches.
"""


from conftest import save_report
from repro.baselines.trend_enumeration import enumerate_trends
from repro.bench.reporting import format_capability_table
from repro.analyzer.granularity import granularity_table
from repro.baselines.registry import capability_table
from repro.events.event import Event
from repro.query.aggregates import count_star
from repro.query.ast import atom, kleene_plus, sequence
from repro.query.builder import QueryBuilder


def alternating_stream(count):
    """a1 b2 a3 b4 ... : every semantics finds trends in it."""
    return [Event("A" if i % 2 == 0 else "B", float(i + 1)) for i in range(count)]


def count_trends(pattern, semantics, events):
    query = QueryBuilder().pattern(pattern).semantics(semantics).aggregate(count_star()).build()
    return len(enumerate_trends(query, events))


SEQUENCE_PATTERN = sequence(atom("A"), atom("B"))
KLEENE_PATTERN = kleene_plus("A")


class TestTable3TrendCounts:
    """Growth of the number of trends with the number of events (Table 3)."""

    def test_sequence_pattern_under_next_and_cont_grows_linearly(self, benchmark):
        def run():
            return [count_trends(SEQUENCE_PATTERN, sem, alternating_stream(n))
                    for sem in ("skip-till-next-match", "contiguous") for n in (4, 8, 12)]

        counts = benchmark.pedantic(run, rounds=1, iterations=1)
        next_counts, cont_counts = counts[:3], counts[3:]
        # linear: constant first differences
        assert next_counts[2] - next_counts[1] == next_counts[1] - next_counts[0]
        assert cont_counts[2] - cont_counts[1] == cont_counts[1] - cont_counts[0]

    def test_sequence_pattern_under_any_grows_polynomially(self, benchmark):
        def run():
            return [count_trends(SEQUENCE_PATTERN, "skip-till-any-match", alternating_stream(n))
                    for n in (4, 8, 12)]

        counts = benchmark.pedantic(run, rounds=1, iterations=1)
        # quadratic growth: first differences increase
        first = [b - a for a, b in zip(counts, counts[1:])]
        assert first[1] > first[0]
        # sum of 1..n/2 pairs for an alternating a b a b ... stream
        assert counts == [3, 10, 21]

    def test_kleene_pattern_under_any_grows_exponentially(self, benchmark):
        def run():
            return [count_trends(KLEENE_PATTERN, "skip-till-any-match",
                                 [Event("A", float(i + 1)) for i in range(n)])
                    for n in (4, 6, 8)]

        counts = benchmark.pedantic(run, rounds=1, iterations=1)
        assert counts == [2 ** 4 - 1, 2 ** 6 - 1, 2 ** 8 - 1]

    def test_kleene_pattern_under_next_and_cont_grows_polynomially(self, benchmark):
        def run():
            return [count_trends(KLEENE_PATTERN, sem, [Event("A", float(i + 1)) for i in range(n)])
                    for sem in ("skip-till-next-match", "contiguous") for n in (4, 6, 8)]

        counts = benchmark.pedantic(run, rounds=1, iterations=1)
        # every contiguous run interval: n * (n + 1) / 2
        assert counts[:3] == [10, 21, 36]
        assert counts[3:] == [10, 21, 36]

    def test_table3_report(self, benchmark, results_dir):
        def run():
            rows = []
            for label, pattern in (("event sequence SEQ(A,B)", SEQUENCE_PATTERN), ("Kleene A+", KLEENE_PATTERN)):
                for semantics in ("skip-till-any-match", "skip-till-next-match", "contiguous"):
                    series = [
                        count_trends(pattern, semantics,
                                     alternating_stream(n) if pattern is SEQUENCE_PATTERN
                                     else [Event("A", float(i + 1)) for i in range(n)])
                        for n in (4, 8, 12)
                    ]
                    rows.append((label, semantics, series))
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        lines = ["Table 3 - number of trends for n = 4, 8, 12 events",
                 f"{'pattern':28}  {'semantics':24}  counts"]
        for label, semantics, series in rows:
            lines.append(f"{label:28}  {semantics:24}  {series}")
        save_report(results_dir, "table3_trend_counts", "\n".join(lines))


def test_table4_granularity_matrix(benchmark, results_dir):
    table = benchmark(granularity_table)
    lines = ["Table 4 - granularity selection",
             f"{'semantics':10}  {'without adjacent preds':24}  {'with adjacent preds':20}"]
    for semantics in ("ANY", "NEXT", "CONT"):
        lines.append(
            f"{semantics:10}  {table[(semantics, False)]:24}  {table[(semantics, True)]:20}"
        )
    save_report(results_dir, "table4_granularity", "\n".join(lines))
    assert table[("ANY", False)] == "type"
    assert table[("ANY", True)] == "mixed"
    assert table[("NEXT", True)] == "pattern"
    assert table[("CONT", False)] == "pattern"


def test_table9_capability_matrix(benchmark, results_dir):
    table = benchmark(capability_table)
    save_report(results_dir, "table9_capabilities", format_capability_table())
    assert table["cogra"] == {
        "Kleene closure": "+",
        "ANY": "+",
        "NEXT": "+",
        "CONT": "+",
        "Adjacent predicates": "+",
        "Online trend aggregation": "+",
    }
    assert table["flink"]["Kleene closure"] == "-"
    assert table["aseq"]["Online trend aggregation"] == "+"
    assert table["greta"]["NEXT"] == "-"
    assert table["sase"]["Online trend aggregation"] == "-"
