"""Figure 5: latency under the contiguous semantics (physical activity data).

The paper reports that the two-step approaches remain usable under the most
restrictive semantics because contiguous trends are few and short, yet
COGRA still wins by more than an order of magnitude at scale (27x vs Flink,
12x vs SASE at 100M events).  The shape reproduced here: COGRA's latency
grows linearly and stays lowest; SASE and the flattened Flink workload pay
the trend-construction overhead.
"""

import pytest

from conftest import DEFAULT_BUDGET, save_report
from repro.bench.harness import measure_run, sweep
from repro.bench.reporting import format_series_table
from repro.bench.workloads import figure5_contiguous_workload

#: approaches that support the contiguous semantics (Table 9)
APPROACHES = ["flink", "sase", "cogra"]
FLINK_KWARGS = {"flink": {"max_repetitions": 40}}


def _workloads(sizes):
    return figure5_contiguous_workload(event_counts=sizes, seed=5)


@pytest.mark.parametrize("events", [400, 800])
@pytest.mark.parametrize("approach", APPROACHES)
def test_figure5_latency(benchmark, approach, events):
    """Per-approach latency at one sweep point of Figure 5."""
    point = _workloads((events,))[0]
    kwargs = FLINK_KWARGS.get(approach)

    def run():
        return measure_run(
            approach,
            point.query,
            point.events,
            workload=point.name,
            parameter=point.parameter,
            cost_budget=DEFAULT_BUDGET,
            approach_kwargs=kwargs,
            track_allocations=False,
        )

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    assert metrics.status.value in ("ok", "dnf")


def test_figure5_report(benchmark, results_dir):
    """Render the full Figure 5 sweep as latency / memory tables."""

    def run():
        return sweep(
            APPROACHES,
            _workloads((200, 400, 800)),
            cost_budget=DEFAULT_BUDGET,
            approach_kwargs=FLINK_KWARGS,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for metric in ("latency (ms)", "stored units", "throughput (events/s)"):
        table = format_series_table(
            f"Figure 5 - contiguous semantics, physical activity ({metric})",
            results,
            metric=metric,
        )
        save_report(results_dir, f"figure5_{metric.split()[0]}", table)
    cogra = [r for r in results if r.approach == "cogra"]
    assert all(r.finished for r in cogra)
    # COGRA is never slower than the slowest finished two-step competitor
    for parameter in {r.parameter for r in results}:
        finished = [r for r in results if r.parameter == parameter and r.finished]
        slowest = max(finished, key=lambda r: r.latency_ms)
        fastest_cogra = [r for r in finished if r.approach == "cogra"][0]
        assert fastest_cogra.latency_ms <= slowest.latency_ms
