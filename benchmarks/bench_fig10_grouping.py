"""Figure 10: sweep of the number of trend groups (public transportation data).

Grouping partitions the stream, so more groups mean smaller sub-streams and
cheaper evaluation for every approach.  The paper's shape: the two-step
approaches only start terminating once there are enough groups (Flink needs
>= 15, SASE >= 25); the online approaches work for any group count, with
COGRA the fastest and smallest throughout, A-Seq's memory growing with the
number of groups, and GRETA's memory staying highest because it stores
every matched event.
"""

import pytest

from conftest import DEFAULT_BUDGET, save_report
from repro.bench.harness import measure_run, sweep
from repro.bench.reporting import format_series_table
from repro.bench.workloads import figure10_grouping_workload

APPROACHES = ["flink", "sase", "greta", "aseq", "cogra"]


@pytest.mark.parametrize("groups", [10, 30])
@pytest.mark.parametrize("approach", ["greta", "aseq", "cogra"])
def test_figure10_latency(benchmark, approach, groups):
    point = figure10_grouping_workload(group_counts=(groups,), event_count=600, seed=10)[0]

    def run():
        return measure_run(
            approach,
            point.query,
            point.events,
            workload=point.name,
            parameter=point.parameter,
            cost_budget=None,
            track_allocations=False,
        )

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    assert metrics.finished


def test_figure10_report(benchmark, results_dir):
    def run():
        # sweep from few to many groups; the two-step approaches recover as
        # the per-group sub-streams shrink
        return sweep(
            APPROACHES,
            list(reversed(figure10_grouping_workload(group_counts=(5, 10, 20, 30), event_count=600, seed=10))),
            cost_budget=DEFAULT_BUDGET,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for metric in ("latency (ms)", "stored units"):
        table = format_series_table(
            f"Figure 10 - number of trend groups, public transportation ({metric})",
            results,
            metric=metric,
            parameter_label="trend groups",
        )
        save_report(results_dir, f"figure10_{metric.split()[0]}", table)

    online = [r for r in results if r.approach in ("cogra", "greta", "aseq")]
    assert all(r.finished for r in online)
    # the online approaches agree on the trend counts at every group count
    for parameter in {r.parameter for r in online}:
        counts = {r.total_trend_count for r in online if r.parameter == parameter}
        assert len(counts) == 1
    # COGRA keeps fewer aggregates than GRETA keeps events for every point
    for parameter in {r.parameter for r in online}:
        greta = next(r for r in online if r.approach == "greta" and r.parameter == parameter)
        cogra = next(r for r in online if r.approach == "cogra" and r.parameter == parameter)
        assert cogra.peak_storage_units <= greta.peak_storage_units
