"""Sharded runtime scaling: throughput per worker count (Section 9.4).

The sharded runtime is this repository's first genuinely parallel execution
path: worker *processes* own disjoint hash-ranges of partition keys, so the
per-event executor work runs outside the GIL.  This benchmark records
events/second for 1, 2 and 4 workers on a multi-partition workload -- the
trajectory future PRs (async sources, incremental checkpoints) build on --
and checks that

* sharded results are identical to the single-process runtime's, and
* with enough CPU cores, 4 workers beat 1 worker by a clear margin
  (the speed-up assertion is skipped on boxes with fewer than 4 cores,
  where the workers just time-slice one another).
"""

import os
import time

import pytest

from conftest import save_report
from repro.datasets.stock import StockConfig, generate_stock_stream
from repro.events.stream import sort_events
from repro.streaming.observability import snapshot_quantile
from repro.streaming.runtime import StreamingRuntime
from repro.streaming.sharded import ShardedRuntime

from helpers_results import append_bench_record, results_signature

#: adjacent price predicate -> mixed granularity: enough per-event work for
#: process parallelism to outweigh the queue serialisation overhead
QUERY = """
RETURN company, COUNT(*), MAX(S.price)
PATTERN Stock S+
SEMANTICS skip-till-any-match
WHERE [company] AND S.price < NEXT(S).price
GROUP-BY company
WITHIN 60 seconds SLIDE 30 seconds
"""

WORKER_COUNTS = (1, 2, 4)


def _workload(event_count=4000, seed=23):
    return sort_events(
        generate_stock_stream(StockConfig(event_count=event_count, seed=seed))
    )


def _run_sharded(events, workers):
    # deliberately NOT JobConfig.build_runtime(): the workers=1 leg must
    # stay a real ShardedRuntime so the speed-up baseline includes the IPC
    # overhead (the config API would resolve it to the in-process runtime)
    runtime = ShardedRuntime(workers=workers, lateness=0.0)
    runtime.register(QUERY, name="q")
    started = time.perf_counter()
    records = runtime.run(events)
    elapsed = time.perf_counter() - started
    # merged parent view (workers' registries were collected at flush)
    p95 = snapshot_quantile(
        runtime.registry_snapshot(), "cogra_query_latency_seconds", 0.95
    )
    runtime.close()
    return records, len(events) / elapsed, p95


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_sharded_runtime_latency(benchmark, workers):
    events = _workload()

    def run():
        return _run_sharded(events, workers)[0]

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    assert records


def test_sharded_matches_single_process(benchmark):
    events = _workload()

    def run():
        single = StreamingRuntime(lateness=0.0)
        single.register(QUERY, name="q")
        expected = results_signature(r.result for r in single.run(events))
        for workers in WORKER_COUNTS:
            records, _, _ = _run_sharded(events, workers)
            got = results_signature(r.result for r in records)
            assert got == expected, f"sharded results diverge at {workers} workers"
        return expected

    assert benchmark.pedantic(run, rounds=1, iterations=1)


def test_sharded_speedup_report(benchmark, results_dir):
    lines = ["Sharded runtime scaling: events/second by worker count", ""]
    events = _workload(event_count=8000)

    def run():
        throughputs = {}
        for workers in WORKER_COUNTS:
            _, throughput, p95 = _run_sharded(events, workers)
            throughputs[workers] = (throughput, p95)
        return throughputs

    throughputs = benchmark.pedantic(run, rounds=1, iterations=1)
    base = throughputs[WORKER_COUNTS[0]][0]
    for workers, (throughput, p95) in throughputs.items():
        # parallel efficiency: speed-up over the 1-worker leg divided by
        # the worker count (1.0 = perfect linear scaling); persisted so
        # the trajectory shows *scaling* regressions, not just raw ev/s
        efficiency = throughput / (base * workers)
        lines.append(
            f"workers={workers}  throughput={throughput:10,.0f} ev/s  "
            f"speed-up={throughput / base:5.2f}x  "
            f"efficiency={efficiency:5.2f}"
        )
        append_bench_record(
            f"sharded_runtime_workers_{workers}",
            throughput=throughput,
            p95_latency_s=p95,
            events=len(events),
            scaling_efficiency=round(efficiency, 4),
        )
    cores = os.cpu_count() or 1
    lines.append(f"(cpu cores available: {cores})")
    save_report(results_dir, "sharded_runtime", "\n".join(lines))
    throughputs = {workers: pair[0] for workers, pair in throughputs.items()}

    speedup = throughputs[4] / throughputs[1]
    if cores >= 4:
        assert speedup >= 1.5, (
            f"expected >= 1.5x throughput at 4 workers vs 1 on a {cores}-core "
            f"machine, measured {speedup:.2f}x"
        )
    elif cores >= 2:
        # on 2-3 cores two workers already demonstrate scaling; 4 only add
        # scheduling overhead, so ask for a softer win
        assert throughputs[2] / throughputs[1] >= 1.1, (
            f"expected 2 workers to beat 1 on a {cores}-core machine, "
            f"measured {throughputs[2] / base:.2f}x"
        )
