"""Figure 7: all approaches under skip-till-any-match (stock data).

This is the chart where the two-step approaches blow up: the number of
trends grows exponentially with the events per window, so Flink and SASE
stop terminating (DNF) while the online approaches keep going.  The paper
reports 4 orders of magnitude speed-up and 8 orders of magnitude memory
reduction over Flink at 40k events; at laptop scale the sweep reproduces
the blow-up at a few hundred events per window.
"""

import pytest

from conftest import DEFAULT_BUDGET, save_report
from repro.bench.harness import measure_run, sweep
from repro.bench.metrics import RunStatus
from repro.bench.reporting import format_series_table
from repro.bench.workloads import figure7_any_all_workload

APPROACHES = ["flink", "sase", "greta", "aseq", "cogra"]


@pytest.mark.parametrize("events", [60, 120])
@pytest.mark.parametrize("approach", APPROACHES)
def test_figure7_latency(benchmark, approach, events):
    point = figure7_any_all_workload(event_counts=(events,), seed=7)[0]

    def run():
        return measure_run(
            approach,
            point.query,
            point.events,
            workload=point.name,
            parameter=point.parameter,
            cost_budget=DEFAULT_BUDGET,
            track_allocations=False,
        )

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    assert metrics.status in (RunStatus.OK, RunStatus.DID_NOT_FINISH)


def test_figure7_report(benchmark, results_dir):
    def run():
        return sweep(
            APPROACHES,
            figure7_any_all_workload(event_counts=(100, 200, 400, 800), seed=7),
            cost_budget=DEFAULT_BUDGET,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for metric in ("latency (ms)", "stored units", "throughput (events/s)"):
        table = format_series_table(
            f"Figure 7 - skip-till-any-match, stock data, all approaches ({metric})",
            results,
            metric=metric,
        )
        save_report(results_dir, f"figure7_{metric.split()[0]}", table)

    # the online approaches finish everywhere; the two-step approaches
    # eventually stop terminating, exactly like the paper's Figure 7
    online = [r for r in results if r.approach in ("cogra", "greta", "aseq")]
    assert all(r.finished for r in online)
    two_step = [r for r in results if r.approach in ("flink", "sase")]
    assert any(r.status is RunStatus.DID_NOT_FINISH for r in two_step)

    # at the largest finished two-step point, COGRA is faster and smaller
    finished_two_step = [r for r in two_step if r.finished]
    if finished_two_step:
        worst = max(finished_two_step, key=lambda r: r.latency_ms)
        cogra = next(
            r for r in results if r.approach == "cogra" and r.parameter == worst.parameter
        )
        assert cogra.latency_ms <= worst.latency_ms
        assert cogra.peak_storage_units <= worst.peak_storage_units
