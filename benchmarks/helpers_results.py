"""Small helpers shared by the benchmark files."""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.core.results import GroupResult


def results_signature(results: Iterable[GroupResult]) -> Tuple:
    """Order-independent signature of a result set for equality checks."""
    return tuple(
        sorted(
            (
                result.window_id,
                tuple(sorted(result.group.items())),
                tuple(sorted((k, repr(v)) for k, v in result.values.items())),
            )
            for result in results
        )
    )
