"""Small helpers shared by the benchmark files."""

from __future__ import annotations

import json
import resource
import subprocess
import time
from pathlib import Path
from typing import Iterable, Optional, Tuple

from repro.core.results import GroupResult

#: The persisted perf trajectory: every benchmark run appends one record per
#: instrumented benchmark, so regressions show up as a time series across
#: commits rather than a single number that nobody remembers.
BENCH_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_streaming.json"

BENCH_SCHEMA_VERSION = 1


def _git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def append_bench_record(
    bench: str,
    throughput: float,
    p95_latency_s: Optional[float] = None,
    path: Optional[Path] = None,
    **extra,
) -> dict:
    """Append one versioned perf record to ``BENCH_streaming.json``.

    The file holds ``{"version": 1, "records": [...]}``; each record carries
    the benchmark name, throughput (events/second), the p95 per-event latency
    when the benchmark measured one, the process's peak RSS in KiB
    (``ru_maxrss`` -- the whole pytest process, an upper bound on the
    benchmark's own footprint), the git revision, and a wall-clock timestamp.
    An unreadable or foreign file is started over rather than crashing the
    benchmark run.
    """
    target = BENCH_RESULTS_PATH if path is None else Path(path)
    try:
        document = json.loads(target.read_text())
        if (
            not isinstance(document, dict)
            or document.get("version") != BENCH_SCHEMA_VERSION
            or not isinstance(document.get("records"), list)
        ):
            raise ValueError("foreign file")
    except (OSError, ValueError):
        document = {"version": BENCH_SCHEMA_VERSION, "records": []}
    record = {
        "bench": bench,
        "throughput_events_per_s": round(float(throughput), 1),
        "p95_latency_s": p95_latency_s,
        "peak_rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "git_rev": _git_revision(),
        "timestamp": time.time(),
    }
    record.update(extra)
    document["records"].append(record)
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return record


def last_committed_record(bench: str) -> Optional[dict]:
    """The newest HEAD-committed ``BENCH_streaming.json`` record for ``bench``.

    Returns ``None`` when there is no committed file, it does not parse,
    or it holds no record for the bench -- callers treat all three as
    "no baseline to compare against".
    """
    try:
        text = subprocess.run(
            ["git", "show", "HEAD:" + BENCH_RESULTS_PATH.name],
            cwd=BENCH_RESULTS_PATH.parent,
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        ).stdout
        document = json.loads(text)
        records = document.get("records", [])
    except (OSError, subprocess.SubprocessError, ValueError, AttributeError):
        return None
    newest = None
    for record in records:
        if isinstance(record, dict) and record.get("bench") == bench:
            newest = record
    return newest


def bench_reset_requested() -> bool:
    """True when the HEAD commit message carries ``[bench-reset]``.

    The escape hatch shared with ``check_regression.py``: margin
    assertions report instead of failing, so an intentional slowdown can
    land and re-baseline the trajectory.
    """
    try:
        message = subprocess.run(
            ["git", "log", "-1", "--format=%B"],
            cwd=BENCH_RESULTS_PATH.parent,
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return False
    return "[bench-reset]" in message


def results_signature(results: Iterable[GroupResult]) -> Tuple:
    """Order-independent signature of a result set for equality checks."""
    return tuple(
        sorted(
            (
                result.window_id,
                tuple(sorted(result.group.items())),
                tuple(sorted((k, repr(v)) for k, v in result.values.items())),
            )
            for result in results
        )
    )
