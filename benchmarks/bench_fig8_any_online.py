"""Figure 8: online approaches under skip-till-any-match at higher rates.

GRETA, A-Seq and COGRA all avoid trend construction, so they survive rates
that kill the two-step systems; the differences between them only appear at
scale.  The paper's shape: GRETA's per-event graph maintenance makes its
latency and memory grow fastest (it eventually misses the hour-latency bar),
A-Seq pays for its linearly growing workload of flattened queries, and
COGRA stays flat in memory and linear (lowest) in latency.
"""

import pytest

from conftest import save_report
from repro.bench.harness import measure_run, sweep
from repro.bench.reporting import format_series_table
from repro.bench.workloads import figure8_any_online_workload

APPROACHES = ["greta", "aseq", "cogra"]


@pytest.mark.parametrize("events", [1000, 2000])
@pytest.mark.parametrize("approach", APPROACHES)
def test_figure8_latency(benchmark, approach, events):
    point = figure8_any_online_workload(event_counts=(events,), seed=8)[0]

    def run():
        return measure_run(
            approach,
            point.query,
            point.events,
            workload=point.name,
            parameter=point.parameter,
            cost_budget=None,
            track_allocations=False,
        )

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    assert metrics.finished


def test_figure8_report(benchmark, results_dir):
    def run():
        return sweep(
            APPROACHES,
            figure8_any_online_workload(event_counts=(500, 1000, 2000, 4000), seed=8),
            cost_budget=None,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for metric in ("latency (ms)", "stored units", "throughput (events/s)"):
        table = format_series_table(
            f"Figure 8 - skip-till-any-match, stock data, online approaches ({metric})",
            results,
            metric=metric,
        )
        save_report(results_dir, f"figure8_{metric.split()[0]}", table)

    assert all(result.finished for result in results)
    largest = max(result.parameter for result in results)
    at_largest = {r.approach: r for r in results if r.parameter == largest}
    # COGRA maintains the fewest aggregates and is the fastest online approach
    assert at_largest["cogra"].peak_storage_units <= at_largest["greta"].peak_storage_units
    assert at_largest["cogra"].peak_storage_units <= at_largest["aseq"].peak_storage_units
    assert at_largest["cogra"].latency_ms <= at_largest["greta"].latency_ms
    # all three report identical trend counts (they are all correct)
    assert len({r.total_trend_count for r in at_largest.values()}) == 1
