"""Figure 9: sweep of the adjacent-predicate selectivity (stock data).

The selectivity of ``A.price > NEXT(A).price`` controls how many (and how
long) down-trends exist.  The paper's shape: the two-step approaches
degrade exponentially with selectivity (Flink stops terminating beyond
50%), GRETA's latency grows with the number of graph edges, and COGRA --
which keeps one aggregate per stored event / type regardless of the number
of edges -- degrades the most gracefully.  A-Seq cannot express the
predicate at all.
"""

import pytest

from conftest import DEFAULT_BUDGET, save_report
from repro.bench.harness import measure_run, sweep
from repro.bench.metrics import RunStatus
from repro.bench.reporting import format_series_table
from repro.bench.workloads import figure9_selectivity_workload

APPROACHES = ["flink", "sase", "greta", "aseq", "cogra"]


@pytest.mark.parametrize("selectivity", [0.3, 0.7])
@pytest.mark.parametrize("approach", ["sase", "greta", "cogra"])
def test_figure9_latency(benchmark, approach, selectivity):
    point = figure9_selectivity_workload(selectivities=(selectivity,), event_count=250, seed=9)[0]

    def run():
        return measure_run(
            approach,
            point.query,
            point.events,
            workload=point.name,
            parameter=point.parameter,
            cost_budget=DEFAULT_BUDGET,
            track_allocations=False,
        )

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    assert metrics.status in (RunStatus.OK, RunStatus.DID_NOT_FINISH)


def test_figure9_report(benchmark, results_dir):
    def run():
        return sweep(
            APPROACHES,
            figure9_selectivity_workload(
                selectivities=(0.1, 0.3, 0.5, 0.7, 0.9), event_count=250, seed=9
            ),
            cost_budget=DEFAULT_BUDGET,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for metric in ("latency (ms)", "stored units"):
        table = format_series_table(
            f"Figure 9 - predicate selectivity, stock data ({metric})",
            results,
            metric=metric,
            parameter_label="predicate selectivity",
        )
        save_report(results_dir, f"figure9_{metric.split()[0]}", table)

    # A-Seq does not support predicates on adjacent events (Table 9)
    assert all(r.status is RunStatus.UNSUPPORTED for r in results if r.approach == "aseq")
    # COGRA and GRETA finish every selectivity point
    assert all(r.finished for r in results if r.approach in ("cogra", "greta"))
    # COGRA's aggregate count is never larger than GRETA's (type vs event grain)
    for parameter in {r.parameter for r in results}:
        greta = next(r for r in results if r.approach == "greta" and r.parameter == parameter)
        cogra = next(r for r in results if r.approach == "cogra" and r.parameter == parameter)
        assert cogra.peak_storage_units <= greta.peak_storage_units
