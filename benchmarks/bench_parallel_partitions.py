"""Parallel processing (Section 9.4): partition-parallel vs. sequential execution.

The paper scales COGRA by processing the sub-streams induced by GROUP-BY and
equivalence predicates independently.  Threads cannot add CPU parallelism
for pure-Python hot loops (the GIL), so this benchmark verifies the
*structural* claims of the thread-pool :class:`ParallelExecutor`:

* partition-parallel execution returns exactly the sequential results,
* its overhead over the sequential run is bounded, and
* the per-partition event counts are balanced enough that a multi-process
  deployment can scale near-linearly (low load imbalance).

The multi-process deployment exists:
:class:`~repro.streaming.sharded.ShardedRuntime` routes the same partition
keys across worker processes, and ``bench_sharded_runtime.py`` measures its
wall-clock speed-up per worker count.
"""

import pytest

from conftest import save_report
from repro.core.engine import CograEngine
from repro.core.parallel import ParallelExecutor
from repro.datasets.queries import stock_trend_query, transportation_query
from repro.datasets.statistics import load_imbalance
from repro.datasets.stock import StockConfig, generate_stock_stream
from repro.datasets.transportation import (
    TransportationConfig,
    generate_transportation_stream,
)

from helpers_results import results_signature


def _stock_workload(event_count=4000, seed=44):
    query = stock_trend_query(semantics="skip-till-any-match", window=None)
    events = list(generate_stock_stream(StockConfig(event_count=event_count, seed=seed)))
    return query, events


def _transportation_workload(event_count=4000, seed=45):
    query = transportation_query(semantics="skip-till-next-match", window=None)
    events = list(
        generate_transportation_stream(TransportationConfig(event_count=event_count, seed=seed))
    )
    return query, events


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_stock_latency(benchmark, workers):
    query, events = _stock_workload()
    executor = ParallelExecutor(query, workers=workers)
    results = benchmark.pedantic(lambda: executor.run(events), rounds=1, iterations=1)
    assert results


def test_sequential_stock_latency(benchmark):
    query, events = _stock_workload()
    engine = CograEngine(query)
    results = benchmark.pedantic(lambda: engine.run(events), rounds=1, iterations=1)
    assert results


def test_parallel_matches_sequential_report(benchmark, results_dir):
    lines = ["Parallel processing (Section 9.4): structural checks", ""]

    def run():
        rows = []
        for label, (query, events) in (
            ("stock / skip-till-any-match", _stock_workload()),
            ("transportation / skip-till-next-match", _transportation_workload()),
        ):
            sequential = CograEngine(query).run(events)
            executor = ParallelExecutor(query, workers=4)
            parallel = executor.run(events)
            group_attribute = query.partition_attributes[0]
            rows.append(
                {
                    "workload": label,
                    "events": len(events),
                    "partitions": executor.partition_count,
                    "imbalance": load_imbalance(events, group_attribute),
                    "identical": results_signature(sequential) == results_signature(parallel),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        assert row["identical"], f"parallel results differ for {row['workload']}"
        lines.append(
            f"{row['workload']:<40} events={row['events']:>6}  partitions={row['partitions']:>3}  "
            f"load imbalance={row['imbalance']:.2f}  results identical={row['identical']}"
        )
    save_report(results_dir, "parallel_partitions", "\n".join(lines))
