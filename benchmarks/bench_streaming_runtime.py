"""Streaming runtime overhead: throughput and watermark lag versus batch.

The streaming runtime adds a reorder buffer, watermark bookkeeping and
incremental emission on top of the batch executor.  This benchmark measures
what that costs -- events/second of the runtime against ``CograEngine.run``
on the same workload -- and reports the watermark lag the lateness bound
induces, so future PRs (sharding, multiprocess workers, async sources) have
a trajectory to beat.
"""

import random
import time

import pytest

from conftest import save_report
from repro.core.engine import CograEngine
from repro.datasets.stock import StockConfig, generate_stock_stream
from repro.events.stream import sort_events
from repro.streaming.config import JobConfig, QueryConfig, WatermarkConfig
from repro.streaming.observability import Observability, snapshot_quantile
from repro.streaming.runtime import StreamingRuntime, group_results

from helpers_results import (
    append_bench_record,
    bench_reset_requested,
    last_committed_record,
    results_signature,
)

QUERY = """
RETURN company, COUNT(*)
PATTERN Stock S+
SEMANTICS skip-till-any-match
WHERE [company]
GROUP-BY company
WITHIN 60 seconds SLIDE 30 seconds
"""

LATENESS = 5.0


def _workload(event_count=6000, seed=23):
    events = sort_events(
        generate_stock_stream(StockConfig(event_count=event_count, seed=seed))
    )
    rng = random.Random(31)
    shuffled = sorted(
        events, key=lambda e: (e.time + rng.uniform(0.0, LATENESS), e.sequence)
    )
    return events, shuffled


def test_batch_run_throughput(benchmark):
    events, _ = _workload()
    engine = CograEngine.from_text(QUERY)
    results = benchmark.pedantic(lambda: engine.run(events), rounds=1, iterations=1)
    assert results


def test_streaming_runtime_throughput(benchmark):
    events, shuffled = _workload()
    # the declarative job spec is the public surface; building the runtime
    # from it keeps the benchmark on the path real jobs take
    config = JobConfig(
        queries=(QueryConfig(text=QUERY, name="q"),),
        watermark=WatermarkConfig(lateness=LATENESS),
    )

    def run():
        runtime = config.build_runtime()
        runtime.run(shuffled)
        return runtime

    runtime = benchmark.pedantic(run, rounds=1, iterations=1)
    assert runtime.metrics.results_emitted


@pytest.mark.parametrize("query_count", [1, 4])
def test_multi_query_throughput(benchmark, query_count):
    """Shared routing: N registered queries versus N independent streams."""
    _, shuffled = _workload()

    def run():
        runtime = StreamingRuntime(lateness=LATENESS)
        for index in range(query_count):
            runtime.register(QUERY, name=f"q{index}")
        runtime.run(shuffled)
        return runtime

    runtime = benchmark.pedantic(run, rounds=1, iterations=1)
    assert runtime.metrics.events_released == runtime.metrics.events_ingested


def test_streaming_matches_batch_report(benchmark, results_dir):
    lines = ["Streaming runtime vs batch engine", ""]

    def run():
        events, shuffled = _workload()
        engine = CograEngine.from_text(QUERY)
        batch = engine.run(events)

        runtime = StreamingRuntime(lateness=LATENESS)
        runtime.register(QUERY, name="q")
        records = runtime.run(shuffled)
        metrics = runtime.metrics
        return {
            "events": len(events),
            "identical": results_signature(batch)
            == results_signature(group_results(records)),
            "incremental": sum(1 for r in records if not r.is_final_flush),
            "total": len(records),
            "throughput": metrics.throughput(),
            "latency_ms": metrics.mean_latency_ms(),
            "watermark_lag": metrics.watermark_lag(),
            "buffer_peak": metrics.events_buffered_peak,
            "p95_latency_s": snapshot_quantile(
                runtime.registry_snapshot(), "cogra_query_latency_seconds", 0.95
            ),
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    assert row["identical"], "streaming results diverge from the batch run"
    lines.append(
        f"events={row['events']}  identical={row['identical']}  "
        f"incremental emissions={row['incremental']}/{row['total']}"
    )
    lines.append(
        f"throughput={row['throughput']:,.0f} ev/s  "
        f"mean latency={row['latency_ms']:.4f} ms  "
        f"watermark lag={row['watermark_lag']:.1f} s  "
        f"buffer peak={row['buffer_peak']}"
    )
    save_report(results_dir, "streaming_runtime", "\n".join(lines))
    append_bench_record(
        "streaming_runtime",
        throughput=row["throughput"],
        p95_latency_s=row["p95_latency_s"],
        events=row["events"],
        batched=True,
    )
    # the batched hot path (sliced decode, key-grouped executor batches,
    # one-frame accumulator folds) must at least double throughput over the
    # last per-event baseline; once a batched record is committed the
    # regular check_regression 15% gate takes over
    committed = last_committed_record("streaming_runtime")
    if committed is not None and not committed.get("batched"):
        baseline = float(committed["throughput_events_per_s"])
        margin = row["throughput"] / baseline
        message = (
            f"batched hot path reached {row['throughput']:,.0f} ev/s = "
            f"{margin:.2f}x the committed per-event baseline "
            f"({baseline:,.1f} ev/s); the batching PR requires >= 2x"
        )
        if bench_reset_requested():
            print(f"[bench-reset] margin reported only: {message}")
        else:
            assert margin >= 2.0, message


def test_observability_overhead_under_ten_percent(benchmark, results_dir):
    """Acceptance gate: registry instrumentation costs <10% throughput.

    Each leg runs the full streaming pipeline with observability enabled
    (per-query counters plus a two-``perf_counter`` latency observation per
    event) and disabled (one ``is None`` check per event); best-of-3 per leg
    screens out scheduler noise.  The 10% bound is deliberately generous --
    the measured overhead is low single digits -- so the gate catches a
    *regression* (an accidental allocation or lock on the hot path), not
    normal jitter.
    """
    _, shuffled = _workload()

    def one_run(observability_factory):
        runtime = StreamingRuntime(
            lateness=LATENESS, observability=observability_factory()
        )
        runtime.register(QUERY, name="q")
        started = time.perf_counter()
        runtime.run(shuffled)
        elapsed = time.perf_counter() - started
        snapshot = runtime.registry_snapshot()
        runtime.close()
        return len(shuffled) / elapsed, snapshot

    def run():
        one_run(Observability)  # warm-up: JIT-free but caches/allocator settle
        one_run(Observability.disabled)
        enabled = disabled = 0.0
        snapshot = None
        # interleave the legs so drift in the long-running pytest process
        # (allocator state, cpu frequency) hits both sides equally
        for _ in range(3):
            throughput, snapshot = one_run(Observability)
            enabled = max(enabled, throughput)
            throughput, _ = one_run(Observability.disabled)
            disabled = max(disabled, throughput)
        return {
            "enabled": enabled,
            "disabled": disabled,
            "p95_latency_s": snapshot_quantile(
                snapshot, "cogra_query_latency_seconds", 0.95
            ),
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = 1.0 - row["enabled"] / row["disabled"]
    lines = [
        "Observability overhead: instrumented vs disabled registry",
        "",
        f"enabled={row['enabled']:,.0f} ev/s  disabled={row['disabled']:,.0f} ev/s  "
        f"overhead={overhead:+.1%}  p95 executor latency={row['p95_latency_s']:.6f} s",
    ]
    save_report(results_dir, "observability_overhead", "\n".join(lines))
    append_bench_record(
        "observability_overhead",
        throughput=row["enabled"],
        p95_latency_s=row["p95_latency_s"],
        baseline_throughput_events_per_s=round(row["disabled"], 1),
        overhead_fraction=round(overhead, 4),
    )
    assert row["enabled"] > 0.9 * row["disabled"], (
        f"registry instrumentation costs {overhead:.1%} throughput "
        f"({row['enabled']:,.0f} vs {row['disabled']:,.0f} ev/s); "
        "the acceptance bound is <10%"
    )
