"""Shared configuration of the benchmark suite.

Every file in this directory regenerates one table or figure of the paper's
evaluation (Section 9).  The benchmarks run at laptop scale: absolute
numbers are far below the paper's 16-core JVM testbed, but the *shape* of
each chart -- which approach wins, by what factor, and where approaches stop
terminating -- is what the suite reproduces.  ``python -m repro.cli figures``
runs the same sweeps at larger sizes.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment dependent
    try:
        import repro  # noqa: F401
    except ModuleNotFoundError:
        sys.path.insert(0, str(_SRC))

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: cost budget (constructed trends / sequences) for the two-step baselines;
#: exceeding it is reported as DNF, mirroring the paper's non-terminating runs
DEFAULT_BUDGET = 50_000


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where the figure tables are written as text files."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def save_report(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered figure table and echo it to stdout."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
