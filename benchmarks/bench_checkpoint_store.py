"""Incremental checkpointing: delta bytes versus full snapshots.

The :class:`~repro.streaming.checkpoint.CheckpointStore` writes per-executor
*deltas* -- only the (window, group) aggregators touched since the previous
checkpoint -- with periodic compaction into a full base snapshot.  On a
sustained update stream whose state accumulates (long windows, many
partition keys) while each interval only touches a working set, the deltas
must be **measurably smaller** than the full snapshots they replace; this
benchmark measures both and asserts the gap (a PR acceptance criterion).

It also records the cost of the store itself: events/second of a driver
loop with periodic checkpoints (synchronous vs. background writer) against
the same loop without checkpointing.
"""

import random
import time

from conftest import save_report
from repro.events.event import Event
from repro.events.stream import sort_events
from repro.streaming.checkpoint import CheckpointStore
from repro.streaming.runtime import StreamingRuntime

#: one long tumbling window: state accumulates across the whole stream
#: (every session seen so far keeps an aggregator) while one checkpoint
#: interval only touches the handful of sessions currently active
QUERY = """
RETURN session, COUNT(*), MAX(S.v)
PATTERN S+
SEMANTICS skip-till-next-match
GROUP-BY session
WITHIN 36000 seconds SLIDE 36000 seconds
"""

EVENT_COUNT = 6000
CHECKPOINT_INTERVAL = 250
#: events per session: the stream is *sessionized* -- the realistic shape
#: for delta checkpoints, where an interval's working set (the ~3 sessions
#: it overlaps) is a small fraction of the accumulated state (all sessions
#: the open window still holds)
SESSION_LENGTH = 100


def _workload():
    rng = random.Random(23)
    return sort_events(
        Event(
            "S",
            float(index),
            {"session": f"s{index // SESSION_LENGTH:03d}", "v": rng.randint(1, 99)},
        )
        for index in range(EVENT_COUNT)
    )


def _build_runtime():
    runtime = StreamingRuntime(lateness=0.0)
    runtime.register(QUERY, name="q")
    return runtime


def test_incremental_checkpoints_are_smaller_than_full(
    benchmark, results_dir, tmp_path
):
    events = _workload()

    def run():
        store = CheckpointStore(tmp_path / "chain", compact_every=8)
        runtime = _build_runtime()
        runtime.run(
            events, checkpoint_store=store, checkpoint_interval=CHECKPOINT_INTERVAL
        )
        return store

    store = benchmark.pedantic(run, rounds=1, iterations=1)
    bases = [e.bytes_written for e in store.entries if e.kind == "base"]
    deltas = [e.bytes_written for e in store.entries if e.kind == "delta"]
    assert bases and deltas
    mean_base = sum(bases) / len(bases)
    mean_delta = sum(deltas) / len(deltas)
    # the acceptance criterion: incremental checkpoint bytes per interval are
    # measurably smaller than full snapshots on this workload
    assert mean_delta < 0.6 * mean_base, (
        f"deltas ({mean_delta:,.0f} B) are not measurably smaller than "
        f"full snapshots ({mean_base:,.0f} B)"
    )

    lines = [
        "Incremental checkpoint store: delta vs full snapshot bytes",
        "",
        f"workload            : {EVENT_COUNT} events, checkpoint every "
        f"{CHECKPOINT_INTERVAL}",
        f"checkpoints written : {len(store.entries)} "
        f"({len(bases)} bases, {len(deltas)} deltas)",
        f"mean base bytes     : {mean_base:,.0f}",
        f"mean delta bytes    : {mean_delta:,.0f}",
        f"delta / base        : {mean_delta / mean_base:.2f}x",
        f"last base bytes     : {bases[-1]:,.0f}",
        f"smallest delta      : {min(deltas):,.0f}",
        f"largest delta       : {max(deltas):,.0f}",
    ]
    save_report(results_dir, "checkpoint_store", "\n".join(lines))


def test_background_checkpointing_overhead(benchmark, results_dir, tmp_path):
    """Driver-loop throughput: no checkpoints vs sync vs background store."""
    events = _workload()

    def timed(store=None):
        runtime = _build_runtime()
        started = time.perf_counter()
        if store is None:
            runtime.run(events)
        else:
            runtime.run(
                events,
                checkpoint_store=store,
                checkpoint_interval=CHECKPOINT_INTERVAL,
            )
        elapsed = time.perf_counter() - started
        return len(events) / elapsed

    def run():
        plain = timed()
        with CheckpointStore(tmp_path / "sync") as sync_store:
            sync = timed(sync_store)
        with CheckpointStore(tmp_path / "bg", background=True) as bg_store:
            background = timed(bg_store)
        return plain, sync, background

    plain, sync, background = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Periodic checkpointing overhead (events/second)",
        "",
        f"no checkpoints      : {plain:,.0f}",
        f"synchronous store   : {sync:,.0f} ({plain / sync:.2f}x slower)",
        f"background store    : {background:,.0f} ({plain / background:.2f}x slower)",
    ]
    save_report(results_dir, "checkpoint_overhead", "\n".join(lines))
