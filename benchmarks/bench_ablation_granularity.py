"""Ablation: the same COGRA executor forced to every correct granularity.

DESIGN.md attributes COGRA's wins over GRETA to one design choice -- the
coarsest-correct aggregate granularity.  This benchmark isolates that choice:
the planner, executor, windows and grouping are identical across arms; only
the granularity differs.  The expected shape is

* constant storage for type granularity vs. linearly growing storage for
  event granularity, and
* latency growing roughly linearly for type granularity vs. super-linearly
  for event granularity (each event touches every stored predecessor).
"""

import pytest

from conftest import save_report
from repro.analyzer.granularity import Granularity
from repro.bench.ablation import (
    granularity_ablation,
    mixed_vs_event_workload,
    run_ablation_sweep,
    summarize_ablation,
    type_vs_event_workload,
)
from repro.bench.reporting import format_series_table


@pytest.mark.parametrize("granularity", [Granularity.TYPE, Granularity.EVENT])
def test_ablation_type_eligible_query(benchmark, granularity):
    point = type_vs_event_workload(event_counts=(800,))[0]

    def run():
        return granularity_ablation(
            point.query,
            point.events,
            granularities=[granularity],
            workload=point.name,
            parameter=point.parameter,
        )[0]

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    assert metrics.finished


def test_ablation_report(benchmark, results_dir):
    def run():
        type_results = run_ablation_sweep(type_vs_event_workload(event_counts=(250, 500, 1000, 2000)))
        mixed_results = run_ablation_sweep(mixed_vs_event_workload(event_counts=(200, 400, 800)))
        return type_results, mixed_results

    type_results, mixed_results = benchmark.pedantic(run, rounds=1, iterations=1)

    for label, results in (("type_vs_event", type_results), ("mixed_vs_event", mixed_results)):
        for metric in ("latency (ms)", "stored units"):
            table = format_series_table(
                f"Ablation {label} — {metric}",
                results,
                metric=metric,
                parameter_label="events per window",
            )
            save_report(results_dir, f"ablation_{label}_{metric.split()[0]}", table)

    # the coarse granularity must never store more than the fine granularity
    summary = summarize_ablation(type_results)
    assert summary["cogra[type]"]["storage_units"] <= summary["cogra[event]"]["storage_units"]
    # and event-granularity storage must grow with the stream while
    # type-granularity storage stays flat
    type_units = [
        r.peak_storage_units for r in type_results if r.approach == "cogra[type]" and r.finished
    ]
    event_units = [
        r.peak_storage_units for r in type_results if r.approach == "cogra[event]" and r.finished
    ]
    assert max(type_units) == min(type_units)
    assert event_units[-1] > event_units[0]

    mixed_summary = summarize_ablation(mixed_results)
    assert (
        mixed_summary["cogra[mixed]"]["storage_units"]
        <= mixed_summary["cogra[event]"]["storage_units"]
    )
