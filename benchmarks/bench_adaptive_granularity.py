"""Adaptive granularity re-planning: throughput on a selectivity-shift stream.

The static analyzer fixes one granularity per query at plan time.  This
workload is built so that no static choice is right for the whole stream:

* a long **sparse phase** spreads events over 2000 groups -- under one
  event per sub-stream, so event granularity (store the few matched events)
  is cheaper than paying one accumulator update per pattern variable;
* a **dense phase** then concentrates the stream on 4 groups -- hundreds of
  events per sub-stream, where type granularity's constant per-event work
  wins and event granularity degenerates.

The benchmark runs the same stream three ways -- forced ``type``, forced
``event``, and with ``replan.enabled`` (the observe-decide-act loop of
:mod:`repro.streaming.replan`) -- and checks that

* all three emit byte-identical results (migration is invisible to
  correctness),
* the control loop actually migrated, in *both* directions (coarse->fine
  in the sparse phase, fine->coarse in the dense one), and
* the re-planned run's throughput beats **both** static plans.

One record per leg is appended to ``BENCH_streaming.json`` so the
``check_regression.py`` gate tracks the trajectory.
"""

import random
import time

from conftest import save_report
from repro.events.event import Event
from repro.events.stream import sort_events
from repro.streaming.runtime import StreamingRuntime

from helpers_results import append_bench_record, results_signature

#: multi-variable Kleene pattern: enough per-variable accumulator work for
#: the granularity choice to dominate the per-event cost
QUERY = """
RETURN g, COUNT(*), SUM(A.v), MAX(A.v)
PATTERN SEQ(A+, B, C+, D, E+, F)
SEMANTICS skip-till-any-match
GROUP-BY g
WITHIN 20 seconds SLIDE 10 seconds
"""

SPARSE_EVENTS = 12000
SPARSE_GROUPS = 4000
SPARSE_SPAN = 800.0
DENSE_EVENTS = 3000
DENSE_GROUPS = 4

REPLAN = {"enabled": True, "check_interval_events": 400, "hysteresis": 0.2}


def selectivity_shift_workload(seed=7):
    """Sparse phase (many groups, thin sub-streams) then a dense burst."""
    rng = random.Random(seed)
    types = "AABCDEF"
    events = []
    for i in range(SPARSE_EVENTS):
        events.append(
            Event(
                types[i % len(types)],
                rng.uniform(0.0, SPARSE_SPAN),
                {"g": i % SPARSE_GROUPS, "v": i % 13},
            )
        )
    for i in range(DENSE_EVENTS):
        events.append(
            Event(
                types[i % len(types)],
                rng.uniform(SPARSE_SPAN + 400.0, SPARSE_SPAN + 500.0),
                {"g": i % DENSE_GROUPS, "v": i % 13},
            )
        )
    return sort_events(events)


def _run(events, granularity=None, replan=None, rounds=2):
    """Best-of-``rounds`` throughput of one leg (tames scheduler noise)."""
    best = None
    for _ in range(rounds):
        runtime = StreamingRuntime(lateness=5.0, replan=replan)
        runtime.register(QUERY, name="q", granularity=granularity)
        started = time.perf_counter()
        records = runtime.run(events)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best[2]:
            best = (runtime, records, elapsed)
    runtime, records, elapsed = best
    return runtime, records, len(events) / elapsed


def test_replanning_beats_both_static_plans(benchmark, results_dir):
    events = selectivity_shift_workload()

    def run():
        return {
            "type": _run(events, granularity="type"),
            "event": _run(events, granularity="event"),
            "adaptive": _run(events, replan=REPLAN),
        }

    legs = benchmark.pedantic(run, rounds=1, iterations=1)

    # correctness first: migrations never change what is emitted
    signatures = {
        name: results_signature(r.result for r in records)
        for name, (_, records, _) in legs.items()
    }
    assert signatures["adaptive"] == signatures["type"] == signatures["event"]

    # the loop re-planned, and in both directions: the sparse phase demands
    # a coarse->fine migration, the dense burst the way back
    adaptive_runtime = legs["adaptive"][0]
    directions = {(m["from"], m["to"]) for m in adaptive_runtime.replan_log}
    assert ("type", "event") in directions, adaptive_runtime.replan_log
    assert ("event", "type") in directions, adaptive_runtime.replan_log
    assert adaptive_runtime.metrics.replan_migrations >= 2

    throughputs = {name: leg[2] for name, leg in legs.items()}
    lines = [
        "Adaptive granularity re-planning on a selectivity-shift stream",
        "",
        f"events={len(events)} (sparse {SPARSE_EVENTS}/{SPARSE_GROUPS} groups, "
        f"dense {DENSE_EVENTS}/{DENSE_GROUPS} groups)",
        f"static type : {throughputs['type']:10,.0f} ev/s",
        f"static event: {throughputs['event']:10,.0f} ev/s",
        f"re-planned  : {throughputs['adaptive']:10,.0f} ev/s  "
        f"({adaptive_runtime.metrics.replan_migrations} migrations, "
        f"pause {adaptive_runtime.metrics.replan_pause_seconds * 1000.0:.1f} ms)",
    ]
    for record in adaptive_runtime.replan_log:
        lines.append(
            f"  {record['query']}: {record['from']} -> {record['to']} "
            f"(v{record['version']}, after {record['events_total']} events)"
        )
    save_report(results_dir, "adaptive_granularity", "\n".join(lines))

    for name, throughput in throughputs.items():
        append_bench_record(
            f"adaptive_granularity_{name}",
            throughput=throughput,
            events=len(events),
            migrations=(
                adaptive_runtime.metrics.replan_migrations
                if name == "adaptive"
                else 0
            ),
        )

    # the tentpole claim: re-planning beats BOTH static plans end to end
    assert throughputs["adaptive"] > throughputs["type"], (
        f"re-planned run should out-run static type granularity: "
        f"{throughputs['adaptive']:,.0f} vs {throughputs['type']:,.0f} ev/s"
    )
    assert throughputs["adaptive"] > throughputs["event"], (
        f"re-planned run should out-run static event granularity: "
        f"{throughputs['adaptive']:,.0f} vs {throughputs['event']:,.0f} ev/s"
    )
