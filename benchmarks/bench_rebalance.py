"""Adaptive shard rebalancing: throughput recovery on a zipf-skewed workload.

A zipf key distribution concentrates most events on a few hot partition
keys.  When those keys hash into the ranges of one worker, static sharding
leaves that worker saturated while the others idle -- the opposite of
picking the cheapest execution granularity for the observed workload.  This
benchmark builds exactly that adversarial placement (the zipf head is drawn
from groups the seed router assigns to worker 0), then runs the same stream

* through a statically sharded runtime (the PR 2 behaviour), and
* through one with ``rebalance.enabled`` -- the router migrates hot hash
  slots (with their live aggregator state) to the idle worker mid-stream,

and checks that

* both produce exactly the single-process results,
* rebalancing actually moved slots and **evened the routed load** (the
  hottest worker's share of events drops by a clear margin -- this is
  deterministic and asserted everywhere), and
* with at least 2 free cores the rebalanced run's throughput beats the
  static one (like the sharded-runtime speed-up check, the wall-clock
  assertion is skipped on smaller boxes, where the workers merely
  time-slice one another).
"""

import os
import random
import time

from conftest import save_report
from repro.events.event import Event
from repro.events.stream import sort_events
from repro.streaming.runtime import StreamingRuntime
from repro.streaming.sharded import ShardedRuntime, ShardRouter

from helpers_results import results_signature

#: Kleene-plus trend aggregation per group: enough per-event executor work
#: for the hot worker to be the bottleneck, not the parent's routing loop
QUERY = """
RETURN g, COUNT(*), MAX(A.v)
PATTERN SEQ(A+, B)
SEMANTICS skip-till-any-match
GROUP-BY g
WITHIN 60 seconds SLIDE 30 seconds
"""

WORKERS = 2
EVENTS = 6000
ZIPF_EXPONENT = 1.2


def zipf_skewed_workload(event_count=EVENTS, seed=29, groups=48):
    """Zipf-weighted group keys whose hot head hashes to worker 0."""
    probe = ShardRouter(WORKERS, 16)
    names = [f"g{i:02d}" for i in range(groups)]
    # order the population so the zipf head falls on worker 0's hash ranges
    ordered = [g for g in names if probe.owner_of_key((g,)) == 0] + [
        g for g in names if probe.owner_of_key((g,)) != 0
    ]
    weights = [1.0 / (rank**ZIPF_EXPONENT) for rank in range(1, len(ordered) + 1)]
    rng = random.Random(seed)
    return sort_events(
        Event(
            "A" if rng.random() < 0.75 else "B",
            rng.uniform(0.0, 600.0),
            {"g": rng.choices(ordered, weights)[0], "v": rng.randint(1, 9)},
        )
        for _ in range(event_count)
    )


def _run(events, rebalance):
    runtime = ShardedRuntime(
        workers=WORKERS,
        lateness=0.0,
        rebalance=(
            {"enabled": True, "min_interval": 400, "skew_threshold": 1.25}
            if rebalance
            else None
        ),
    )
    runtime.register(QUERY, name="q")
    started = time.perf_counter()
    records = runtime.run(events)
    elapsed = time.perf_counter() - started
    return runtime, records, len(events) / elapsed


def hot_share(runtime):
    """The busiest worker's share of all routed events."""
    sent = [stats.events_sent for stats in runtime.shard_stats]
    return max(sent) / max(1, sum(sent))


def test_rebalance_recovers_throughput_on_zipf_skew(benchmark, results_dir):
    events = zipf_skewed_workload()
    single = StreamingRuntime(lateness=0.0)
    single.register(QUERY, name="q")
    expected = results_signature(r.result for r in single.run(events))

    def run():
        static_runtime, static_records, static_tp = _run(events, rebalance=False)
        moving_runtime, moving_records, moving_tp = _run(events, rebalance=True)
        return (static_runtime, static_records, static_tp), (
            moving_runtime,
            moving_records,
            moving_tp,
        )

    (static_runtime, static_records, static_tp), (
        moving_runtime,
        moving_records,
        moving_tp,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)

    # correctness first: both topologies emit the single-process windows
    assert results_signature(r.result for r in static_records) == expected
    assert results_signature(r.result for r in moving_records) == expected

    # the policy actually migrated hot ranges ...
    assert moving_runtime.router_version > 0
    assert moving_runtime.metrics.rebalance_cycles > 0
    # ... and measurably evened the routed load (deterministic margin)
    static_share = hot_share(static_runtime)
    moving_share = hot_share(moving_runtime)
    assert static_share >= 0.70, (
        f"the workload is supposed to saturate one worker under static "
        f"sharding, measured only {static_share:.0%}"
    )
    assert moving_share <= static_share - 0.10, (
        f"rebalancing should cut the hottest worker's share by >= 10 points, "
        f"got {static_share:.0%} -> {moving_share:.0%}"
    )

    cores = os.cpu_count() or 1
    speedup = moving_tp / static_tp
    lines = [
        "Adaptive rebalancing on a zipf-skewed key workload",
        "",
        f"events={EVENTS} workers={WORKERS} zipf_s={ZIPF_EXPONENT}",
        f"static    : {static_tp:10,.0f} ev/s  hot-worker share {static_share:.0%}",
        f"rebalanced: {moving_tp:10,.0f} ev/s  hot-worker share {moving_share:.0%}  "
        f"(router v{moving_runtime.router_version}, "
        f"{moving_runtime.metrics.rebalance_slots_moved} slots moved, "
        f"pause {moving_runtime.metrics.rebalance_pause_seconds * 1000.0:.1f} ms)",
        f"speed-up  : {speedup:5.2f}x  (cpu cores available: {cores})",
    ]
    for note in moving_runtime.rebalance_log:
        lines.append(f"  {note}")
    save_report(results_dir, "rebalance", "\n".join(lines))

    if cores >= 2:
        assert speedup > 1.0, (
            f"rebalancing-enabled sharding should out-run static sharding on "
            f"a {cores}-core machine, measured {speedup:.2f}x"
        )
