"""Figure 6: latency under skip-till-next-match (public transportation data).

Only the Kleene-capable approaches can run this workload, and GRETA / A-Seq
/ Flink do not support the semantics at all (Table 9).  The paper's shape:
SASE's two-step evaluation falls hours behind beyond a few million events,
while COGRA's latency stays linear.  At laptop scale the same divergence is
visible as a growing gap between the two curves.
"""

import pytest

from conftest import DEFAULT_BUDGET, save_report
from repro.bench.harness import measure_run, sweep
from repro.bench.reporting import format_series_table
from repro.bench.workloads import figure6_next_match_workload

APPROACHES = ["flink", "sase", "greta", "aseq", "cogra"]


@pytest.mark.parametrize("events", [500, 1000])
@pytest.mark.parametrize("approach", ["sase", "cogra"])
def test_figure6_latency(benchmark, approach, events):
    point = figure6_next_match_workload(event_counts=(events,), seed=6)[0]

    def run():
        return measure_run(
            approach,
            point.query,
            point.events,
            workload=point.name,
            parameter=point.parameter,
            cost_budget=DEFAULT_BUDGET,
            track_allocations=False,
        )

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    assert metrics.finished


def test_figure6_report(benchmark, results_dir):
    def run():
        return sweep(
            APPROACHES,
            figure6_next_match_workload(event_counts=(250, 500, 1000, 2000), seed=6),
            cost_budget=DEFAULT_BUDGET,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for metric in ("latency (ms)", "stored units"):
        table = format_series_table(
            f"Figure 6 - skip-till-next-match, public transportation ({metric})",
            results,
            metric=metric,
        )
        save_report(results_dir, f"figure6_{metric.split()[0]}", table)

    # Table 9: only SASE and COGRA support skip-till-next-match
    unsupported = {r.approach for r in results if r.status.value == "unsupported"}
    assert unsupported == {"flink", "greta", "aseq"}
    # both supported approaches report the same trend counts
    by_parameter = {}
    for result in results:
        if result.finished:
            by_parameter.setdefault(result.parameter, set()).add(result.total_trend_count)
    assert all(len(counts) == 1 for counts in by_parameter.values())
