"""Tables 5, 6 and 7: the paper's running example at every granularity.

These micro-benchmarks time the three COGRA aggregators on the stream of
Figure 2 (``a1 b2 a3 a4 c5 b6 a7 b8``) and assert the exact final counts
the paper reports: 43 trends under skip-till-any-match (Table 5), 33 under
the Table 6 adjacency restriction, 8 under skip-till-next-match and 2 under
the contiguous semantics (Table 7).
"""

import pytest

from conftest import save_report
from repro.analyzer.plan import plan_query
from repro.core.base import create_aggregator
from repro.datasets.queries import running_example_query, running_example_stream
from repro.query.aggregates import count_star
from repro.query.ast import KleenePlus, atom, kleene_plus, sequence
from repro.query.builder import QueryBuilder
from repro.query.predicates import AdjacentPredicate


def table6_query():
    predicate = AdjacentPredicate(
        "B", "A", lambda b, a: not (b.time == 6.0 and a.time == 7.0), "Table 6 restriction"
    )
    return (
        QueryBuilder("table6")
        .pattern(KleenePlus(sequence(kleene_plus("A"), atom("B"))))
        .semantics("skip-till-any-match")
        .aggregate(count_star())
        .where_adjacent(predicate)
        .build()
    )


CASES = {
    "table5_type_grained_any": (running_example_query("skip-till-any-match"), 43, "type"),
    "table6_mixed_grained_any": (table6_query(), 33, "mixed"),
    "table7_pattern_grained_next": (running_example_query("skip-till-next-match"), 8, "pattern"),
    "table7_pattern_grained_cont": (running_example_query("contiguous"), 2, "pattern"),
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_running_example_counts(benchmark, case):
    query, expected, expected_granularity = CASES[case]
    plan = plan_query(query)
    assert plan.granularity.value == expected_granularity
    events = running_example_stream()

    def run():
        aggregator = create_aggregator(plan)
        for event in events:
            aggregator.process(event)
        return aggregator.trend_count

    count = benchmark(run)
    assert count == expected


def test_tables_5_to_7_report(benchmark, results_dir):
    def run():
        rows = []
        for name, (query, expected, granularity) in sorted(CASES.items()):
            plan = plan_query(query)
            aggregator = create_aggregator(plan)
            for event in running_example_stream():
                aggregator.process(event)
            rows.append((name, granularity, aggregator.trend_count, expected))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Tables 5-7 - running example (SEQ(A+,B))+ over a1 b2 a3 a4 c5 b6 a7 b8",
             f"{'case':35}  {'granularity':12}  {'measured':>8}  {'paper':>6}"]
    for name, granularity, measured, expected in rows:
        lines.append(f"{name:35}  {granularity:12}  {measured:>8}  {expected:>6}")
        assert measured == expected
    save_report(results_dir, "tables5_6_7_running_example", "\n".join(lines))
