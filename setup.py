"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that legacy editable installs (``pip install -e . --no-use-pep517`` or
``python setup.py develop``) keep working on machines without the ``wheel``
package, e.g. air-gapped evaluation environments.
"""

from setuptools import setup

setup()
