"""Health care analytics: query q1 of the paper over a synthetic PAMAP2 stream.

Query q1 detects contiguously increasing heart-rate measurements taken
during passive activities and reports the minimal and maximal heart rate
per patient within a sliding window -- the building block for cardiac
arrhythmia alerts.

The example shows

* how to express q1 with the textual query language,
* that the static analyzer picks the pattern-grained aggregator (the
  coarsest granularity, constant space per group), and
* the per-patient MIN/MAX results over a generated monitoring stream.

Run with::

    python examples/healthcare_monitoring.py
"""

from repro import CograEngine
from repro.datasets import PhysicalActivityConfig, generate_physical_activity_stream

Q1 = """
    RETURN patient, MIN(M.rate), MAX(M.rate)
    PATTERN Measurement M+
    SEMANTICS contiguous
    WHERE [patient] AND M.rate < NEXT(M).rate AND M.activity_class = passive
    GROUP-BY patient
    WITHIN 10 minutes SLIDE 30 seconds
"""


def main() -> None:
    stream = generate_physical_activity_stream(
        PhysicalActivityConfig(event_count=20_000, patients=14, seed=42)
    )
    engine = CograEngine.from_text(Q1, name="q1-healthcare")

    print("=== COGRA plan for q1 ===")
    print(engine.explain())
    print()

    results = engine.run(stream)
    print(f"=== {len(results)} window/patient results over {len(stream)} measurements ===")

    # show the patients with the highest observed heart rate in any window
    top = sorted(results, key=lambda r: r["MAX(M.rate)"] or 0, reverse=True)[:10]
    print(f"{'window':>8}  {'patient':>7}  {'min rate':>8}  {'max rate':>8}  {'trends':>7}")
    for row in top:
        print(
            f"{row.window_id:>8}  {row.group['patient']:>7}  "
            f"{row['MIN(M.rate)']:>8.1f}  {row['MAX(M.rate)']:>8.1f}  {row.trend_count:>7}"
        )

    print(f"\nmemory footprint: {engine.storage_units()} stored aggregate values "
          f"({engine.stored_event_count()} stored events)")


if __name__ == "__main__":
    main()
