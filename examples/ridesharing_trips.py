"""Ridesharing analytics: query q2 of the paper over a synthetic Uber-style stream.

Query q2 counts the pool trips a driver completes when riders cancel after
contacting the driver.  A trip is one ``Accept``, any number of
``(Call, Cancel)`` episodes and a final ``Finish``; irrelevant events
(in-transit, drop-off) are skipped thanks to the skip-till-next-match
semantics.

Run with::

    python examples/ridesharing_trips.py
"""

from collections import Counter

from repro import CograEngine
from repro.datasets import RidesharingConfig, generate_ridesharing_stream

Q2 = """
    RETURN driver, COUNT(*)
    PATTERN SEQ(Accept, (SEQ(Call, Cancel))+, Finish)
    SEMANTICS skip-till-next-match
    WHERE [driver]
    GROUP-BY driver
    WITHIN 10 minutes SLIDE 30 seconds
"""


def main() -> None:
    stream = generate_ridesharing_stream(
        RidesharingConfig(event_count=15_000, drivers=25, seed=11)
    )
    type_mix = Counter(event.event_type for event in stream)
    print("input stream event mix:", dict(sorted(type_mix.items())))

    engine = CograEngine.from_text(Q2, name="q2-ridesharing")
    print(f"\nselected granularity: {engine.granularity} (constant state per driver)\n")

    results = engine.run(stream)

    # total completed trips with cancellations per driver, over all windows
    trips_per_driver = Counter()
    for row in results:
        trips_per_driver[row.group["driver"]] += row["COUNT(*)"]

    print(f"{'driver':>7}  {'trips with cancellations (all windows)':>40}")
    for driver, trips in trips_per_driver.most_common(10):
        print(f"{driver:>7}  {trips:>40}")

    busiest = trips_per_driver.most_common(1)
    if busiest:
        driver, trips = busiest[0]
        print(f"\nbusiest driver: {driver} with {trips} counted trips")


if __name__ == "__main__":
    main()
