"""Algorithmic trading: query q3 of the paper over a synthetic stock stream.

Query q3 detects down-trends of a stock (ignoring local fluctuations thanks
to the skip-till-any-match semantics) followed by another trend, and
aggregates the price of the follower.  The example

* runs the q3-shaped query ``SEQ(Stock A+, Stock B+)`` with the
  ``A.price > NEXT(A).price`` predicate,
* shows that the static analyzer selects the mixed-grained aggregator
  (event-grained for the A side, type-grained for the B side), and
* compares COGRA against the GRETA baseline on the same stream to
  illustrate the memory gap between type/mixed and per-event aggregation.

Run with::

    python examples/algorithmic_trading.py
"""

import time

from repro import CograEngine
from repro.baselines import CograApproach, GretaApproach
from repro.datasets import StockConfig, generate_stock_stream, stock_query


def main() -> None:
    stream = list(
        generate_stock_stream(
            StockConfig(event_count=3_000, companies=19, sectors=10, decrease_probability=0.6, seed=7)
        )
    )
    query = stock_query(
        semantics="skip-till-any-match",
        with_price_predicate=True,
        group_by_company=True,
        window=None,
    )

    engine = CograEngine(query)
    print("=== COGRA plan for q3 ===")
    print(engine.explain())
    print()

    started = time.perf_counter()
    results = engine.run(stream)
    elapsed = (time.perf_counter() - started) * 1000

    print(f"=== per-company down-trend statistics ({elapsed:.1f} ms for {len(stream)} transactions) ===")
    print(f"{'company':>8}  {'trends':>22}  {'AVG(B.price)':>12}")
    for row in sorted(results, key=lambda r: r.group["company"])[:10]:
        avg_price = row["AVG(B.price)"]
        print(f"{row.group['company']:>8}  {row.trend_count:>22}  {avg_price:>12.2f}")

    print("\n=== COGRA vs GRETA (event-grained) on the same workload ===")
    for approach in (CograApproach(), GretaApproach()):
        started = time.perf_counter()
        approach.run(query, stream)
        elapsed = (time.perf_counter() - started) * 1000
        print(
            f"{approach.name:8}  latency {elapsed:10.1f} ms   "
            f"peak stored values {approach.peak_storage_units:>12,}"
        )


if __name__ == "__main__":
    main()
