"""Adaptive shard rebalancing: live migration of hot key ranges.

Static sharding hashes partition keys to fixed worker ranges, so a skewed
key distribution -- a few hot groups dominating the stream -- can leave one
worker saturated while the others idle.  This example

1. builds a zipf-skewed event stream whose hot groups all hash to worker 0
   of the seed router map (the adversarial case for static sharding),
2. runs it on a statically sharded runtime and on one with
   ``rebalance.enabled`` -- configured through the declarative
   ``JobConfig`` API, the same ``shards.rebalance.*`` keys ``cogra stream
   --rebalance`` uses,
3. shows the router migrating hot hash slots (with their live aggregator
   state) to the idle worker mid-stream, and the routed load evening out,
4. checks both runs emit exactly the single-process results, and
5. demonstrates that a checkpoint taken after the migration restores the
   *post-migration* topology, not the seed one.

Run with::

    python examples/adaptive_rebalance.py
"""

import random

from repro.events.event import Event
from repro.events.stream import sort_events
from repro.streaming.config import (
    JobConfig,
    QueryConfig,
    RebalanceConfig,
    ShardConfig,
)
from repro.streaming.runtime import StreamingRuntime
from repro.streaming.sharded import ShardRouter

QUERY = """
RETURN g, COUNT(*), MAX(A.v)
PATTERN SEQ(A+, B)
SEMANTICS skip-till-any-match
GROUP-BY g
WITHIN 60 seconds SLIDE 30 seconds
"""

WORKERS = 2


def zipf_skewed_stream(count=5_000, seed=11, groups=48):
    """Zipf-weighted group keys whose hot head hashes to worker 0."""
    probe = ShardRouter(WORKERS, 16)
    names = [f"g{i:02d}" for i in range(groups)]
    ordered = [g for g in names if probe.owner_of_key((g,)) == 0] + [
        g for g in names if probe.owner_of_key((g,)) != 0
    ]
    weights = [1.0 / (rank**1.2) for rank in range(1, len(ordered) + 1)]
    rng = random.Random(seed)
    return sort_events(
        Event(
            "A" if rng.random() < 0.75 else "B",
            rng.uniform(0.0, 600.0),
            {"g": rng.choices(ordered, weights)[0], "v": rng.randint(1, 9)},
        )
        for _ in range(count)
    )


def signature(records):
    rows = []
    for record in records:
        result = record.result
        rows.append(
            (result.window_id, tuple(sorted(result.group.items())), result.trend_count)
        )
    return sorted(rows)


def sharded_config(rebalance: bool) -> JobConfig:
    return JobConfig(
        queries=(QueryConfig(text=QUERY, name="trends"),),
        shards=ShardConfig(
            workers=WORKERS,
            rebalance=RebalanceConfig(
                enabled=rebalance,
                min_interval=400,
                skew_threshold=1.25,
            ),
        ),
    )


def hot_share(runtime) -> float:
    sent = [stats.events_sent for stats in runtime.shard_stats]
    return max(sent) / max(1, sum(sent))


def main() -> None:
    events = zipf_skewed_stream()

    single = StreamingRuntime(lateness=0.0)
    single.register(QUERY, name="trends")
    expected = signature(single.run(events))
    print(f"single process      : {len(expected)} emitted windows (reference)")

    # -- static sharding: the hot ranges pile onto worker 0 -----------------
    static = sharded_config(rebalance=False).build_runtime()
    static_records = static.run(events)
    assert signature(static_records) == expected
    print(f"static sharding     : hot-worker share {hot_share(static):.0%}")

    # -- adaptive rebalancing: hot slots migrate to the idle worker ---------
    moving = sharded_config(rebalance=True).build_runtime()
    moving_records = moving.run(events)
    assert signature(moving_records) == expected
    print(
        f"adaptive rebalancing: hot-worker share {hot_share(moving):.0%} "
        f"(router v{moving.router_version}, "
        f"{moving.metrics.rebalance_slots_moved} slots / "
        f"{moving.metrics.rebalance_keys_moved} keys migrated, "
        f"paused {moving.metrics.rebalance_pause_seconds * 1000.0:.1f} ms)"
    )
    for note in moving.rebalance_log:
        print(f"  {note}")

    # -- the migrated topology survives checkpoint/restore ------------------
    survivor = sharded_config(rebalance=True).build_runtime()
    half = len(events) // 2
    records = []
    for event in events[:half]:
        records.extend(survivor.process(event))
    survivor.rebalance()  # force a cycle from the observed skew
    snapshot = survivor.checkpoint()
    records.extend(survivor.drain_pending())
    survivor.close()

    resumed = sharded_config(rebalance=True).build_runtime()
    resumed.restore(snapshot)
    assert resumed.router_version == survivor.router_version
    print(
        f"restored topology   : router v{resumed.router_version} adopted from "
        f"the checkpoint (not the seed map)"
    )
    for event in events[half:]:
        records.extend(resumed.process(event))
    records.extend(resumed.flush())
    assert signature(records) == expected
    print("parity              : all four runs emitted identical windows")


if __name__ == "__main__":
    main()
