"""Quickstart: count event trends with COGRA in a few lines.

The example reproduces the paper's running example (Figure 2): the Kleene
pattern ``(SEQ(A+, B))+`` is evaluated over the eight-event stream
``a1 b2 a3 a4 c5 b6 a7 b8`` under all three event matching semantics.
Expected output: 43 trends under skip-till-any-match, 8 under
skip-till-next-match and 2 under the contiguous semantics.

Run with::

    python examples/quickstart.py
"""

from repro import CograEngine, Event

QUERY_TEXT = """
    RETURN COUNT(*)
    PATTERN (SEQ(A+, B))+
    SEMANTICS {semantics}
"""

STREAM = [
    Event("A", 1), Event("B", 2), Event("A", 3), Event("A", 4),
    Event("C", 5), Event("B", 6), Event("A", 7), Event("B", 8),
]


def main() -> None:
    print("running example (SEQ(A+, B))+ over a1 b2 a3 a4 c5 b6 a7 b8\n")
    for semantics in ("skip-till-any-match", "skip-till-next-match", "contiguous"):
        engine = CograEngine.from_text(QUERY_TEXT.format(semantics=semantics))
        results = engine.run(STREAM)
        count = results[0]["COUNT(*)"] if results else 0
        print(f"{semantics:24}  granularity={engine.granularity:8}  COUNT(*) = {count}")

    # the same engine can also be fed incrementally
    engine = CograEngine.from_text(QUERY_TEXT.format(semantics="skip-till-any-match"))
    for event in STREAM:
        engine.process(event)
    final = engine.flush()
    print(f"\nincremental run returns the same count: {final[0]['COUNT(*)']}")


if __name__ == "__main__":
    main()
