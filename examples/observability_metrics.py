"""End-to-end observability: registry metrics, traces, and exporters.

Every runtime -- single-process or sharded -- carries a labeled metrics
registry with per-query counters and fixed-bucket latency histograms.  This
example walks the full surface:

1. run a job and read per-query events / results / selectivity / p95
   latency out of ``runtime.registry_snapshot()``;
2. render the same snapshot as Prometheus exposition text (what
   ``cogra stream --prometheus-port`` serves) and as a JSONL time-series
   sample (what ``--metrics-export`` appends);
3. trace one run at sample rate 1.0 and print a sampled event's span tree
   (ingest -> route under the event root);
4. re-run the identical stream sharded over worker processes and show the
   merged parent view reports the same per-query totals -- the registry's
   fixed histogram buckets make worker snapshots add up exactly.

Run with::

    PYTHONPATH=src python examples/observability_metrics.py
"""

import random
from collections import defaultdict

from repro.datasets.stock import StockConfig, generate_stock_stream
from repro.events.stream import sort_events
from repro.streaming import (
    Observability,
    ShardedRuntime,
    StreamingRuntime,
    Tracer,
    render_prometheus,
    snapshot_quantile,
    snapshot_value,
)

LATENESS = 5.0

QUERY = """
RETURN company, COUNT(*), MAX(S.price)
PATTERN Stock S+
SEMANTICS skip-till-any-match
WHERE [company]
GROUP-BY company
WITHIN 60 seconds SLIDE 30 seconds
"""


def workload(event_count=3000, seed=7):
    ordered = sort_events(
        generate_stock_stream(StockConfig(event_count=event_count, seed=seed))
    )
    rng = random.Random(41)
    return sorted(
        ordered, key=lambda e: (e.time + rng.uniform(0.0, LATENESS), e.sequence)
    )


def query_summary(snapshot, query="trends"):
    return (
        f"events={snapshot_value(snapshot, 'cogra_query_events_total', [query]):.0f}  "
        f"results={snapshot_value(snapshot, 'cogra_query_results_total', [query]):.0f}  "
        f"selectivity={snapshot_value(snapshot, 'cogra_query_selectivity', [query]):.4f}  "
        f"p95 latency={snapshot_quantile(snapshot, 'cogra_query_latency_seconds', 0.95, [query]):.6f} s"
    )


def main() -> None:
    feed = workload()

    # == 1: per-query metrics out of a plain run ==
    runtime = StreamingRuntime(lateness=LATENESS)
    runtime.register(QUERY, name="trends")
    runtime.run(feed)
    snapshot = runtime.registry_snapshot()
    runtime.close()
    print("single-process registry:")
    print("  " + query_summary(snapshot))

    # == 2: the two export formats ==
    text = render_prometheus(snapshot)
    print(f"\nprometheus text ({len(text.splitlines())} lines), e.g.:")
    for line in text.splitlines():
        if line.startswith("cogra_query_events_total"):
            print("  " + line)
    # a --metrics-export sample is just {"ts": ..., "metrics": snapshot}

    # == 3: sampled lifecycle tracing ==
    spans = []
    traced = StreamingRuntime(
        lateness=LATENESS,
        observability=Observability(
            tracer=Tracer(sample_rate=1.0, sink=spans.append)
        ),
    )
    traced.register(QUERY, name="trends")
    traced.run(feed[:200])
    traced.close()
    children = defaultdict(list)
    for span in spans:
        children[span["parent"]].append(span)
    # show the busiest event: the root with the most child spans
    root = max(children[None], key=lambda span: len(children[span["span"]]))
    print(f"\none sampled event's span tree (of {len(children[None])} roots):")
    print(f"  {root['name']}  {root['duration_ms']:.3f} ms  {root['attrs']}")
    for child in children[root["span"]]:
        print(f"    {child['name']}  {child['duration_ms']:.3f} ms  {child['attrs']}")

    # == 4: the merged sharded view equals the single-process one ==
    sharded = ShardedRuntime(workers=2, lateness=LATENESS)
    sharded.register(QUERY, name="trends")
    sharded.run(feed)
    merged = sharded.registry_snapshot()
    sharded.close()
    print("\nsharded (2 workers), merged parent view:")
    print("  " + query_summary(merged))
    for name in ("cogra_query_events_total", "cogra_query_results_total"):
        assert snapshot_value(merged, name, ["trends"]) == snapshot_value(
            snapshot, name, ["trends"]
        ), name
    print("  (events and results match the single-process run exactly)")


if __name__ == "__main__":
    main()
