"""Compare the three event matching semantics and the granularities they enable.

The same Kleene query over the same public-transportation stream is run
under skip-till-any-match, skip-till-next-match and the contiguous
semantics.  The example prints, for each semantics,

* the granularity chosen by the static analyzer (Table 4 of the paper),
* the number of detected trends (illustrating the containment
  CONT <= NEXT <= ANY of Figure 2), and
* the number of aggregate values COGRA had to keep (the memory story of
  the paper: the coarser the granularity, the smaller the state).

Run with::

    python examples/semantics_comparison.py
"""

from repro import CograEngine
from repro.datasets import (
    TransportationConfig,
    generate_transportation_stream,
    transportation_query,
)
from repro.baselines import CograApproach


def main() -> None:
    stream = list(
        generate_transportation_stream(
            TransportationConfig(event_count=4_000, passengers=30, stations=100, seed=3)
        )
    )
    print(f"public transportation stream: {len(stream)} events, 30 passengers\n")
    print(f"{'semantics':26}  {'granularity':12}  {'total trends':>24}  {'peak stored values':>18}")

    for semantics in ("contiguous", "skip-till-next-match", "skip-till-any-match"):
        query = transportation_query(semantics=semantics, window=None)
        engine = CograEngine(query)
        approach = CograApproach(memory_sample_stride=64)
        results = approach.run(query, stream)
        total = sum(row.trend_count for row in results)
        print(
            f"{semantics:26}  {engine.granularity:12}  {total:>24}  "
            f"{approach.peak_storage_units:>18,}"
        )

    print(
        "\nThe trend sets are contained in one another (Figure 2 of the paper):"
        " every contiguous trend is a skip-till-next-match trend, and every"
        " skip-till-next-match trend is a skip-till-any-match trend."
    )


if __name__ == "__main__":
    main()
