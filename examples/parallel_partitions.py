"""Partition-parallel execution and the granularity ablation, end to end.

The paper's Section 7 observes that GROUP-BY and equivalence predicates
partition the stream into independent sub-streams; Section 9.4 exploits that
for scalability.  This example

1. generates the synthetic stock stream (19 companies, 10 sectors),
2. runs query q3's trend variation sequentially and partition-parallel and
   checks that the results agree,
3. reports per-partition load (the skew bounds parallel speed-up), and
4. forces the same query down to GRETA-style event granularity to show what
   the coarse type granularity saves (the ablation of DESIGN.md).

Run with::

    python examples/parallel_partitions.py
"""

from repro import CograEngine
from repro.bench.ablation import granularity_ablation
from repro.core.parallel import ParallelExecutor
from repro.datasets.queries import stock_trend_query
from repro.datasets.statistics import events_per_group, load_imbalance
from repro.datasets.stock import StockConfig, generate_stock_stream


def main() -> None:
    stream = list(generate_stock_stream(StockConfig(event_count=10_000, seed=7)))
    query = stock_trend_query(semantics="skip-till-any-match", window=None)

    sequential = CograEngine(query).run(stream)
    parallel_executor = ParallelExecutor(query, workers=4)
    parallel = parallel_executor.run(stream)

    sequential_counts = {tuple(r.group.items()): r.trend_count for r in sequential}
    parallel_counts = {tuple(r.group.items()): r.trend_count for r in parallel}
    assert sequential_counts == parallel_counts, "parallel run must match sequential run"

    print(f"events                 : {len(stream):,}")
    print(f"partitions (companies) : {parallel_executor.partition_count}")
    print(f"load imbalance         : {load_imbalance(stream, 'company'):.2f} (1.0 = even)")
    busiest = max(events_per_group(stream, "company").items(), key=lambda item: item[1])
    print(f"busiest partition      : company {busiest[0]} with {busiest[1]:,} events")
    print(f"result rows            : {len(parallel)} (identical to sequential run)")
    print()

    print("granularity ablation on the same query and stream:")
    for metrics in granularity_ablation(query, stream[:5_000]):
        print(
            f"  {metrics.approach:<14} latency={metrics.latency_ms:8.1f} ms   "
            f"peak storage={metrics.peak_storage_units:>10,} units"
        )
    print()
    print(
        "Type granularity keeps one accumulator per pattern variable and group, so its"
    )
    print(
        "storage stays constant while event granularity stores every matched event."
    )


if __name__ == "__main__":
    main()
