"""The exactly-once delivery drill: crash a pipeline, recover it, diff bytes.

A job reading a :class:`~repro.streaming.PartitionedLogSource` and writing
through a :class:`~repro.streaming.TransactionalSink` survives a crash at
*any* point without losing or duplicating a single output row, because

1. the source's consumer offsets and the sink's committed byte offset are
   checkpointed atomically with executor state,
2. recovery truncates the sink back to the committed offset and seeks the
   log to the committed offsets (skipping whole segments), and
3. a dedup keyset over ``(query, window, group)`` swallows replayed rows
   that already made it to disk.

This example runs the whole drill in-process -- write a partitioned log,
crash a job mid-stream, recover, and assert the recovered sink file is
**byte-identical** to an uninterrupted run -- then demonstrates the
backpressure side: a slow consumer throttles ingestion (visible in the
``cogra_backpressure_*`` counters) without changing the results.

Run with::

    PYTHONPATH=src python examples/exactly_once_pipeline.py
"""

import random
import tempfile
from pathlib import Path

from repro.events.event import Event
from repro.events.stream import sort_events
from repro.streaming import (
    BackpressureConfig,
    CheckpointStore,
    EventSource,
    MemorySink,
    PartitionedLogSource,
    PartitionedLogWriter,
    StreamingRuntime,
    TransactionalSink,
    resume_job,
)
from repro.streaming.observability import snapshot_value

QUERY = (
    "RETURN g, COUNT(*), MAX(A.v) PATTERN SEQ(A+, B) "
    "SEMANTICS skip-till-any-match GROUP-BY g "
    "WITHIN 20 seconds SLIDE 10 seconds"
)

CRASH_AT = 1700  # injected failure: event index inside the stream


class Crash(RuntimeError):
    """The injected mid-stream failure."""


class CrashingSource(EventSource):
    """Delegates to an inner source, raising :class:`Crash` at one index."""

    def __init__(self, inner, crash_at):
        self._inner = inner
        self._crash_at = crash_at

    def events(self):
        for index, event in enumerate(self._inner.events()):
            if index == self._crash_at:
                raise Crash(f"injected crash at event {index}")
            yield event

    def offsets(self):
        return self._inner.offsets()

    def close(self):
        self._inner.close()


class SlowSink(MemorySink):
    """A consumer that reports "not ready" on a fixed cadence."""

    def __init__(self):
        super().__init__()
        self._calls = 0

    def ready(self):
        self._calls += 1
        return self._calls % 3 != 0  # stalled every third poll


def make_stream(count=3000, seed=13):
    rng = random.Random(seed)
    return sort_events(
        Event(
            rng.choice("AB"),
            rng.uniform(0.0, 90.0),
            {"g": rng.choice("uvwxyz"), "v": rng.randint(1, 9)},
        )
        for _ in range(count)
    )


def new_runtime():
    runtime = StreamingRuntime(lateness=0.0)
    runtime.register(QUERY, name="trends")
    return runtime


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        root = Path(scratch)
        events = make_stream()

        # == the log side: hash-partitioned, append-only segments ==
        log_dir = root / "events-log"
        with PartitionedLogWriter(
            log_dir, partitions=3, segment_records=256
        ) as writer:
            writer.extend(events, key_by="g")
        segments = sorted(p.name for p in log_dir.rglob("*.jsonl"))
        print(f"log                 : {len(events)} events, "
              f"{len(segments)} segments across 3 partitions")

        # == reference: one uninterrupted run ==
        reference = root / "reference.jsonl"
        sink = TransactionalSink(reference)
        new_runtime().run(PartitionedLogSource(log_dir), sink)
        sink.close()
        expected = reference.read_bytes()
        print(f"reference run       : {len(expected)} bytes of results")

        # == crash: SIGKILL-equivalent at event {CRASH_AT} ==
        out = root / "results.jsonl"
        store = CheckpointStore(root / "ckpt", background=False)
        sink = TransactionalSink(out)
        try:
            new_runtime().run(
                CrashingSource(PartitionedLogSource(log_dir), CRASH_AT),
                sink,
                checkpoint_store=store,
                checkpoint_interval=250,
            )
        except Crash as exc:
            print(f"crash               : {exc}")
        sink.close()
        print(f"crashed sink        : {out.stat().st_size} bytes "
              "(committed prefix + uncommitted tail)")

        # == recover: truncate the sink, seek the log, replay ==
        resumed = new_runtime()
        recovered_sink = TransactionalSink(out, recover=True)
        info = resume_job(
            resumed, store, PartitionedLogSource(log_dir), sink=recovered_sink
        )
        for note in info.notes:
            print(f"recovery            : {note}")
        resumed.run(
            info.source,
            recovered_sink,
            checkpoint_store=store,
            checkpoint_interval=250,
        )
        recovered_sink.close()
        store.close()

        assert out.read_bytes() == expected, "recovered output diverged"
        print(f"recovered sink      : {out.stat().st_size} bytes -- "
              "byte-identical to the uninterrupted reference")

        # == backpressure: a slow consumer throttles, results unchanged ==
        slow = SlowSink()
        runtime = new_runtime()
        runtime.run(
            PartitionedLogSource(log_dir),
            slow,
            backpressure=BackpressureConfig(poll_interval_seconds=0.0005),
        )
        snapshot = runtime.metrics.registry.snapshot()
        waits = snapshot_value(snapshot, "cogra_backpressure_waits_total")
        fast_rows = expected.decode("utf-8").splitlines()
        assert len(slow.records) == len(fast_rows)
        print(f"backpressure        : {waits:.0f} ingestion waits on the "
              f"slow consumer, {len(slow.records)} identical results")


if __name__ == "__main__":
    main()
