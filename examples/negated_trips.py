"""Negated sub-patterns: count ridesharing trips without a cancellation.

Query q2 of the paper counts Uber pool trips that include call/cancel
episodes.  A dispatcher usually also wants the opposite view — trips that
were completed *without* any cancellation between acceptance and finish.
That is a negated sub-pattern (Section 8 of the paper)::

    PATTERN SEQ(Accept, NOT Cancel, Finish)

COGRA plans the positive part ``SEQ(Accept, Finish)`` as usual and applies
the per-granularity invalidation rule whenever a ``Cancel`` event arrives:
under skip-till-next-match only the last matched event has to be reset, so
the query still runs at pattern granularity with constant memory.

Run with::

    python examples/negated_trips.py
"""

from repro import CograEngine
from repro.datasets.ridesharing import RidesharingConfig, generate_ridesharing_stream
from repro.datasets.statistics import describe_stream

ALL_TRIPS_QUERY = """
    RETURN driver, COUNT(*)
    PATTERN SEQ(Accept, Finish)
    SEMANTICS skip-till-next-match
    WHERE [driver]
    GROUP-BY driver
"""

CLEAN_TRIPS_QUERY = """
    RETURN driver, COUNT(*)
    PATTERN SEQ(Accept, NOT Cancel, Finish)
    SEMANTICS skip-till-next-match
    WHERE [driver]
    GROUP-BY driver
"""


def main() -> None:
    stream = list(
        generate_ridesharing_stream(
            RidesharingConfig(event_count=5_000, drivers=25, seed=7, min_cancellations=0)
        )
    )
    stats = describe_stream(stream, name="ridesharing", group_attribute="driver")
    print(stats.describe())
    print()

    all_trips = CograEngine.from_text(ALL_TRIPS_QUERY)
    clean_trips = CograEngine.from_text(CLEAN_TRIPS_QUERY)
    print("negation plan:")
    print(clean_trips.explain())
    print()

    total_all = sum(result.trend_count for result in all_trips.run(stream))
    clean_results = clean_trips.run(stream)
    total_clean = sum(result.trend_count for result in clean_results)

    print(f"trips (Accept..Finish)              : {total_all}")
    print(f"trips without a Cancel in between   : {total_clean}")
    print(f"trips lost to cancellations         : {total_all - total_clean}")
    print()
    print("top drivers by clean trips:")
    top = sorted(clean_results, key=lambda result: -result.trend_count)[:5]
    for result in top:
        print(f"  driver {result['driver']:>3}: {result['COUNT(*)']} clean trips")


if __name__ == "__main__":
    main()
