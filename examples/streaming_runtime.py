"""Streaming runtime demo: out-of-order events, many queries, checkpointing.

Simulates a live stock feed with bounded disorder, registers two queries
against the same stream, emits window results as the watermark advances,
checkpoints the runtime mid-stream, and resumes it from the snapshot.

Run with::

    PYTHONPATH=src python examples/streaming_runtime.py
"""

import json
import random

from repro import CograEngine, StreamingRuntime, group_results
from repro.datasets.stock import StockConfig, generate_stock_stream
from repro.events.stream import sort_events

LATENESS = 5.0

RISING_RUNS = """
RETURN company, COUNT(*), MAX(S.price)
PATTERN Stock S+
SEMANTICS skip-till-any-match
WHERE S.price < NEXT(S).price
GROUP-BY company
WITHIN 10 seconds SLIDE 5 seconds
"""

TRADE_VOLUME = """
RETURN sector, COUNT(*), SUM(S.volume)
PATTERN Stock S+
SEMANTICS skip-till-next-match
GROUP-BY sector
WITHIN 10 seconds SLIDE 10 seconds
"""


def main() -> None:
    ordered = sort_events(generate_stock_stream(StockConfig(event_count=3000, seed=9)))
    # a "network" that delivers events up to LATENESS seconds out of order
    rng = random.Random(41)
    feed = sorted(ordered, key=lambda e: (e.time + rng.uniform(0.0, LATENESS), e.sequence))

    runtime = StreamingRuntime(lateness=LATENESS, late_policy="side-channel")
    runtime.register(RISING_RUNS, name="rising-runs")
    runtime.register(TRADE_VOLUME, name="trade-volume")

    print("== live emission (first 8 window results) ==")
    shown = 0
    records = []
    after_checkpoint = []
    checkpoint = None
    for index, event in enumerate(feed):
        for record in runtime.process(event):
            records.append(record)
            if checkpoint is not None:
                after_checkpoint.append(record)
            if shown < 8:
                row = record.as_dict()
                print(f"  wm={record.watermark:7.1f}  {json.dumps(row, default=str)}")
                shown += 1
        if index == len(feed) // 2 and checkpoint is None:
            checkpoint = runtime.checkpoint()
            print(f"-- checkpoint taken after {index + 1} events "
                  f"({len(json.dumps(checkpoint))} bytes as JSON)")

    tail = runtime.flush()
    records.extend(tail)
    after_checkpoint.extend(tail)
    print(f"total results: {len(records)} "
          f"({sum(1 for r in records if not r.is_final_flush)} emitted before end of stream)")
    print()
    print("== runtime metrics ==")
    print(runtime.metrics.describe())
    print()

    # resume from the checkpoint and replay the second half: identical output
    resumed = StreamingRuntime(lateness=LATENESS, late_policy="side-channel")
    resumed.register(RISING_RUNS, name="rising-runs")
    resumed.register(TRADE_VOLUME, name="trade-volume")
    resumed.restore(checkpoint)
    replay = []
    for event in feed[len(feed) // 2 + 1:]:
        replay.extend(resumed.process(event))
    replay.extend(resumed.flush())

    def signature(emitted):
        return [
            (r.query, r.result.window_id, tuple(sorted(r.result.group.items())),
             tuple(sorted(r.result.values.items())))
            for r in emitted
        ]

    assert signature(replay) == signature(after_checkpoint)
    print(f"== resumed from checkpoint: {len(replay)} results, identical to the "
          "uninterrupted run's post-checkpoint output ==")

    # sanity: the streaming run agrees with the batch engine on sorted input
    batch = CograEngine.from_text(RISING_RUNS).run(ordered)
    streamed = group_results(records, query="rising-runs")
    assert {(r.window_id, tuple(r.group.items())) for r in batch} == {
        (r.window_id, tuple(r.group.items())) for r in streamed
    }
    print("batch parity check passed")


if __name__ == "__main__":
    main()
