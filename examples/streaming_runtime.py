"""Streaming pipeline demo: sources, sinks, incremental checkpoints, recovery.

Simulates a live stock feed with bounded disorder and runs it through the
pipeline driver (source -> ingest/watermark -> route -> execute -> emit ->
sink) instead of a hand-rolled ingestion loop:

1. two queries registered against one out-of-order stream, emitted into an
   in-memory sink while an incremental :class:`CheckpointStore` snapshots
   the runtime every 500 events (deltas + periodic base compaction);
2. the run is *abandoned mid-stream* -- as if the process had died -- and a
   fresh runtime resumes from the newest on-disk checkpoint, replaying only
   the events the checkpoint had not ingested yet;
3. the union of results (pre-crash + resumed, deduplicated by window like
   any at-least-once consumer would) is identical to an uninterrupted run.

Run with::

    PYTHONPATH=src python examples/streaming_runtime.py
"""

import json
import random
import tempfile

from repro import (
    CheckpointStore,
    CograEngine,
    JobConfig,
    LatenessConfig,
    MemorySink,
    QueryConfig,
    StreamingRuntime,
    WatermarkConfig,
    group_results,
)
from repro.datasets.stock import StockConfig, generate_stock_stream
from repro.events.stream import sort_events

LATENESS = 5.0

RISING_RUNS = """
RETURN company, COUNT(*), MAX(S.price)
PATTERN Stock S+
SEMANTICS skip-till-any-match
WHERE S.price < NEXT(S).price
GROUP-BY company
WITHIN 10 seconds SLIDE 5 seconds
"""

TRADE_VOLUME = """
RETURN sector, COUNT(*), SUM(S.volume)
PATTERN Stock S+
SEMANTICS skip-till-next-match
GROUP-BY sector
WITHIN 10 seconds SLIDE 10 seconds
"""


#: the declarative description of the job; every rebuilt runtime (reference
#: run, crashed run, recovered run) resolves from this one spec
CONFIG = JobConfig(
    queries=(
        QueryConfig(text=RISING_RUNS, name="rising-runs"),
        QueryConfig(text=TRADE_VOLUME, name="trade-volume"),
    ),
    watermark=WatermarkConfig(lateness=LATENESS),
    late=LatenessConfig(policy="side-channel", reprocess=True),
)


def build_runtime() -> StreamingRuntime:
    return CONFIG.build_runtime()


def distinct(records):
    """At-least-once consumers deduplicate by window identity."""
    return {
        (r.query, r.result.window_id, tuple(sorted(r.result.group.items())),
         tuple(sorted(r.result.values.items())))
        for r in records
    }


def main() -> None:
    ordered = sort_events(generate_stock_stream(StockConfig(event_count=3000, seed=9)))
    # a "network" that delivers events up to LATENESS seconds out of order
    rng = random.Random(41)
    feed = sorted(ordered, key=lambda e: (e.time + rng.uniform(0.0, LATENESS), e.sequence))

    # == 1: the uninterrupted pipeline run (the reference) ==
    reference = build_runtime()
    sink = MemorySink()
    reference.run(feed, sink)
    print("== live emission (first 8 window results) ==")
    for record in sink.records[:8]:
        print(f"  wm={record.watermark:7.1f}  "
              f"{json.dumps(record.as_dict(), default=str)}")
    incremental = sum(1 for r in sink.records if not r.is_final_flush)
    print(f"total results: {len(sink.records)} "
          f"({incremental} emitted before end of stream)")
    print()
    print("== runtime metrics ==")
    print(reference.metrics.describe())
    print()

    # == 2: the same job, checkpointing every 500 events -- then it "dies" ==
    store_dir = tempfile.mkdtemp(prefix="cogra-ckpt-")
    with CheckpointStore(store_dir, compact_every=4) as store:
        crashed = build_runtime()
        survivors = []
        for record in crashed.drive(
            feed, checkpoint_store=store, checkpoint_interval=500
        ):
            survivors.append(record)
            if len(survivors) >= len(sink.records) // 2:
                break  # the "process dies" here: no flush, windows lost
        print("== checkpoint chain at the moment of the crash ==")
        for entry in store.entries:
            print(f"  #{entry.checkpoint_id}  {entry.kind:<5}  "
                  f"{entry.bytes_written:6d} bytes")

        # == 3: recover from the newest on-disk checkpoint ==
        snapshot = store.load_latest()
        ingested = snapshot["metrics"]["events_ingested"]
        resumed = build_runtime()
        resumed.restore(snapshot)
        replay = list(resumed.drive(feed[ingested:]))
        print()
        print(f"== recovery: resumed from checkpoint at event {ingested}, "
              f"replayed {len(feed) - ingested} events ==")

        # at-least-once: windows emitted between the checkpoint and the crash
        # are re-emitted by the resumed run; a consumer dedups by window
        assert distinct(survivors) | distinct(replay) == distinct(sink.records)
        print("pre-crash + resumed results == uninterrupted run (after dedup)")

    # sanity: the streaming run agrees with the batch engine on sorted input
    batch = CograEngine.from_text(RISING_RUNS).run(ordered)
    streamed = group_results(sink.records, query="rising-runs")
    assert {(r.window_id, tuple(r.group.items())) for r in batch} == {
        (r.window_id, tuple(r.group.items())) for r in streamed
    }
    print("batch parity check passed")


if __name__ == "__main__":
    main()
