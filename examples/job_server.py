"""The multi-tenant job server: two tenants, different quotas, one server.

A :class:`~repro.streaming.server.JobServer` runs many jobs concurrently
over one fair round-robin scheduler, with per-tenant admission quotas
(:class:`~repro.streaming.TenantConfig`) and per-job isolation of
checkpoints and metrics namespaces.  This example:

1. starts a server with two tenants -- ``analytics`` (generously
   rate-limited) and ``best-effort`` (tightly throttled, one job at a
   time) -- and submits the same job for both over the socket protocol;
2. shows the rate quota in action: both jobs finish with identical
   results, but the throttled tenant takes measurably longer;
3. shows the concurrency quota rejecting ``best-effort``'s second
   concurrent job with a typed error while ``analytics`` runs many;
4. reads back per-tenant metrics from the merged, ``job_id``/``tenant``-
   labelled registry snapshot.

Run with::

    PYTHONPATH=src python examples/job_server.py
"""

import json
import random
import tempfile
import time
from pathlib import Path

from repro.errors import ConcurrencyQuotaError
from repro.events.event import Event
from repro.streaming import (
    JobServer,
    JobServerClient,
    ServerConfig,
    TenantConfig,
    snapshot_value,
    write_jsonl_events,
)

LATENESS = 5.0

QUERY = """
RETURN g, COUNT(*), MAX(A.v)
PATTERN SEQ(A+, B)
SEMANTICS skip-till-any-match
GROUP-BY g
WITHIN 20 seconds SLIDE 10 seconds
"""


def write_events(path: Path, count: int = 400) -> str:
    rng = random.Random(17)
    ordered = [
        Event(
            "A" if i % 3 else "B",
            float(i),
            {"g": f"g{i % 2}", "v": i % 7},
            sequence=i,
        )
        for i in range(count)
    ]
    feed = sorted(
        ordered, key=lambda e: (e.time + rng.uniform(0.0, LATENESS), e.sequence)
    )
    with open(path, "w", encoding="utf-8") as handle:
        write_jsonl_events(feed, handle)
    return str(path)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="cogra-job-server-"))
    events = write_events(workdir / "events.jsonl")
    job = {
        "queries": [{"text": QUERY}],
        "source": {"spec": events},
        "watermark": {"lateness": LATENESS},
        "late": {"policy": "drop"},
    }

    config = ServerConfig(
        dir=str(workdir / "server"),
        tenants=(
            TenantConfig("analytics", max_events_per_second=100_000.0),
            TenantConfig(
                "best-effort",
                max_events_per_second=400.0,
                burst=100.0,
                max_concurrent_jobs=1,
            ),
        ),
    )

    with JobServer(config) as server:
        host, port = server.address
        print(f"server                : {host}:{port} (dir {server.directory})")

        with JobServerClient(host, port) as client:
            # == 1 + 2: same job, two tenants, different rate quotas ==
            started = time.monotonic()
            fast = client.submit(job, tenant="analytics")
            slow = client.submit(job, tenant="best-effort")
            fast_status = client.wait(fast)
            fast_elapsed = time.monotonic() - started
            slow_status = client.wait(slow, timeout=60.0)
            slow_elapsed = time.monotonic() - started
            fast_rows = client.results(fast)["records"]
            slow_rows = client.results(slow)["records"]
            assert fast_status["state"] == slow_status["state"] == "done"
            assert json.dumps(fast_rows, sort_keys=True) == json.dumps(
                slow_rows, sort_keys=True
            )
            print(
                f"analytics             : {len(fast_rows)} records "
                f"in {fast_elapsed:.2f}s"
            )
            print(
                f"best-effort (400/s)   : identical records "
                f"in {slow_elapsed:.2f}s (throttled)"
            )

            # == 3: the concurrency quota rejects the one-too-many job ==
            running = client.submit(job, tenant="best-effort")
            try:
                client.submit(job, tenant="best-effort")
            except ConcurrencyQuotaError as exc:
                print(f"concurrency quota     : {exc}")
            client.cancel(running)

            # == 4: per-tenant views of the labelled metrics snapshot ==
            snapshot = client.metrics(tenant="analytics")
            ingested = snapshot_value(
                snapshot, "cogra_events_ingested_total", [fast, "analytics"]
            )
            print(f"analytics ingested    : {ingested:.0f} events ({fast})")
            rows = client.list_jobs()
            print(
                "jobs                  : "
                + ", ".join(f"{row['job_id']}={row['state']}" for row in rows)
            )


if __name__ == "__main__":
    main()
