"""Multi-process sharded streaming: partition parallelism without the GIL.

The paper's parallel-processing argument (Sections 7-8): GROUP-BY and
equivalence predicates split the stream into sub-streams that never
interact, so they can run on different CPU cores.  This example

1. generates the synthetic stock stream (19 companies = 19 partitions),
2. runs the same trend query on a single-process ``StreamingRuntime`` and
   on a ``ShardedRuntime`` with worker processes, checking the results are
   identical,
3. reports per-shard routing statistics and aggregate metrics,
4. takes a mid-stream checkpoint from the sharded run and restores it into
   a runtime with a *different* worker count (checkpoints are topology
   independent), and
5. SIGKILLs a worker mid-stream on a recovery-enabled runtime
   (``max_restarts``): the parent respawns the shard from the latest
   incremental checkpoint, replays its buffer, and the results still match
   the single-process run.

Run with::

    python examples/sharded_stream.py
"""

import os
import signal
import tempfile

from repro.datasets.stock import StockConfig, generate_stock_stream
from repro.events.stream import sort_events
from repro.streaming.checkpoint import CheckpointStore
from repro.streaming.runtime import StreamingRuntime
from repro.streaming.sharded import ShardedRuntime

QUERY = """
RETURN company, COUNT(*), MAX(S.price)
PATTERN Stock S+
SEMANTICS skip-till-any-match
WHERE [company]
GROUP-BY company
WITHIN 60 seconds SLIDE 30 seconds
"""

WORKERS = 2


def signature(records):
    """Order-independent view of emitted results for comparison."""
    rows = []
    for record in records:
        result = record.result
        group = tuple(sorted(result.group.items()))
        rows.append((result.window_id, group, result.trend_count))
    return sorted(rows)


def main() -> None:
    events = sort_events(generate_stock_stream(StockConfig(event_count=6_000, seed=7)))

    single = StreamingRuntime(lateness=0.0)
    single.register(QUERY, name="trends")
    single_records = single.run(events)

    sharded = ShardedRuntime(workers=WORKERS, lateness=0.0)
    sharded.register(QUERY, name="trends")
    sharded_records = sharded.run(events)

    assert signature(sharded_records) == signature(single_records), (
        "sharded execution must emit exactly the single-process results"
    )
    print(f"events                : {len(events):,}")
    print(f"results               : {len(sharded_records)} (same as single-process)")
    print(f"throughput (parent)   : {sharded.metrics.throughput():,.0f} events/s")
    print(sharded.shard_report())
    print()

    # mid-stream checkpoint under 2 workers, restore under 3
    half = len(events) // 2
    first = ShardedRuntime(workers=WORKERS, lateness=0.0)
    first.register(QUERY, name="trends")
    records = []
    for event in events[:half]:
        records.extend(first.process(event))
    snapshot = first.checkpoint()
    records.extend(first.drain_pending())
    first.close()

    resumed = ShardedRuntime(workers=WORKERS + 1, lateness=0.0)
    resumed.register(QUERY, name="trends")
    resumed.restore(snapshot)
    for event in events[half:]:
        records.extend(resumed.process(event))
    records.extend(resumed.flush())

    assert signature(records) == signature(single_records), (
        "checkpoint/restore across worker counts must not change results"
    )
    print(
        f"checkpoint roundtrip  : {WORKERS} workers -> snapshot -> "
        f"{WORKERS + 1} workers, results identical"
    )

    # worker crash + recovery: kill a shard mid-stream; the parent respawns
    # it from the latest checkpoint and replays its buffer
    store = CheckpointStore(tempfile.mkdtemp(prefix="cogra-shard-ckpt-"))
    survivor = ShardedRuntime(workers=WORKERS, lateness=0.0, max_restarts=2)
    survivor.register(QUERY, name="trends")

    def feed_with_crash():
        for index, event in enumerate(events):
            if index == len(events) // 2:
                victim = survivor._procs[0]
                os.kill(victim.pid, signal.SIGKILL)
            yield event

    recovered = survivor.run(
        feed_with_crash(), checkpoint_store=store, checkpoint_interval=1000
    )
    assert signature(recovered) == signature(single_records), (
        "a recovered run must emit exactly the uninterrupted results"
    )
    print(
        f"worker recovery       : shard 0 SIGKILLed mid-stream, "
        f"restarted {survivor.restart_counts[0]}x, results identical"
    )


if __name__ == "__main__":
    main()
