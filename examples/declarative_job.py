"""The declarative job API: one typed, serializable spec per streaming job.

Every entry point of the streaming layer now resolves from a
:class:`repro.JobConfig` -- ``CograEngine.stream(**kwargs)`` assembles one
internally, ``cogra stream --config job.json`` loads one from disk -- and
``repro.job(config)`` is the documented facade over the full lifecycle.
This example shows the equivalences the config API guarantees:

1. the same job described three ways -- engine kwargs, a hand-built
   ``JobConfig``, and a config reloaded from its own ``to_dict()`` dump --
   produces identical results on the same stream;
2. scaling out is a config change, not a code change: flipping
   ``shards.workers`` runs the identical spec on worker processes;
3. a spec validates eagerly: typos and cross-field conflicts raise
   ``ConfigError`` with actionable messages instead of failing mid-stream.

Run with::

    PYTHONPATH=src python examples/declarative_job.py
"""

import dataclasses
import json
import random

import repro
from repro import JobConfig, LatenessConfig, QueryConfig, ShardConfig, WatermarkConfig
from repro.datasets.stock import StockConfig, generate_stock_stream
from repro.events.stream import sort_events

LATENESS = 5.0

QUERY = """
RETURN company, COUNT(*), MAX(S.price)
PATTERN Stock S+
SEMANTICS skip-till-any-match
WHERE [company]
GROUP-BY company
WITHIN 60 seconds SLIDE 30 seconds
"""


def signature(records):
    """Order-independent view of emitted results for comparison."""
    return sorted(
        (
            record.result.window_id,
            tuple(sorted(record.result.group.items())),
            record.result.trend_count,
        )
        for record in records
    )


def main() -> None:
    ordered = sort_events(generate_stock_stream(StockConfig(event_count=4000, seed=7)))
    rng = random.Random(41)
    feed = sorted(
        ordered, key=lambda e: (e.time + rng.uniform(0.0, LATENESS), e.sequence)
    )

    # == 1: one job, three launch styles, identical results ==
    config = JobConfig(
        queries=(QueryConfig(text=QUERY, name="trends"),),
        watermark=WatermarkConfig(lateness=LATENESS),
        late=LatenessConfig(policy="drop"),
    )

    engine = repro.CograEngine.from_text(QUERY)
    via_kwargs = list(engine.stream(feed, lateness=LATENESS, late_policy="drop"))
    via_config = repro.job(config, events=feed).results()
    reloaded = JobConfig.from_dict(json.loads(json.dumps(config.to_dict())))
    via_reload = repro.job(reloaded, events=feed).results()

    kwargs_signature = sorted(
        (r.window_id, tuple(sorted(r.group.items())), r.trend_count)
        for r in via_kwargs
    )
    assert signature(via_config) == signature(via_reload) == kwargs_signature
    print(f"results               : {len(via_config)} windows")
    print("equivalence           : kwargs == JobConfig == from_dict(to_dict())")

    # == 2: scaling out is a config change ==
    sharded_config = dataclasses.replace(config, shards=ShardConfig(workers=2))
    via_sharded = repro.job(sharded_config, events=feed).results()
    assert signature(via_sharded) == signature(via_config)
    print("sharded (workers=2)   : identical results, config change only")

    # == 3: specs fail loudly, before any event flows ==
    try:
        JobConfig.from_dict({"watermrak": {"lateness": 5.0}})
    except repro.ConfigError as exc:
        print(f"typo'd key            : {exc}")
    try:
        JobConfig.from_dict({"checkpoint": {"recover": True}})
    except repro.ConfigError as exc:
        print(f"cross-field conflict  : {exc}")


if __name__ == "__main__":
    main()
