"""Adaptive granularity re-planning: the online cost-model control loop.

The static analyzer picks one aggregation granularity per query at plan
time, from assumptions about the stream.  Real streams drift: sub-streams
that were dense at plan time turn sparse an hour in, and the chosen
granularity stops being optimal.  This example

1. builds a stream whose selectivity shifts mid-run -- a long sparse phase
   (thousands of groups, well under one event per sub-stream, where event
   granularity wins) followed by a dense burst (four groups, hundreds of
   events per sub-stream, where type granularity wins back),
2. runs it under both static plans and once with ``replan.enabled`` --
   configured through the declarative ``JobConfig`` API, the same
   ``replan.*`` keys ``cogra stream --replan`` uses,
3. shows the control loop migrating the live executor coarse->fine when
   the stream is sparse and fine->coarse at the dense burst,
4. checks all three runs emit exactly the same windows (migration changes
   cost, never answers), and
5. demonstrates that a checkpoint taken after a migration restores the
   *post-migration* plan, not the registered one.

Run with::

    python examples/adaptive_granularity.py
"""

import random
import time

from repro.events.event import Event
from repro.events.stream import sort_events
from repro.streaming.config import JobConfig, QueryConfig, ReplanConfig

QUERY = """
RETURN g, COUNT(*), SUM(A.v), MAX(A.v)
PATTERN SEQ(A+, B, C+, D)
SEMANTICS skip-till-any-match
GROUP-BY g
WITHIN 20 seconds SLIDE 10 seconds
"""


def selectivity_shift_stream(sparse=8_000, dense=2_000, seed=7):
    """A sparse phase over 3000 groups, then a dense burst on 4 groups."""
    rng = random.Random(seed)
    types = "AABCD"
    events = [
        Event(
            types[i % len(types)],
            rng.uniform(0.0, 500.0),
            {"g": i % 3_000, "v": i % 13},
        )
        for i in range(sparse)
    ]
    events.extend(
        Event(
            types[i % len(types)],
            rng.uniform(700.0, 780.0),
            {"g": i % 4, "v": i % 13},
        )
        for i in range(dense)
    )
    return sort_events(events)


def signature(records):
    rows = []
    for record in records:
        result = record.result
        rows.append(
            (
                result.window_id,
                tuple(sorted(result.group.items())),
                tuple(sorted(result.values.items())),
            )
        )
    return sorted(rows)


def config(granularity=None, replan=False) -> JobConfig:
    return JobConfig(
        queries=(QueryConfig(text=QUERY, name="trends", granularity=granularity),),
        replan=ReplanConfig(
            enabled=replan, check_interval_events=500, hysteresis=0.2
        ),
    )


def timed_run(job_config, events):
    runtime = job_config.build_runtime()
    started = time.perf_counter()
    records = runtime.run(events)
    return runtime, records, len(events) / (time.perf_counter() - started)


def main() -> None:
    events = selectivity_shift_stream()

    # -- the two static plans: each is right for only half the stream -------
    expected = None
    for granularity in ("type", "event"):
        _, records, throughput = timed_run(config(granularity=granularity), events)
        if expected is None:
            expected = signature(records)
        assert signature(records) == expected
        print(f"static {granularity:5s}: {throughput:10,.0f} ev/s")

    # -- the control loop: observe, decide, migrate live --------------------
    adaptive, records, throughput = timed_run(config(replan=True), events)
    assert signature(records) == expected
    print(
        f"re-planned  : {throughput:10,.0f} ev/s "
        f"({adaptive.metrics.replan_cycles} checks, "
        f"{adaptive.metrics.replan_migrations} migrations, "
        f"paused {adaptive.metrics.replan_pause_seconds * 1000.0:.1f} ms)"
    )
    for record in adaptive.replan_log:
        print(
            f"  {record['query']}: {record['from']} -> {record['to']} "
            f"(plan v{record['version']}, after {record['events_total']} events)"
        )
    observation = adaptive.query_observations()["trends"]
    print(
        f"last check  : {observation.events_per_substream:.2f} events per "
        f"open sub-stream over {observation.open_substreams} sub-streams, "
        f"match rate {observation.match_rate:.2f}"
    )

    # -- the migrated plan survives checkpoint/restore ----------------------
    survivor = config(replan=True).build_runtime()
    half = len(events) // 2
    records = []
    for event in events[:half]:
        records.extend(survivor.process(event))
    survivor.migrate_granularity("trends", "event")  # force the act step
    snapshot = survivor.checkpoint()

    resumed = config(replan=True).build_runtime()
    resumed.restore(snapshot)
    granularity = resumed._by_name["trends"].engine.plan.granularity.value
    print(f"restored plan: {granularity!r} adopted from the checkpoint")
    assert granularity == "event"
    for event in events[half:]:
        records.extend(resumed.process(event))
    records.extend(resumed.flush())
    assert signature(records) == expected
    print("parity       : all runs emitted identical windows")


if __name__ == "__main__":
    main()
